"""Ablations: what each design in the framework contributes.

Not a single paper figure, but the design-choice decomposition DESIGN.md
calls for: starting from the full solution, disable one design at a time
(scheduling quality, backfilling, fine-grained blocking, compressed data
buffer, shared Huffman tree, I/O balancing) and measure the overhead it
gives back.  Expected shape: every ablation is >= the full solution
(within noise); in this contended regime the I/O balancing and Johnson
ordering matter most, followed by fine-grained blocking, the shared
Huffman tree, and the compressed data buffer.
"""

from __future__ import annotations

from repro.framework import format_table, ours_config
from repro.io import IoThroughputModel

from .common import FixedSpreadNyx, emit, mean_overhead

#: Contended-filesystem regime (as in the Figure 8 simulation): design
#: choices only show up when compression and I/O actually pressure the
#: idle windows.
_SIM_IO = IoThroughputModel(node_bandwidth_bytes_per_s=0.2e9)

_ABLATIONS = [
    ("full solution", {}),
    ("generation order (no Johnson)", {"scheduler": "GenerationListSchedule+BF"}),
    ("no backfilling", {"scheduler": "ExtJohnson"}),
    ("whole-field blocks (64 MB)", {"block_bytes": 64 * 2**20}),
    ("no compressed data buffer", {"buffer_bytes": 0}),
    ("no shared Huffman tree", {"use_shared_tree": False}),
    ("no I/O balancing", {"use_balancing": False}),
]


def test_ablations(benchmark):
    def build() -> str:
        app = FixedSpreadNyx(20.0, seed=12)
        rows = []
        values = {}
        for name, overrides in _ABLATIONS:
            value = mean_overhead(
                app,
                ours_config(io_model=_SIM_IO, **overrides),
                nodes=2,
                ppn=4,
                iterations=5,
                seed=12,
            )
            values[name] = value
            rows.append((name, f"{value * 100:.1f}%"))
        full = values["full solution"]
        for name, value in values.items():
            rows_delta = value - full
            assert rows_delta >= -0.02, (name, value, full)
        # At least some designs must matter measurably.
        assert max(values.values()) > full + 0.01
        return format_table(
            rows, headers=("configuration", "I/O overhead (rel.)")
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablations", text)
