"""Artifact Appendix B.5: end-to-end Nyx and WarpX runs, artifact-style.

Reproduces the artifact's evaluation workflow (steps 4-8): a 10-iteration
run per solution per application, reporting each solution's total time
and overhead relative to computation-only, and the headline improvement
factor of ours over the previous (async-I/O) solution — the artifact
measures 4.53x for Nyx and 3.29x for WarpX on Chameleon Cloud.
"""

from __future__ import annotations

from repro.apps import NyxModel, WarpXModel
from repro.framework import (
    async_io_config,
    baseline_config,
    ours_config,
)

from .common import emit, run_campaign

_ITERATIONS = 11  # iteration 0 warms the predictor; 10 dumps follow


def _artifact_block(app_label: str, app, seed: int) -> tuple[str, float]:
    lines = [f"Sample from {_ITERATIONS - 1} iterations."]
    results = {}
    for name, config in (
        ("Baseline", baseline_config()),
        ("Previous", async_io_config()),
        ("Ours", ours_config()),
    ):
        result = run_campaign(
            app,
            config,
            nodes=4,
            ppn=4,
            iterations=_ITERATIONS,
            seed=seed,
            solution=name,
        )
        results[name] = result
        lines.append(f"-------------------- {name} --------------------")
        lines.append(
            f"{app_label} simulation with {name} solution time: "
            f"{result.total_time:.2f} s"
        )
        lines.append(
            f"{name} overhead compared to computation only: "
            f"{result.mean_relative_overhead * 100:.1f} %"
        )
    improvement = (
        results["Previous"].mean_relative_overhead
        / results["Ours"].mean_relative_overhead
    )
    lines.append("------------------- Improvement ------------------")
    lines.append(
        f"Our improvement compared to previous: {improvement:.2f} times"
    )
    lines.append("----------------------- End ----------------------")
    return "\n".join(lines), improvement


def test_artifact_nyx(benchmark):
    def build():
        return _artifact_block("Nyx", NyxModel(seed=42), seed=42)

    text, improvement = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("artifact_nyx", text)
    # Artifact reports 4.53x on its platform; any clear win (>1.5x)
    # preserves the claim's shape.
    assert improvement > 1.5


def test_artifact_warpx(benchmark):
    def build():
        return _artifact_block("WarpX", WarpXModel(seed=42), seed=42)

    text, improvement = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("artifact_warpx", text)
    assert improvement > 1.5
