"""Codec micro-benchmarks: real throughput of the compression substrate.

Not a paper figure — these measure this machine's actual throughput for
each stage of the pipeline (the numbers the throughput models abstract):
integer Lorenzo, Huffman encode/decode, full SZ-style compress/decompress
(native and shared tree), and the ZFP-style codec.  pytest-benchmark's
timing table is the output.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import NyxModel
from repro.compression import (
    SZCompressor,
    ZFPCompressor,
    build_codebook,
    decode,
    encode,
    lorenzo_forward,
    prequantize,
)

_SHAPE = (48, 48, 48)  # ~0.9 MB float64


@pytest.fixture(scope="module")
def field():
    app = NyxModel(seed=61, partition_shape=_SHAPE)
    return app.generate_field("temperature", 0, 5)


@pytest.fixture(scope="module")
def error_bound():
    return NyxModel(seed=61).field("temperature").error_bound


def test_micro_lorenzo_forward(benchmark, field, error_bound):
    grid = prequantize(field, error_bound)
    result = benchmark(lorenzo_forward, grid)
    assert result.shape == field.shape


def test_micro_prequantize(benchmark, field, error_bound):
    result = benchmark(prequantize, field, error_bound)
    assert result.dtype == np.int64


def test_micro_huffman_encode(benchmark, field, error_bound):
    compressor = SZCompressor()
    quantized = compressor.quantize(field, error_bound)
    codes = quantized.codes.reshape(-1)
    hist = np.bincount(codes, minlength=2 * compressor.radius + 1)
    book = build_codebook(hist, force_symbols=(compressor.sentinel,))
    data, nbits = benchmark(encode, codes, book)
    assert nbits > 0


def test_micro_huffman_decode(benchmark, field, error_bound):
    compressor = SZCompressor()
    quantized = compressor.quantize(field, error_bound)
    codes = quantized.codes.reshape(-1)
    hist = np.bincount(codes, minlength=2 * compressor.radius + 1)
    book = build_codebook(hist, force_symbols=(compressor.sentinel,))
    data, nbits = encode(codes, book)
    result = benchmark.pedantic(
        decode, args=(data, nbits, codes.size, book), rounds=2, iterations=1
    )
    assert np.array_equal(result, codes)


def test_micro_sz_compress_native_tree(benchmark, field, error_bound):
    compressor = SZCompressor()
    block = benchmark(compressor.compress, field, error_bound)
    assert block.compression_ratio > 1.0
    benchmark.extra_info["ratio"] = block.compression_ratio


def test_micro_sz_compress_shared_tree(benchmark, field, error_bound):
    compressor = SZCompressor()
    hist = compressor.histogram(field, error_bound)
    shared = build_codebook(hist, force_symbols=(compressor.sentinel,))
    block = benchmark(
        compressor.compress, field, error_bound, shared
    )
    assert block.used_shared_tree


def test_micro_sz_decompress(benchmark, field, error_bound):
    compressor = SZCompressor()
    block = compressor.compress(field, error_bound)
    result = benchmark.pedantic(
        compressor.decompress, args=(block,), rounds=2, iterations=1
    )
    assert result.shape == field.shape


def test_micro_zfp_compress(benchmark, field):
    codec = ZFPCompressor(8)
    stream = benchmark(codec.compress, field)
    assert stream.compression_ratio > 6.0


def test_micro_zfp_decompress(benchmark, field):
    codec = ZFPCompressor(8)
    stream = codec.compress(field)
    result = benchmark(codec.decompress, stream)
    assert result.shape == field.shape
