"""Codec micro-benchmarks: real throughput of the compression substrate.

Not a paper figure — these measure this machine's actual throughput for
each stage of the pipeline (the numbers the throughput models abstract):
integer Lorenzo, Huffman encode/decode, full SZ-style compress/decompress
(native and shared tree), and the ZFP-style codec.  pytest-benchmark's
timing table is the output.

The ``@bench_case`` entries (group ``codec``) additionally register the
Huffman-decode hot path with the ``repro bench`` regression gate, one
case per kernel backend, so the pure/numpy speedup is tracked like any
other trajectory point::

    PYTHONPATH=src python -m repro bench run --filter codec --quick
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import NyxModel
from repro.bench import bench_case
from repro.compression import (
    SZCompressor,
    ZFPCompressor,
    available_backends,
    build_codebook,
    decode,
    encode,
    get_backend,
    lorenzo_forward,
    prequantize,
)

_SHAPE = (48, 48, 48)  # ~0.9 MB float64


@pytest.fixture(scope="module")
def field():
    app = NyxModel(seed=61, partition_shape=_SHAPE)
    return app.generate_field("temperature", 0, 5)


@pytest.fixture(scope="module")
def error_bound():
    return NyxModel(seed=61).field("temperature").error_bound


def test_micro_lorenzo_forward(benchmark, field, error_bound):
    grid = prequantize(field, error_bound)
    result = benchmark(lorenzo_forward, grid)
    assert result.shape == field.shape


def test_micro_prequantize(benchmark, field, error_bound):
    result = benchmark(prequantize, field, error_bound)
    assert result.dtype == np.int64


def test_micro_huffman_encode(benchmark, field, error_bound):
    compressor = SZCompressor()
    quantized = compressor.quantize(field, error_bound)
    codes = quantized.codes.reshape(-1)
    hist = np.bincount(codes, minlength=2 * compressor.radius + 1)
    book = build_codebook(hist, force_symbols=(compressor.sentinel,))
    data, nbits = benchmark(encode, codes, book)
    assert nbits > 0


def test_micro_huffman_decode(benchmark, field, error_bound):
    compressor = SZCompressor()
    quantized = compressor.quantize(field, error_bound)
    codes = quantized.codes.reshape(-1)
    hist = np.bincount(codes, minlength=2 * compressor.radius + 1)
    book = build_codebook(hist, force_symbols=(compressor.sentinel,))
    data, nbits = encode(codes, book)
    result = benchmark.pedantic(
        decode, args=(data, nbits, codes.size, book), rounds=2, iterations=1
    )
    assert np.array_equal(result, codes)


def test_micro_sz_compress_native_tree(benchmark, field, error_bound):
    compressor = SZCompressor()
    block = benchmark(compressor.compress, field, error_bound)
    assert block.compression_ratio > 1.0
    benchmark.extra_info["ratio"] = block.compression_ratio


def test_micro_sz_compress_shared_tree(benchmark, field, error_bound):
    compressor = SZCompressor()
    hist = compressor.histogram(field, error_bound)
    shared = build_codebook(hist, force_symbols=(compressor.sentinel,))
    block = benchmark(
        compressor.compress, field, error_bound, shared
    )
    assert block.used_shared_tree


def test_micro_sz_decompress(benchmark, field, error_bound):
    compressor = SZCompressor()
    block = compressor.compress(field, error_bound)
    result = benchmark.pedantic(
        compressor.decompress, args=(block,), rounds=2, iterations=1
    )
    assert result.shape == field.shape


def test_micro_zfp_compress(benchmark, field):
    codec = ZFPCompressor(8)
    stream = benchmark(codec.compress, field)
    assert stream.compression_ratio > 6.0


def test_micro_zfp_decompress(benchmark, field):
    codec = ZFPCompressor(8)
    stream = codec.compress(field)
    result = benchmark(codec.decompress, stream)
    assert result.shape == field.shape


# --- repro.bench registrations (group "codec") -------------------------
#
# Setup (field synthesis, quantization, encoding) is cached per edge so
# the registered bodies time only the operation under test; the harness's
# warmup pass pays the one-time setup cost.

_PREPARED: dict[int, tuple] = {}


def _prepared_stream(edge: int):
    """(codes, codebook, encoded stream) for a Nyx temperature block."""
    if edge not in _PREPARED:
        app = NyxModel(seed=61, partition_shape=(edge,) * 3)
        data = app.generate_field("temperature", 0, 5)
        bound = app.field("temperature").error_bound
        compressor = SZCompressor()
        quantized = compressor.quantize(data, bound)
        codes = quantized.codes.reshape(-1)
        hist = np.bincount(codes, minlength=2 * compressor.radius + 1)
        book = build_codebook(
            hist,
            force_symbols=(compressor.sentinel,),
            max_length=compressor.backend.build_max_length,
        )
        stream = compressor.backend.encode(
            codes, book, chunk_size=compressor.chunk_size
        )
        _PREPARED[edge] = (codes, book, stream, data, bound)
    return _PREPARED[edge]


def _decode_with(backend_name: str, edge: int) -> None:
    codes, book, stream, _, _ = _prepared_stream(edge)
    out = get_backend(backend_name).decode(
        stream.data,
        stream.nbits,
        codes.size,
        book,
        stream.chunk_size,
        stream.chunk_offsets,
    )
    assert out.size == codes.size


@bench_case(
    "codec.huffman_decode_pure",
    group="codec",
    params={"edge": 64},
    quick={"edge": 48},
    warmup=1,
    repeats=3,
    timeout_s=120.0,
)
def bench_decode_pure(edge=64):
    _decode_with("pure", edge)


@bench_case(
    "codec.huffman_decode_numpy",
    group="codec",
    params={"edge": 64},
    quick={"edge": 48},
    warmup=1,
    repeats=3,
    timeout_s=120.0,
)
def bench_decode_numpy(edge=64):
    _decode_with("numpy", edge)


def _encode_with(backend_name: str, edge: int) -> None:
    codes, book, _, _, _ = _prepared_stream(edge)
    backend = get_backend(backend_name)
    stream = backend.encode(
        codes, book if backend.uses_codebook else None
    )
    assert stream.nbits > 0


def _register_encode_case(backend_name: str):
    @bench_case(
        f"codec.encode.{backend_name}",
        group="codec",
        params={"edge": 64},
        quick={"edge": 48},
        warmup=1,
        repeats=3,
        timeout_s=240.0,
    )
    def _case(edge=64):
        _encode_with(backend_name, edge)

    return _case


# One encode case per registered backend: the pure case is the reference
# the CI speedup gate divides by; deflate/zlib track the self-coding
# formats' throughput alongside the Huffman kernels.
for _backend_name in available_backends():
    _register_encode_case(_backend_name)


@bench_case(
    "codec.sz_roundtrip_pure",
    group="codec",
    params={"edge": 48},
    quick={"edge": 32},
    warmup=1,
    repeats=3,
    timeout_s=120.0,
)
def bench_sz_roundtrip_pure(edge=48):
    _sz_roundtrip("pure", edge)


@bench_case(
    "codec.sz_roundtrip_numpy",
    group="codec",
    params={"edge": 48},
    quick={"edge": 32},
    warmup=1,
    repeats=3,
    timeout_s=120.0,
)
def bench_sz_roundtrip_numpy(edge=48):
    _sz_roundtrip("numpy", edge)


def _sz_roundtrip(backend_name: str, edge: int) -> None:
    _, _, _, data, bound = _prepared_stream(edge)
    compressor = SZCompressor(backend=backend_name)
    block = compressor.compress(data, bound)
    recon = compressor.decompress(block)
    assert recon.shape == data.shape
