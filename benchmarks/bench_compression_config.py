"""Compression configuration check (Section 5.1's setup table).

The paper compresses the six Nyx grid fields with absolute error bounds
(0.2, 0.4, 1e3, 2e5, 2e5, 2e5), reporting an average PSNR of 78.6 dB and
a ~16x ratio, and WarpX fields at 273.9x.  This bench runs the *real*
compressor on the synthetic fields at exactly those bounds and reports
per-field ratio and PSNR — verifying the generators and compressor land
in the regime the evaluation assumes (ratios within a factor of a few of
the targets, PSNR in the tens of dB).
"""

from __future__ import annotations

import numpy as np

from repro.apps import NyxModel, WarpXModel
from repro.compression import SZCompressor, psnr
from repro.framework import format_table

from .common import emit

_SHAPE_NYX = (32, 32, 32)
_SHAPE_WARPX = (16, 16, 128)


def test_compression_configuration(benchmark):
    def build() -> str:
        compressor = SZCompressor()
        rows = []
        nyx = NyxModel(seed=19, partition_shape=_SHAPE_NYX)
        nyx_ratios = []
        nyx_psnrs = []
        for spec in nyx.fields[:6]:  # the six grid fields of Section 5.1
            field = nyx.generate_field(spec.name, 0, 10)
            block = compressor.compress(field, spec.error_bound)
            recon = compressor.decompress(block)
            quality = psnr(field, recon)
            nyx_ratios.append(block.compression_ratio)
            nyx_psnrs.append(quality)
            rows.append(
                (
                    "nyx",
                    spec.name,
                    f"{spec.error_bound:g}",
                    f"{block.compression_ratio:.1f}x",
                    f"{quality:.1f} dB",
                )
            )
        warpx = WarpXModel(seed=19, partition_shape=_SHAPE_WARPX)
        warpx_ratios = []
        for spec in warpx.fields[:4]:
            field = warpx.generate_field(spec.name, 0, 10)
            block = compressor.compress(field, spec.error_bound)
            recon = compressor.decompress(block)
            warpx_ratios.append(block.compression_ratio)
            rows.append(
                (
                    "warpx",
                    spec.name,
                    f"{spec.error_bound:g}",
                    f"{block.compression_ratio:.1f}x",
                    f"{psnr(field, recon):.1f} dB",
                )
            )
        rows.append(
            (
                "nyx",
                "(average)",
                "-",
                f"{float(np.mean(nyx_ratios)):.1f}x (paper ~16x)",
                f"{float(np.mean(nyx_psnrs)):.1f} dB (paper 78.6 dB)",
            )
        )
        rows.append(
            (
                "warpx",
                "(average)",
                "-",
                f"{float(np.mean(warpx_ratios)):.1f}x (paper 273.9x)",
                "-",
            )
        )
        # Regime checks: error-bounded mode must land within a factor of
        # a few of the paper's ratios on same-bound synthetic data, and
        # WarpX must compress substantially harder than Nyx (the paper's
        # 273.9x needs the real application's near-vacuum domains; the
        # synthetic stand-in preserves the ordering and the gap).
        assert 4.0 < float(np.mean(nyx_ratios)) < 80.0
        assert float(np.mean(warpx_ratios)) > 2 * float(
            np.mean(nyx_ratios)
        )
        assert all(q > 30.0 for q in nyx_psnrs)
        return format_table(
            rows,
            headers=("app", "field", "error bound", "ratio", "PSNR"),
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("compression_config", text)
