"""Durability benchmarks: the cost of end-to-end integrity.

Registers the ``repro verify`` scrub of a freshly written snapshot with
the regression gate (group ``durability``), so the overhead of walking
every container and block checksum is tracked in ``BENCH_*.json``
alongside the codec and pipeline trajectories::

    PYTHONPATH=src python -m repro bench run --filter durability --quick

Snapshot synthesis (field generation, compression, write) is cached per
edge and paid by the warmup pass; the timed body is the scrub alone.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.bench import bench_case

_SNAPSHOTS: dict[int, Path] = {}


def _snapshot_path(edge: int) -> Path:
    """A written-once ``.rpio`` snapshot of ``edge``-cubed Nyx fields."""
    if edge not in _SNAPSHOTS:
        from repro.apps import NyxModel
        from repro.framework import save_snapshot

        app = NyxModel(seed=61, partition_shape=(edge,) * 3)
        fields = {
            name: app.generate_field(name, 0, 5)
            for name in ("temperature", "baryon_density")
        }
        bounds = {
            name: app.field(name).error_bound for name in fields
        }
        directory = Path(tempfile.mkdtemp(prefix="repro-bench-durability-"))
        path = directory / "snap.rpio"
        save_snapshot(path, fields, error_bounds=bounds, block_bytes=65_536)
        _SNAPSHOTS[edge] = path
    return _SNAPSHOTS[edge]


@bench_case(
    "durability.verify",
    group="durability",
    params={"edge": 48},
    quick={"edge": 32},
    warmup=1,
    repeats=3,
    timeout_s=120.0,
)
def bench_verify_snapshot(edge=48):
    from repro.durability import verify_snapshot

    report = verify_snapshot(_snapshot_path(edge))
    assert report.ok, report.format()
    assert report.checked > 2


@bench_case(
    "durability.crc32c",
    group="durability",
    params={"mebibytes": 16},
    quick={"mebibytes": 4},
    warmup=1,
    repeats=3,
    timeout_s=60.0,
)
def bench_crc32c(mebibytes=16):
    from repro.durability import crc32c

    rng = np.random.default_rng(61)
    data = rng.integers(
        0, 256, size=mebibytes * (1 << 20), dtype=np.uint8
    ).tobytes()
    assert crc32c(data) != 0
