"""Execution-engine benchmarks: the payoff of real pipeline overlap.

``engine.pipeline_overlap.*`` times the identical end-to-end campaign
data plane — generate, SZ-compress, CRC32C-stamp, and write every
rank's partition — under the serial single-process path
(:class:`~repro.engines.SimulatorEngine`'s data plane) and under the
worker-pool path (:class:`~repro.engines.ProcessPoolEngine`), where
compression fans out across cores and payloads stream into the async
writer while later ranks are still generating/compressing::

    PYTHONPATH=src python -m repro bench run --filter engine --quick

On a multi-core runner the ``process`` case should beat ``serial`` by
roughly the worker count (the acceptance gate asks for >= 2x on 4
cores); on a single-core machine the two converge, which is itself the
honest result — overlap cannot conjure cores.
"""

from __future__ import annotations

import tempfile

from repro.bench import bench_case

_BASE = dict(
    nodes=1,
    ppn=4,
    iterations=3,
    seed=23,
    data_fields=2,
    data_block_bytes=64 * 1024,
)


def _run(engine: str, edge: int, workers: int | None):
    from repro.engines import CampaignSpec, run_campaign

    with tempfile.TemporaryDirectory(
        prefix="repro-bench-engine-"
    ) as tmp:
        spec = CampaignSpec(
            engine=engine,
            data_dir=tmp,
            data_edge=edge,
            workers=workers,
            **_BASE,
        )
        report = run_campaign(spec)
        assert report.data is not None and report.data.num_blocks > 0
        return report


@bench_case(
    "engine.pipeline_overlap.serial",
    group="engine",
    params={"edge": 48},
    quick={"edge": 24},
    warmup=1,
    repeats=3,
    timeout_s=300.0,
)
def bench_pipeline_serial(edge=48):
    """Single-process reference: compress then write, one rank at a time."""
    _run("sim", edge, None)


@bench_case(
    "engine.pipeline_overlap.process",
    group="engine",
    params={"edge": 48, "workers": 4},
    quick={"edge": 24, "workers": 4},
    warmup=1,
    repeats=3,
    timeout_s=300.0,
)
def bench_pipeline_process(edge=48, workers=4):
    """Worker-pool pipeline: per-rank compression and I/O overlapped."""
    _run("process", edge, workers)


@bench_case(
    "engine.pipeline_overlap.speedup",
    group="engine",
    params={"edge": 32, "workers": 4},
    quick=True,
    warmup=0,
    repeats=1,
    timeout_s=300.0,
)
def bench_pipeline_speedup(edge=32, workers=4):
    """Both engines back to back, asserting the CRC-equality contract.

    The case's own timing is incidental; it exists so every bench run
    re-checks that the overlap pipeline still produces byte-identical
    blocks (the serial/process wall-clock ratio is visible by comparing
    the two cases above).
    """
    serial = _run("sim", edge, None)
    overlapped = _run("process", edge, workers)
    assert serial.block_crc32c == overlapped.block_crc32c
    assert serial.data.compressed_bytes == overlapped.data.compressed_bytes


@bench_case(
    "engine.supervised_recovery",
    group="engine",
    params={"edge": 32, "workers": 4},
    warmup=0,
    repeats=2,
    timeout_s=300.0,
)
def bench_supervised_recovery(edge=32, workers=4):
    """Worker-kill recovery cost: a SIGKILLed rank retried to completion.

    Times the process data plane while rank 1's first attempt at
    iteration 1 is killed, so the measurement includes death detection,
    relaunch, and result dedup on top of the clean pipeline — compare
    against ``engine.pipeline_overlap.process`` for the overhead.  Full
    runs only (no ``quick`` variant), so the committed quick baseline is
    untouched.
    """
    from repro.engines import CampaignSpec, run_campaign

    faults = {"worker": {"kind": "kill", "rank": 1, "iteration": 1}}
    with tempfile.TemporaryDirectory(prefix="repro-bench-sup-") as tmp:
        report = run_campaign(CampaignSpec(
            engine="process",
            data_dir=tmp,
            data_edge=edge,
            workers=workers,
            faults=faults,
            task_deadline_s=30.0,
            speculative_frac=0.0,
            **_BASE,
        ))
    sup = report.data.supervisor
    assert sup is not None and sup.recovered and sup.retries >= 1
