"""Extension: a third application at the low-compressibility end.

The paper's future work asks for "a wider range of real-world HPC
applications."  HACC-like particle dumps compress at ~5x rather than
Nyx's 16x or WarpX's 274x, landing at the low-ratio end of Figure 7
where the framework's gains are smallest.  Expected shape: the solution
ordering still holds for HACC, but the improvement factors are the
smallest of the three applications — and the three apps together trace
the Figure 7 trend (gain grows with achievable ratio).
"""

from __future__ import annotations

import numpy as np

from repro.apps import HaccModel, NyxModel, WarpXModel
from repro.framework import (
    async_io_config,
    baseline_config,
    format_table,
    ours_config,
)

from .common import emit, run_campaign


def test_extension_hacc(benchmark):
    def build() -> str:
        apps = [
            ("hacc", HaccModel(seed=21), 5.0),
            ("nyx", NyxModel(seed=21), 16.0),
            ("warpx", WarpXModel(seed=21), 274.0),
        ]
        rows = []
        factors = {}
        for name, app, ratio in apps:
            overheads = {}
            for sol, config in (
                ("baseline", baseline_config()),
                ("previous", async_io_config()),
                ("ours", ours_config()),
            ):
                overheads[sol] = run_campaign(
                    app, config, nodes=2, ppn=4, iterations=5, seed=21
                ).mean_relative_overhead
            factor = overheads["baseline"] / overheads["ours"]
            factors[name] = factor
            rows.append(
                (
                    name,
                    f"~{ratio:.0f}x",
                    f"{overheads['baseline'] * 100:.1f}%",
                    f"{overheads['previous'] * 100:.1f}%",
                    f"{overheads['ours'] * 100:.1f}%",
                    f"{factor:.2f}x",
                )
            )
            assert (
                overheads["ours"]
                < overheads["previous"]
                < overheads["baseline"]
            ), name
        # Figure 7 trend across applications: higher achievable ratio,
        # higher improvement.
        assert factors["hacc"] <= factors["nyx"] * 1.2
        assert factors["nyx"] <= factors["warpx"] * 1.2
        return format_table(
            rows,
            headers=(
                "app",
                "avg CR",
                "baseline",
                "async-I/O",
                "ours",
                "improvement",
            ),
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("extension_hacc", text)
