"""Extension: multi-file (subfiling) dumps at scale — Section 6 future work.

The paper plans to "extend our proposed task scheduling method and
compression design to accommodate multi-file scenarios."  This bench runs
that extension end to end in the modelled framework: splitting the
logical shared file across subfiles partitions the writers and relieves
shared-file contention, which matters most for the data-heavy baseline at
large scale and least for our compressed solution.  Expected shape:
baseline overhead falls visibly with subfile count at 16 nodes; ours is
already nearly contention-free and moves little.
"""

from __future__ import annotations

from repro.apps import NyxModel
from repro.framework import baseline_config, format_table, ours_config

from .common import emit, mean_overhead

_SUBFILES = [1, 2, 4, 8]


def test_extension_subfiling(benchmark):
    def build() -> str:
        app = NyxModel(seed=23)
        rows = []
        baseline = {}
        ours = {}
        for k in _SUBFILES:
            baseline[k] = mean_overhead(
                app,
                baseline_config(num_subfiles=k),
                nodes=16,
                ppn=4,
                iterations=4,
                seed=23,
            )
            ours[k] = mean_overhead(
                app,
                ours_config(num_subfiles=k),
                nodes=16,
                ppn=4,
                iterations=4,
                seed=23,
            )
            rows.append(
                (
                    f"{k}",
                    f"{baseline[k] * 100:.1f}%",
                    f"{ours[k] * 100:.1f}%",
                )
            )
        # Shape: subfiling monotonically helps the baseline; our absolute
        # gain is much smaller (we write 16x less data).
        values = [baseline[k] for k in _SUBFILES]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
        assert baseline[1] - baseline[8] > 0.05
        assert (ours[1] - ours[8]) < (baseline[1] - baseline[8]) / 3
        return format_table(
            rows,
            headers=("subfiles", "baseline overhead", "ours overhead"),
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("extension_subfiling", text)
