"""Figure 10: overheads at the beginning / middle / end of a run.

Paper setup: Nyx and WarpX sampled at three run stages; three solutions.
Expected shape: ours consistently outperforms the previous solution (and
the baseline) at *every* stage, even as the data's compressibility
distribution degrades toward the end of the run.
"""

from __future__ import annotations

import numpy as np

from repro.apps import NyxModel, WarpXModel
from repro.framework import (
    async_io_config,
    baseline_config,
    format_table,
    ours_config,
)

from .common import run_campaign, emit

_TOTAL_ITERATIONS = 24
_WINDOWS = {
    "beginning": range(1, 8),
    "middle": range(9, 16),
    "end": range(17, 24),
}


def _stage_overheads(app, config, seed) -> dict[str, float]:
    result = run_campaign(
        app,
        config,
        nodes=2,
        ppn=4,
        iterations=_TOTAL_ITERATIONS,
        seed=seed,
    )
    by_iteration = {
        r.iteration: r.relative_overhead for r in result.dump_records()
    }
    return {
        window: float(
            np.mean(
                [by_iteration[i] for i in iters if i in by_iteration]
            )
        )
        for window, iters in _WINDOWS.items()
    }


def test_fig10_timesteps(benchmark):
    def build() -> str:
        rows = []
        shape: dict[tuple[str, str, str], float] = {}
        for app_name, app in (
            ("nyx", NyxModel(seed=10, total_iterations=_TOTAL_ITERATIONS)),
            (
                "warpx",
                WarpXModel(seed=10, total_iterations=_TOTAL_ITERATIONS),
            ),
        ):
            per_solution = {}
            for sol_name, config in (
                ("baseline", baseline_config()),
                ("async-I/O", async_io_config()),
                ("ours", ours_config()),
            ):
                per_solution[sol_name] = _stage_overheads(app, config, 10)
            for window in _WINDOWS:
                for sol_name in per_solution:
                    value = per_solution[sol_name][window]
                    shape[(app_name, window, sol_name)] = value
                    rows.append(
                        (
                            app_name,
                            window,
                            sol_name,
                            f"{value * 100:.1f}%",
                        )
                    )
        # Shape: ours best at every stage for both applications.
        for app_name in ("nyx", "warpx"):
            for window in _WINDOWS:
                ours = shape[(app_name, window, "ours")]
                assert ours < shape[(app_name, window, "async-I/O")]
                assert ours < shape[(app_name, window, "baseline")]
        return format_table(
            rows, headers=("app", "stage", "solution", "overhead")
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig10_timesteps", text)
