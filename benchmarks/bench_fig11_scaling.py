"""Figure 11: weak scaling of Nyx and WarpX, 8 -> 64 GPUs.

Paper setup: per-process problem size fixed (Nyx 256^3, WarpX
128x128x512); both reference solutions slow down as the job grows
(shared-file contention) while ours stays consistent because it moves
16-274x less data.
"""

from __future__ import annotations

from repro.apps import NyxModel, WarpXModel
from repro.bench import bench_case
from repro.framework import (
    async_io_config,
    baseline_config,
    format_table,
    line_chart,
    ours_config,
)

try:
    from .common import emit, mean_overhead
except ImportError:  # standalone: python benchmarks/bench_fig11_scaling.py
    from common import emit, mean_overhead

_SCALES = [(2, 4), (4, 4), (8, 4), (16, 4)]  # 8, 16, 32, 64 GPUs


def test_fig11_weak_scaling(benchmark):
    def build() -> str:
        rows = []
        shape: dict[tuple[str, str, int], float] = {}
        for app_name, app in (
            ("nyx", NyxModel(seed=11)),
            ("warpx", WarpXModel(seed=11)),
        ):
            for nodes, ppn in _SCALES:
                gpus = nodes * ppn
                cells = []
                for sol_name, config in (
                    ("baseline", baseline_config()),
                    ("async-I/O", async_io_config()),
                    ("ours", ours_config()),
                ):
                    value = mean_overhead(
                        app,
                        config,
                        nodes=nodes,
                        ppn=ppn,
                        iterations=5,
                        seed=11,
                    )
                    shape[(app_name, sol_name, gpus)] = value
                    cells.append(f"{value * 100:.1f}%")
                rows.append((app_name, f"{gpus} GPUs", *cells))

        for app_name in ("nyx", "warpx"):
            # Ordering holds at every scale.
            for _, gpus in [(n, n * p) for n, p in _SCALES]:
                assert (
                    shape[(app_name, "ours", gpus)]
                    < shape[(app_name, "async-I/O", gpus)]
                    < shape[(app_name, "baseline", gpus)]
                )
            # Baseline/async degrade with scale; ours stays ~flat.
            for sol in ("baseline", "async-I/O"):
                assert (
                    shape[(app_name, sol, 64)]
                    > shape[(app_name, sol, 8)] * 1.1
                )
            ours_growth = (
                shape[(app_name, "ours", 64)]
                - shape[(app_name, "ours", 8)]
            )
            base_growth = (
                shape[(app_name, "baseline", 64)]
                - shape[(app_name, "baseline", 8)]
            )
            assert ours_growth < base_growth / 3
        table = format_table(
            rows,
            headers=("app", "scale", "baseline", "async-I/O", "ours"),
        )
        gpus = [n * p for n, p in _SCALES]
        chart = line_chart(
            {
                sol: [
                    (float(g), shape[("nyx", sol, g)]) for g in gpus
                ]
                for sol in ("baseline", "async-I/O", "ours")
            },
            x_label="GPUs (Nyx weak scaling)",
            y_label="relative overhead",
        )
        return table + "\n\n" + chart

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig11_scaling", text)


# -- repro.bench registration ------------------------------------------
@bench_case(
    "fig11.weak_scaling",
    group="figures",
    params={"scales": ((2, 4), (4, 4)), "iterations": 4, "edge": 48},
    quick={"scales": ((1, 2), (2, 2)), "iterations": 2, "edge": 24},
    warmup=0,
    repeats=2,
    timeout_s=600.0,
)
def bench_weak_scaling(scales=((2, 4), (4, 4)), iterations=4, edge=48):
    """Ours-config campaigns at growing node counts — the weak-scaling
    sweep of Figure 11 reduced to its timed core."""
    app = NyxModel(seed=11, partition_shape=(edge, edge, edge))
    for nodes, ppn in scales:
        mean_overhead(
            app,
            ours_config(),
            nodes=nodes,
            ppn=ppn,
            iterations=iterations,
            seed=11,
        )


if __name__ == "__main__":
    from repro.bench import standalone_main

    raise SystemExit(standalone_main())
