"""Figure 1: the paper's worked scheduling example, reproduced exactly.

Figure 1 defines the problem visually: two computing obstacles on the
main thread, one core obstacle on the background thread, four jobs, and
the schedules ExtJohnson (1c) and ExtJohnson+BF (1d) produce.  This bench
regenerates both schedules, asserts every interval the paper draws, and
emits the Gantt charts.
"""

from __future__ import annotations

from repro.core import (
    Interval,
    Job,
    ProblemInstance,
    ext_johnson,
    ext_johnson_backfill,
)
from repro.simulator import render_gantt, schedule_to_trace

from .common import emit


def figure1_instance() -> ProblemInstance:
    return ProblemInstance(
        begin=0.0,
        end=12.0,
        jobs=(
            Job(0, 1.0, 2.0),
            Job(1, 2.0, 1.0),
            Job(2, 2.0, 2.0),
            Job(3, 3.0, 2.0),
        ),
        main_obstacles=(Interval(3.0, 4.0), Interval(6.0, 7.0)),
        background_obstacles=(Interval(4.0, 5.0),),
    )


def test_fig1_worked_example(benchmark):
    def build() -> str:
        instance = figure1_instance()
        plain = ext_johnson(instance)
        backfilled = ext_johnson_backfill(instance)
        plain.validate()
        backfilled.validate()

        # Figure 1c: ExtJohnson order 1,3,4,2 with job 2 pushed to the
        # end, makespan 13 (spills one unit past the iteration).
        assert plain.compression[1] == Interval(10.0, 12.0)
        assert plain.io[1] == Interval(12.0, 13.0)
        assert plain.io_makespan == 13.0

        # Figure 1d: backfilling slides job 2 into the [4,6] gap (R) and
        # [7,8] (B); the dump is fully concealed at makespan 12.
        assert backfilled.compression[1] == Interval(4.0, 6.0)
        assert backfilled.io[1] == Interval(7.0, 8.0)
        assert backfilled.io_makespan == 12.0

        lines = [
            "Figure 1c - ExtJohnson (io makespan 13.0, spills):",
            render_gantt(schedule_to_trace(plain)),
            "",
            "Figure 1d - ExtJohnson+BF (io makespan 12.0, concealed):",
            render_gantt(schedule_to_trace(backfilled)),
        ]
        return "\n".join(lines)

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig1_example", text)
