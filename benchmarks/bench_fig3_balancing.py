"""Figure 3: relative improvement from intra-node I/O workload balancing.

Paper setup: processes within one node whose compression ratios follow a
normal distribution scaled to a given max compression-ratio difference
(x-axis, up to ~20 for Nyx); y-axis is the execution-time improvement of
balanced over unbalanced I/O.  Expected shape: improvement grows with the
ratio difference, and is (near) zero — never negative — when the data is
evenly distributed.
"""

from __future__ import annotations

import numpy as np

from repro.core import IoTaskRef, balance_io_workloads
from repro.framework import format_table, line_chart

from .common import emit

_BLOCKS = 32
_BLOCK_BYTES = 8.39e6
_IO_BPS = 175e6
_SPREADS = [1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 20.0]


def _node_workloads(
    spread: float, processes: int, rng: np.random.Generator
) -> list[list[IoTaskRef]]:
    """Per-process I/O task lists under a given ratio spread."""
    log_span = 0.5 * np.log(max(spread, 1.0))
    z = np.clip(rng.normal(0, 1, processes), -2, 2)
    ratios = 16.0 * np.exp(z / 2 * log_span)
    workloads = []
    for rank in range(processes):
        ratio = float(ratios[rank])
        block_noise = rng.normal(1.0, 0.05, _BLOCKS)
        tasks = [
            IoTaskRef(
                owner=rank,
                job_index=j,
                duration=0.0015
                + (_BLOCK_BYTES / (ratio * max(block_noise[j], 0.5)))
                / _IO_BPS,
            )
            for j in range(_BLOCKS)
        ]
        workloads.append(tasks)
    return workloads


def _improvement(spread: float, processes: int, trials: int = 20) -> float:
    """Mean improvement of the I/O completion time (max over processes)."""
    gains = []
    for trial in range(trials):
        rng = np.random.default_rng((int(spread * 10), processes, trial))
        workloads = _node_workloads(spread, processes, rng)
        before = max(
            sum(t.duration for t in tasks) for tasks in workloads
        )
        result = balance_io_workloads(workloads)
        after = max(result.workloads_after)
        gains.append((before - after) / before)
    return float(np.mean(gains))


def test_fig3_balancing_improvement(benchmark):
    def build() -> str:
        rows = []
        series = {}
        for processes in (4, 8):
            for spread in _SPREADS:
                gain = _improvement(spread, processes)
                series[(processes, spread)] = gain
                rows.append(
                    (
                        f"{processes}",
                        f"{spread:.0f}x",
                        f"{gain * 100:.1f}%",
                    )
                )
        # Shape: improvement is monotone-ish in the spread and never
        # meaningfully negative (the paper: "no additional overhead").
        for processes in (4, 8):
            assert series[(processes, 1.0)] >= -1e-9
            assert (
                series[(processes, 20.0)] > series[(processes, 2.0)]
            )
            assert series[(processes, 20.0)] > 0.08
        table = format_table(
            rows,
            headers=(
                "processes/node",
                "max CR difference",
                "improvement",
            ),
        )
        chart = line_chart(
            {
                f"{p} processes": [
                    (spread, series[(p, spread)]) for spread in _SPREADS
                ]
                for p in (4, 8)
            },
            x_label="max CR difference",
            y_label="improvement (fraction)",
        )
        return table + "\n\n" + chart

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig3_balancing", text)
