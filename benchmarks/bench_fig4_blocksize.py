"""Figure 4: execution time vs fine-grained compression block size.

Paper setup: Nyx 512^3 over 8 GPUs (64 MB per field per process), three
run stages, buffer 20 MB, ExtJohnson+BF; block sizes 1-64 MB; relative to
the 64 MB (whole-field) execution time; plus a no-shared-tree series.
Expected shape: a sweet spot around 8-16 MB; very small blocks lose their
benefit, catastrophically so without the shared Huffman tree (the
constant tree-build cost is paid per block).
"""

from __future__ import annotations

from repro.apps import Stage
from repro.bench import bench_case
from repro.framework import format_table, ours_config

try:
    from .common import FixedStageNyx, emit, run_campaign
except ImportError:  # standalone: python benchmarks/bench_fig4_blocksize.py
    from common import FixedStageNyx, emit, run_campaign

_MB = 2**20
_BLOCK_SIZES = [1, 2, 4, 8, 16, 32, 64]


def _overall_time(stage: Stage, block_mb: int, shared_tree: bool) -> float:
    app = FixedStageNyx(
        stage,
        seed=4,
        partition_shape=(128, 256, 256),  # 64 MiB per field (float64)
    )
    config = ours_config(
        block_bytes=block_mb * _MB,
        use_shared_tree=shared_tree,
        use_balancing=False,  # isolate the blocking effect
    )
    result = run_campaign(
        app, config, nodes=2, ppn=4, iterations=4, seed=4
    )
    return float(
        sum(r.overall_s for r in result.dump_records())
        / len(result.dump_records())
    )


def test_fig4_block_size(benchmark):
    def build() -> str:
        rows = []
        series: dict[tuple[str, int], float] = {}
        for stage in Stage:
            reference = _overall_time(stage, 64, shared_tree=True)
            for block_mb in _BLOCK_SIZES:
                t = _overall_time(stage, block_mb, shared_tree=True)
                series[(stage.value, block_mb)] = t / reference
                rows.append(
                    (
                        stage.value,
                        f"{block_mb} MB",
                        "shared tree",
                        f"{t / reference:.3f}",
                    )
                )
        # The dashed no-shared-tree line (paper shows it for one stage).
        reference = _overall_time(Stage.MIDDLE, 64, shared_tree=True)
        no_tree: dict[int, float] = {}
        for block_mb in _BLOCK_SIZES:
            t = _overall_time(Stage.MIDDLE, block_mb, shared_tree=False)
            no_tree[block_mb] = t / reference
            rows.append(
                (
                    Stage.MIDDLE.value,
                    f"{block_mb} MB",
                    "no shared tree",
                    f"{t / reference:.3f}",
                )
            )

        # Shape checks: 8-16 MB beats whole-field for every stage, and
        # tiny blocks without the shared tree are the worst configuration.
        for stage in Stage:
            best_mid = min(
                series[(stage.value, 8)], series[(stage.value, 16)]
            )
            assert best_mid <= series[(stage.value, 64)] + 1e-9
        assert no_tree[1] > no_tree[8]
        assert no_tree[1] > series[(Stage.MIDDLE.value, 1)]
        return format_table(
            rows,
            headers=("stage", "block size", "tree", "relative exec time"),
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig4_blocksize", text)


# -- repro.bench registration ------------------------------------------
@bench_case(
    "fig4.blocksize_campaign",
    group="figures",
    params={"block_mb": 8, "edge": 64, "iterations": 3},
    quick={"edge": 24, "iterations": 2},
    warmup=0,
    repeats=3,
    timeout_s=300.0,
)
def bench_blocksize_campaign(block_mb=8, edge=64, iterations=3):
    """One ours-config campaign at the Figure 4 sweet-spot block size
    (balancing off to time the fine-grained blocking path itself)."""
    app = FixedStageNyx(
        Stage.MIDDLE, seed=4, partition_shape=(edge, edge, edge)
    )
    config = ours_config(
        block_bytes=block_mb * _MB, use_balancing=False
    )
    run_campaign(app, config, nodes=2, ppn=2, iterations=iterations, seed=4)


if __name__ == "__main__":
    from repro.bench import standalone_main

    raise SystemExit(standalone_main())
