"""Figure 5: combined I/O time vs compressed-data-buffer size.

Paper setup: same configuration as the block-size experiment with 8 MB
blocks; buffer sizes 0-40 MB; y-axis is the combined time of the
compressed-data I/O tasks relative to no buffer.  Expected shape: the
buffer cuts I/O time sharply at first (per-write latency is amortized
over consolidated blocks), then plateaus — the paper picks 20 MB.
"""

from __future__ import annotations

from repro.apps import Stage
from repro.bench import bench_case
from repro.framework import ProcessRuntime, format_table, line_chart, ours_config
from repro.simulator import ZERO_NOISE

try:
    from .common import FixedStageNyx, emit
except ImportError:  # standalone: python benchmarks/bench_fig5_buffer.py
    from common import FixedStageNyx, emit

_MB = 2**20
_BUFFER_SIZES_MB = [0, 1, 2, 5, 10, 20, 40]


def _combined_io_time(buffer_mb: int) -> float:
    app = FixedStageNyx(
        Stage.MIDDLE, seed=5, partition_shape=(128, 256, 256)
    )
    config = ours_config(buffer_bytes=buffer_mb * _MB)
    runtime = ProcessRuntime(
        rank=0, app=app, config=config, node_size=4, noise=ZERO_NOISE
    )
    runtime.observe_iteration(app.iteration_profile(0))
    plan = runtime.plan_dump(1)
    return plan.total_predicted_io


def test_fig5_buffer_size(benchmark):
    def build() -> str:
        reference = _combined_io_time(0)
        rows = []
        series = {}
        for buffer_mb in _BUFFER_SIZES_MB:
            t = _combined_io_time(buffer_mb)
            series[buffer_mb] = t / reference
            rows.append((f"{buffer_mb} MB", f"{t / reference:.3f}"))

        # Shape checks: monotone non-increasing, a clear win by 20 MB,
        # and only marginal further gain from 20 -> 40 MB (the plateau
        # the paper uses to justify stopping at 20 MB).
        values = [series[b] for b in _BUFFER_SIZES_MB]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
        assert series[20] < 0.75
        assert series[20] - series[40] < 0.05
        table = format_table(
            rows, headers=("buffer size", "relative combined I/O time")
        )
        chart = line_chart(
            {"relative I/O time": [
                (float(b), series[b]) for b in _BUFFER_SIZES_MB
            ]},
            x_label="buffer size (MB)",
            y_label="relative combined I/O time",
        )
        return table + "\n\n" + chart

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig5_buffer", text)


# -- repro.bench registration ------------------------------------------
@bench_case(
    "fig5.buffer_plan",
    group="figures",
    params={"buffer_mb": 20, "edge": 128},
    quick={"edge": 48},
    warmup=1,
    repeats=3,
    timeout_s=120.0,
)
def bench_buffer_plan(buffer_mb=20, edge=128):
    """Plan one dump with the compressed-data buffer enabled — the
    consolidation path whose win Figure 5 quantifies."""
    app = FixedStageNyx(
        Stage.MIDDLE, seed=5, partition_shape=(edge, edge, edge)
    )
    config = ours_config(buffer_bytes=buffer_mb * _MB)
    runtime = ProcessRuntime(
        rank=0, app=app, config=config, node_size=4, noise=ZERO_NOISE
    )
    runtime.observe_iteration(app.iteration_profile(0))
    runtime.plan_dump(1)


if __name__ == "__main__":
    from repro.bench import standalone_main

    raise SystemExit(standalone_main())
