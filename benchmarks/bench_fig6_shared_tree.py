"""Figure 6: compression-ratio degradation when reusing a Huffman tree.

Paper setup: reuse the Huffman tree built from iteration 0's quantization
codes for later iterations, at three run stages; y-axis is the compression
ratio relative to building a fresh tree.  Expected shape: the relative
ratio stays within a few percent for ~10 iterations, degrades faster in
late (rapidly evolving) stages, and a tree built from the *previous*
iteration (the paper's recommendation) shows negligible degradation.

Unlike the campaign benches, this experiment compresses real synthetic
Nyx data: quantization-code histograms come from the actual SZ pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.apps import NyxModel
from repro.compression import (
    SZCompressor,
    build_codebook,
    degradation_ratio,
)
from repro.framework import format_table

from .common import emit

_FIELDS = ("temperature", "baryon_density")
_SHAPE = (24, 24, 24)
_WINDOW = 10  # iterations the tree is reused for
_STAGE_STARTS = {"beginning": 0, "middle": 10, "end": 19}


def _histogram(app, compressor, iteration: int) -> np.ndarray:
    hist = np.zeros(2 * compressor.radius + 1, dtype=np.int64)
    for field_name in _FIELDS:
        field = app.generate_field(field_name, 0, iteration, shape=_SHAPE)
        eb = app.field(field_name).error_bound
        hist += compressor.histogram(field, eb)
    return hist


def test_fig6_shared_tree_degradation(benchmark):
    def build() -> str:
        app = NyxModel(seed=6, total_iterations=30)
        compressor = SZCompressor()
        rows = []
        series: dict[tuple[str, int], float] = {}
        hist_cache: dict[int, np.ndarray] = {}

        def hist(iteration: int) -> np.ndarray:
            if iteration not in hist_cache:
                hist_cache[iteration] = _histogram(
                    app, compressor, iteration
                )
            return hist_cache[iteration]

        for stage, start in _STAGE_STARTS.items():
            tree0 = build_codebook(
                hist(start), force_symbols=(compressor.sentinel,)
            )
            for age in range(_WINDOW):
                rel = degradation_ratio(hist(start + age), tree0)
                series[(stage, age)] = rel
                rows.append(
                    (stage, f"+{age}", "iteration-0 tree", f"{rel:.4f}")
                )
        # The previous-iteration tree (rebuild each iteration).
        for age_iter in range(1, 6):
            prev_tree = build_codebook(
                hist(age_iter - 1), force_symbols=(compressor.sentinel,)
            )
            rel = degradation_ratio(hist(age_iter), prev_tree)
            series[("previous", age_iter)] = rel
            rows.append(
                (
                    "middle",
                    f"iter {age_iter}",
                    "previous-iteration tree",
                    f"{rel:.4f}",
                )
            )

        # Shape checks.
        for stage in _STAGE_STARTS:
            assert series[(stage, 0)] > 0.97  # fresh tree ~ native
            # Reusable for ~10 iterations without catastrophic loss.
            assert series[(stage, _WINDOW - 1)] > 0.70
            # Degradation is monotone-ish: the oldest reuse is the worst
            # half of the window on average.
            early = np.mean([series[(stage, a)] for a in range(3)])
            late = np.mean(
                [series[(stage, a)] for a in range(_WINDOW - 3, _WINDOW)]
            )
            assert late <= early + 0.01
        # Early-run data is the most stable (the paper: the tree "can be
        # effectively utilized for a greater number of iterations" there).
        assert (
            series[("beginning", 4)] >= series[("middle", 4)] - 0.01
        )
        for age_iter in range(1, 6):
            assert series[("previous", age_iter)] > 0.95
        return format_table(
            rows,
            headers=("stage", "iterations since build", "tree", "relative CR"),
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig6_shared_tree", text)
