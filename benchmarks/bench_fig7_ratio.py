"""Figure 7: time overhead vs average compression ratio (simulation).

Paper setup: simulated evaluation with Nyx computation intervals and the
Section 5.4.1 noise models; x-axis sweeps the achievable average
compression ratio; bars compare the baseline (no compression, synchronous
I/O) and our solution.  Expected shape: ours is far below the baseline at
every ratio and improves slightly as the ratio grows (smaller compressed
data means shorter, easier-to-hide I/O); the baseline is flat (it never
compresses).
"""

from __future__ import annotations

from repro.framework import baseline_config, format_table, line_chart, ours_config
from repro.io import IoThroughputModel

from .common import emit, mean_overhead, scaled_ratio_nyx

_RATIOS = [2, 4, 8, 16, 32, 64, 128]
#: The simulated runs model a more contended filesystem share than the
#: in situ defaults so low compression ratios visibly pressure the
#: background thread (the regime Figures 7-8 explore).
_SIM_IO = IoThroughputModel(node_bandwidth_bytes_per_s=0.35e9)


def test_fig7_ratio_sweep(benchmark):
    def build() -> str:
        rows = []
        ours = {}
        baseline = {}
        for ratio in _RATIOS:
            app = scaled_ratio_nyx(float(ratio), seed=7)
            baseline[ratio] = mean_overhead(
                app, baseline_config(io_model=_SIM_IO), nodes=2, ppn=4, iterations=5, seed=7
            )
            ours[ratio] = mean_overhead(
                app, ours_config(io_model=_SIM_IO), nodes=2, ppn=4, iterations=5, seed=7
            )
            rows.append(
                (
                    f"{ratio}x",
                    f"{baseline[ratio] * 100:.1f}%",
                    f"{ours[ratio] * 100:.1f}%",
                )
            )
        # Shape checks: always better than the baseline, and decisively
        # (>2x) once compression achieves a useful ratio (>= 4x).  At 2x
        # the compressed volume still pressures the background thread —
        # the regime where the paper's gains genuinely shrink.
        for ratio in _RATIOS:
            assert ours[ratio] < baseline[ratio]
            if ratio >= 4:
                assert ours[ratio] < baseline[ratio] / 2
        assert ours[_RATIOS[-1]] <= ours[_RATIOS[0]] + 1e-9
        spread = max(baseline.values()) - min(baseline.values())
        assert spread < 0.25 * max(baseline.values())  # baseline ~flat
        table = format_table(
            rows,
            headers=(
                "avg compression ratio",
                "baseline overhead",
                "ours overhead",
            ),
        )
        import math

        chart = line_chart(
            {
                "baseline": [
                    (math.log2(r), baseline[r]) for r in _RATIOS
                ],
                "ours": [(math.log2(r), ours[r]) for r in _RATIOS],
            },
            x_label="log2(average compression ratio)",
            y_label="relative overhead",
        )
        return table + "\n\n" + chart

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig7_ratio", text)
