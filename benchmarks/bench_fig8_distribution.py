"""Figure 8: time overhead vs data distribution (simulation).

Paper setup: same simulated methodology as Figure 7; the x-axis is the
intra-node maximum compression-ratio difference (how unevenly the data's
compressibility is distributed across a node's processes).  Expected
shape: ours stays far below the baseline everywhere; its overhead creeps
up as the spread grows (straggler processes), mitigated by the I/O
workload balancing design.
"""

from __future__ import annotations

from repro.framework import baseline_config, format_table, line_chart, ours_config
from repro.io import IoThroughputModel

from .common import FixedSpreadNyx, emit, mean_overhead

#: A heavily contended filesystem share: low-compressibility straggler
#: partitions visibly pressure their background thread, which is the
#: regime the balancing design targets.
_SIM_IO = IoThroughputModel(node_bandwidth_bytes_per_s=0.2e9)

_SPREADS = [1, 2, 4, 8, 12, 16, 20]


def test_fig8_distribution_sweep(benchmark):
    def build() -> str:
        rows = []
        ours = {}
        baseline = {}
        unbalanced = {}
        for spread in _SPREADS:
            app = FixedSpreadNyx(float(spread), seed=8)
            baseline[spread] = mean_overhead(
                app, baseline_config(io_model=_SIM_IO), nodes=2, ppn=4, iterations=5, seed=8
            )
            ours[spread] = mean_overhead(
                app, ours_config(io_model=_SIM_IO), nodes=2, ppn=4, iterations=5, seed=8
            )
            unbalanced[spread] = mean_overhead(
                app,
                ours_config(use_balancing=False, io_model=_SIM_IO),
                nodes=2,
                ppn=4,
                iterations=5,
                seed=8,
            )
            rows.append(
                (
                    f"{spread}x",
                    f"{baseline[spread] * 100:.1f}%",
                    f"{ours[spread] * 100:.1f}%",
                    f"{unbalanced[spread] * 100:.1f}%",
                )
            )
        # Shape checks.
        for spread in _SPREADS:
            assert ours[spread] < baseline[spread] / 2
        # High spread hurts, and balancing mitigates it there.
        assert ours[20] >= ours[1] - 1e-9
        assert ours[20] <= unbalanced[20] + 1e-9
        table = format_table(
            rows,
            headers=(
                "max CR difference",
                "baseline",
                "ours",
                "ours w/o balancing",
            ),
        )
        chart = line_chart(
            {
                "ours": [(float(sp), ours[sp]) for sp in _SPREADS],
                "ours w/o balancing": [
                    (float(sp), unbalanced[sp]) for sp in _SPREADS
                ],
            },
            x_label="max CR difference",
            y_label="relative overhead",
        )
        return table + "\n\n" + chart

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig8_distribution", text)
