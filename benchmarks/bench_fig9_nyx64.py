"""Figure 9: Nyx at 16 nodes / 64 GPUs — the headline comparison.

Paper setup: baseline (no compression, synchronous writes), asynchronous
I/O without compression, our solution, and the noise-free simulation of
our solution for reference.  Expected shape: ours reduces the I/O
overhead by roughly 3.8x vs the baseline and 2.6x vs async-only, and the
in situ (noisy) measurement is slightly above its simulation.
"""

from __future__ import annotations

from repro.apps import NyxModel
from repro.framework import (
    async_io_config,
    baseline_config,
    compare,
    format_table,
    ours_config,
)
from repro.simulator import NoiseModel

from .common import emit, run_campaign

_NODES = 16
_PPN = 4
_ITERATIONS = 8


def test_fig9_nyx_64gpus(benchmark):
    def build() -> str:
        app = NyxModel(seed=9)
        results = {}
        for name, config, noise in (
            ("baseline", baseline_config(), None),
            ("async-I/O", async_io_config(), None),
            ("ours", ours_config(), None),
            (
                "ours (simulation)",
                ours_config(),
                NoiseModel(
                    seed=0,
                    interval_sigma_frac=0.0,
                    ratio_sigma_frac=0.0,
                    compression_sigma_frac=0.0,
                    io_sigma_frac=0.0,
                ),
            ),
        ):
            results[name] = run_campaign(
                app,
                config,
                nodes=_NODES,
                ppn=_PPN,
                iterations=_ITERATIONS,
                seed=9,
                solution=name,
                noise=noise,
            )
        rows = [
            (name, f"{r.mean_relative_overhead * 100:.1f}%")
            for name, r in results.items()
        ]
        comparison = compare(
            results["baseline"], results["async-I/O"], results["ours"]
        )
        rows.append(
            (
                "improvement vs baseline",
                f"{comparison.improvement_over_baseline:.2f}x (paper: 3.78x)",
            )
        )
        rows.append(
            (
                "improvement vs async-I/O",
                f"{comparison.improvement_over_previous:.2f}x (paper: 2.57x)",
            )
        )

        # Shape checks: correct ordering, factors in the paper's regime,
        # real execution slightly above its simulation.
        b = results["baseline"].mean_relative_overhead
        p = results["async-I/O"].mean_relative_overhead
        o = results["ours"].mean_relative_overhead
        sim = results["ours (simulation)"].mean_relative_overhead
        assert o < p < b
        assert 2.0 < comparison.improvement_over_baseline < 8.0
        assert 1.5 < comparison.improvement_over_previous < 6.0
        assert o >= sim - 0.02
        return format_table(
            rows, headers=("solution", "I/O overhead (rel. to compute)")
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig9_nyx64", text)
