"""Prediction quality: history-based scheduling vs oracle (Section 5.2).

Section 5.2 schedules with *actual* values "to accurately evaluate the
performance of the proposed task scheduling algorithms" and notes the
overall framework "is slightly better than that in subsequent sections
that employ predicted values ... primarily attributed to the inherent
uncertainty associated with predicting."  This bench reproduces that
comparison: the same campaigns run once with history-based predictions
(the deployable framework) and once with oracle inputs.  Expected shape:
the oracle is at least as good, by a small margin.
"""

from __future__ import annotations

from repro.apps import NyxModel, WarpXModel
from repro.framework import format_table, ours_config

from .common import emit, mean_overhead


def test_prediction_vs_oracle(benchmark):
    def build() -> str:
        rows = []
        for name, app in (
            ("nyx", NyxModel(seed=27)),
            ("warpx", WarpXModel(seed=27)),
        ):
            predicted = mean_overhead(
                app,
                ours_config(),
                nodes=2,
                ppn=4,
                iterations=6,
                seed=27,
            )
            oracle = mean_overhead(
                app,
                ours_config(oracle_scheduling=True),
                nodes=2,
                ppn=4,
                iterations=6,
                seed=27,
            )
            gap = (predicted - oracle) / oracle if oracle > 0 else 0.0
            rows.append(
                (
                    name,
                    f"{predicted * 100:.2f}%",
                    f"{oracle * 100:.2f}%",
                    f"{gap * 100:+.1f}%",
                )
            )
            # Shape: oracle never worse by more than noise; prediction
            # penalty stays small (the paper: "slightly better").
            assert oracle <= predicted * 1.02
            assert predicted <= oracle * 1.25
        return format_table(
            rows,
            headers=(
                "app",
                "predicted inputs (deployable)",
                "oracle inputs (Section 5.2)",
                "prediction penalty",
            ),
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("prediction_oracle", text)
