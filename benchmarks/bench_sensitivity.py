"""Prediction-noise sensitivity (the Section 3.1 robustness claim).

The scheduler plans with imperfect inputs: "slight variations in the
required task lengths and dates between neighboring iterations may result
in some performance degradation ... these variations do not significantly
impact the effectiveness of the proposed solution."  This bench sweeps
the Section 5.4.1 noise sigmas from zero to 4x their paper values and
measures our solution's overhead: it must degrade gracefully (small,
monotone-ish growth) and keep beating the baseline by a wide margin even
at 4x noise.
"""

from __future__ import annotations

from repro.apps import NyxModel
from repro.framework import baseline_config, format_table, ours_config
from repro.simulator import NoiseModel

from .common import emit, run_campaign

#: Multiples of the paper's sigmas (interval 1 %, ratio 10 %, times 5 %).
_NOISE_SCALES = [0.0, 0.5, 1.0, 2.0, 4.0]


def _noise(scale: float) -> NoiseModel:
    return NoiseModel(
        seed=17,
        interval_sigma_frac=0.01 * scale,
        ratio_sigma_frac=0.10 * scale,
        compression_sigma_frac=0.05 * scale,
        io_sigma_frac=0.05 * scale,
    )


def test_noise_sensitivity(benchmark):
    def build() -> str:
        app = NyxModel(seed=17)
        baseline = run_campaign(
            app,
            baseline_config(),
            nodes=2,
            ppn=4,
            iterations=6,
            seed=17,
        ).mean_relative_overhead
        rows = []
        ours = {}
        for scale in _NOISE_SCALES:
            result = run_campaign(
                app,
                ours_config(),
                nodes=2,
                ppn=4,
                iterations=6,
                seed=17,
                noise=_noise(scale),
            )
            ours[scale] = result.mean_relative_overhead
            rows.append(
                (
                    f"{scale:.1f}x paper sigmas",
                    f"{ours[scale] * 100:.1f}%",
                    f"{baseline / ours[scale]:.2f}x",
                )
            )
        # Shape: graceful degradation; still >2x better than baseline at
        # 4x the paper's measured uncertainty.
        assert ours[4.0] >= ours[0.0] - 1e-9
        assert ours[4.0] <= ours[0.0] * 1.5
        assert baseline / ours[4.0] > 2.0
        return format_table(
            rows,
            headers=(
                "prediction noise",
                "ours overhead",
                "improvement vs baseline",
            ),
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("sensitivity_noise", text)
