"""Service benchmarks: what memoization buys on the request path.

Registers the cold and cached solve paths of the scheduling service
with the regression gate (group ``service``)::

    PYTHONPATH=src python -m repro bench run --filter service --quick

``service.solve_cold`` measures one full request through parse ->
admission -> batching dispatch -> solver, with the memo cache bypassed;
``service.solve_cached`` measures the identical request answered from
the cache.  The CI ``service-smoke`` job gates on the cached path being
at least an order of magnitude faster than the cold one — the headline
property of scheduling-as-a-service.

The workload is ``TwoListsGreedy`` on a randomized instance: expensive
enough that solver time dominates the request, the regime memoization
exists for.  Both cases share one module-level service (built on first
use) so the timed body is purely the request, not service construction.
"""

from __future__ import annotations

import numpy as np

from repro.bench import bench_case

_ALGORITHM = "TwoListsGreedy"
_STATE: dict[int, dict] = {}


def _build_instance(jobs: int):
    from repro.core import Interval, Job, ProblemInstance

    rng = np.random.default_rng(61)
    length = 30.0

    def obstacles(count):
        points = np.sort(rng.uniform(0.0, length, size=2 * count))
        return tuple(
            Interval(float(points[2 * i]), float(points[2 * i + 1]))
            for i in range(count)
        )

    return ProblemInstance(
        begin=0.0,
        end=length,
        jobs=tuple(
            Job(
                i,
                float(rng.uniform(0.2, 2.0)),
                float(rng.uniform(0.2, 2.0)),
            )
            for i in range(jobs)
        ),
        main_obstacles=obstacles(3),
        background_obstacles=obstacles(2),
    )


def _state(jobs: int) -> dict:
    """One long-lived service plus prebuilt payloads, per instance size."""
    if jobs not in _STATE:
        from repro.core import instance_json_dict
        from repro.service import SchedulingService, ServiceConfig

        service = SchedulingService(
            ServiceConfig(
                workers=2,
                batch_window_s=0.0,
                quota_rate=1e9,
                quota_burst=1e9,
            )
        )
        instance_doc = instance_json_dict(_build_instance(jobs))
        state = {
            "service": service,
            "cold": {
                "instance": instance_doc,
                "algorithm": _ALGORITHM,
                "cache": False,
            },
            "warm": {"instance": instance_doc, "algorithm": _ALGORITHM},
        }
        # Prime the cache so every ``warm`` request is a guaranteed hit.
        status, body = service.solve(dict(state["warm"]))
        assert status == 200, body
        _STATE[jobs] = state
    return _STATE[jobs]


@bench_case(
    "service.solve_cold",
    group="service",
    params={"jobs": 12},
    quick={"jobs": 12},
    warmup=1,
    repeats=5,
    timeout_s=120.0,
)
def bench_solve_cold(jobs=12):
    """Full request path, memo cache bypassed: admission + dispatch +
    solver every time."""
    state = _state(jobs)
    status, body = state["service"].solve(dict(state["cold"]))
    assert status == 200, body
    assert body["cache"] == "bypass"


@bench_case(
    "service.solve_cached",
    group="service",
    params={"jobs": 12},
    quick={"jobs": 12},
    warmup=3,
    repeats=9,
    timeout_s=60.0,
)
def bench_solve_cached(jobs=12):
    """The identical request answered from the memo cache."""
    state = _state(jobs)
    status, body = state["service"].solve(dict(state["warm"]))
    assert status == 200, body
    assert body["cache"] == "hit", body["cache"]
