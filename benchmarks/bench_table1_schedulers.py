"""Table 1: iteration duration achieved by each scheduling algorithm.

Paper setup: Nyx at 1024^3 over 16 GPUs, 8.39 MB fine-grained blocks, 32
blocks per process, instances sampled at three run stages, actual (not
predicted) task durations.  Expected shape: ExtJohnson+BF achieves the
best duration/overhead trade-off; the plain generation order is worst;
the greedies land in between at much higher scheduling cost; the ILP
cannot finish at this size.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.apps import Stage
from repro.apps.workloads import generate_profile
from repro.core import (
    ALGORITHMS,
    Job,
    ProblemInstance,
    local_search_schedule,
    solve,
)
from repro.bench import bench_case
from repro.framework import format_table

try:
    from .common import emit
except ImportError:  # standalone: python benchmarks/bench_table1_schedulers.py
    from common import emit

_ITERATION_S = 4.0
_NUM_BLOCKS = 32
_BLOCK_BYTES = 8.39e6
_COMPRESSION_BPS = 190e6
_IO_BPS = 175e6
_SPREADS = {Stage.BEGINNING: 2.0, Stage.MIDDLE: 8.0, Stage.END: 20.0}


def table1_instance(stage: Stage, seed: int) -> ProblemInstance:
    """A measured-durations instance like the paper's Table 1 samples."""
    rng = np.random.default_rng((seed, list(Stage).index(stage)))
    profile = generate_profile(
        length=_ITERATION_S,
        num_main_tasks=9,
        main_busy_fraction=0.68,
        num_background_tasks=4,
        background_busy_fraction=0.35,
        rng=rng,
    )
    spread = _SPREADS[stage]
    log_span = 0.5 * np.log(spread)
    ratios = 16.0 * np.exp(
        np.clip(rng.normal(0, 1, _NUM_BLOCKS), -2, 2) / 2 * log_span
    )
    jobs = []
    for j in range(_NUM_BLOCKS):
        compression = (_BLOCK_BYTES / _COMPRESSION_BPS) * float(
            rng.normal(1.0, 0.05)
        )
        io = 0.0015 + (_BLOCK_BYTES / ratios[j]) / _IO_BPS
        jobs.append(Job(j, max(compression, 1e-4), max(io, 1e-4)))
    return ProblemInstance(
        begin=0.0,
        end=_ITERATION_S,
        jobs=tuple(jobs),
        main_obstacles=profile.main_obstacles,
        background_obstacles=profile.background_obstacles,
    )


_INSTANCES = [
    table1_instance(stage, seed)
    for stage in Stage
    for seed in (1, 2)
]


_EVAL_CACHE: dict[str, tuple[float, float]] = {}


def _evaluate(name: str, cache: bool = True) -> tuple[float, float]:
    """(mean iteration duration, total scheduling time) over samples.

    Runs through the :func:`repro.core.solve` facade so the benchmark
    measures exactly what the framework's hot path executes.
    """
    if cache and name in _EVAL_CACHE:
        return _EVAL_CACHE[name]
    durations = []
    elapsed = 0.0
    for instance in _INSTANCES:
        result = solve(instance, name)
        durations.append(result.schedule.overall_time)
        elapsed += result.wall_time
    outcome = (float(np.mean(durations)), elapsed)
    if cache:
        _EVAL_CACHE[name] = outcome
    return outcome


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_table1_schedulers(benchmark, name):
    duration, _ = benchmark.pedantic(
        lambda: _evaluate(name), rounds=1, iterations=1
    )
    benchmark.extra_info["iteration_duration_s"] = duration
    assert duration >= _ITERATION_S  # can never beat the computation


def test_table1_report(benchmark):
    def build() -> str:
        rows = []
        results = {}
        for name in ALGORITHMS:
            duration, sched_time = _evaluate(name)
            results[name] = duration
            rows.append(
                (name, f"{duration:.3f}", f"{sched_time * 1e3:.1f} ms")
            )
        # Extension row: the anytime local search at a 100 ms budget.
        t0 = time.perf_counter()
        ls_durations = [
            local_search_schedule(inst, time_budget_s=0.1).overall_time
            for inst in _INSTANCES
        ]
        rows.append(
            (
                "LocalSearch (extension)",
                f"{float(np.mean(ls_durations)):.3f}",
                f"{(time.perf_counter() - t0) * 1e3:.1f} ms",
            )
        )
        ilp = solve(_INSTANCES[0], "ILP", time_limit=5.0)
        rows.append(
            (
                "ILP (Appendix A)",
                "-" if ilp.schedule is None else f"{ilp.makespan:.3f}",
                f"{ilp.status} @ 5s limit, "
                f"{ilp.detail['num_variables']} vars / "
                f"{ilp.detail['num_constraints']} rows",
            )
        )
        text = format_table(
            rows,
            headers=(
                "Algorithm",
                "Iteration duration (s)",
                "Scheduling cost",
            ),
        )
        # Shape checks from the paper's Table 1.
        assert (
            results["ExtJohnson+BF"]
            <= min(
                results["ExtJohnson"],
                results["GenerationListSchedule"],
                results["GenerationListSchedule+BF"],
            )
            + 1e-9
        )
        assert (
            results["GenerationListSchedule"]
            >= max(results["ExtJohnson+BF"], results["TwoListsGreedy"]) - 1e-9
        )
        return text

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("table1_schedulers", text)


# -- repro.bench registration ------------------------------------------
@bench_case(
    "table1.scheduler_sweep",
    group="scheduling",
    params={"algorithms": None, "num_instances": 6},
    quick={"algorithms": ("ExtJohnson+BF", "OneListGreedy"),
           "num_instances": 2},
    warmup=1,
    repeats=3,
    timeout_s=120.0,
)
def bench_scheduler_sweep(algorithms=None, num_instances=6):
    """Solve the Table 1 instances with the requested heuristics
    through the same :func:`repro.core.solve` facade the runtime uses."""
    names = list(algorithms) if algorithms else list(ALGORITHMS)
    for instance in _INSTANCES[:num_instances]:
        for name in names:
            solve(instance, name)


@bench_case(
    "table1.local_search",
    group="scheduling",
    params={"budget_s": 0.05, "num_instances": 2},
    quick={"budget_s": 0.02, "num_instances": 1},
    warmup=0,
    repeats=3,
    timeout_s=60.0,
)
def bench_local_search(budget_s=0.05, num_instances=2):
    """The anytime local-search extension at a fixed time budget."""
    for instance in _INSTANCES[:num_instances]:
        local_search_schedule(instance, time_budget_s=budget_s)


if __name__ == "__main__":
    from repro.bench import standalone_main

    raise SystemExit(standalone_main())
