"""Shared helpers for the per-figure benchmark harnesses.

Every benchmark regenerates one table or figure of the paper's evaluation
and both prints the reproduced rows/series and saves them under
``benchmarks/results/`` so the numbers survive pytest's output capture.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.apps import NyxModel, Stage
from repro.apps.base import FieldSpec
from repro.framework import CampaignRunner, FrameworkConfig
from repro.simulator import ClusterSpec, NoiseModel
from repro.telemetry import NULL_TRACER, NullTracer, Tracer

RESULTS_DIR = Path(__file__).parent / "results"

#: Either tracer flavour; :class:`Tracer` subclasses :class:`NullTracer`,
#: so the union spells out what call sites actually pass.
AnyTracer = NullTracer | Tracer


def emit(name: str, text: str, data: object | None = None) -> None:
    """Print a reproduced table and persist it to benchmarks/results/.

    Writes ``<name>.txt`` plus a ``<name>.json`` sidecar (the text split
    into lines, and optionally a structured ``data`` payload) so figure
    outputs diff cleanly run-to-run.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    sidecar: dict[str, object] = {"name": name, "lines": text.splitlines()}
    if data is not None:
        sidecar["data"] = data
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n"
    )


def emit_trace(tracer: AnyTracer, name: str) -> None:
    """Persist a recording tracer's records to
    ``benchmarks/results/<name>.trace.jsonl`` (no-op for NullTracer), so
    any bench can dump the timeline behind its table."""
    if not tracer.enabled:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    tracer.recorder.write_jsonl(RESULTS_DIR / f"{name}.trace.jsonl")


def run_campaign(
    app,
    config: FrameworkConfig,
    nodes: int = 1,
    ppn: int = 4,
    iterations: int = 6,
    seed: int = 1,
    solution: str = "run",
    noise: NoiseModel | None = None,
    tracer: AnyTracer = NULL_TRACER,
    trace_name: str | None = None,
):
    """Run one campaign; ``trace_name`` records and dumps its trace."""
    if trace_name is not None and not tracer.enabled:
        tracer = Tracer()
    cluster = ClusterSpec(num_nodes=nodes, processes_per_node=ppn)
    runner = CampaignRunner(
        app,
        cluster,
        config,
        solution=solution,
        seed=seed,
        noise=noise,
        tracer=tracer,
    )
    result = runner.run(iterations)
    if trace_name is not None:
        emit_trace(tracer, trace_name)
    return result


def mean_overhead(
    app, config: FrameworkConfig, **kwargs
) -> float:
    """Mean relative I/O overhead over a campaign's dump iterations."""
    return run_campaign(app, config, **kwargs).mean_relative_overhead


class FixedStageNyx(NyxModel):
    """Nyx variant pinned to one run stage (for per-stage sweeps)."""

    def __init__(self, stage: Stage, **kwargs) -> None:
        super().__init__(**kwargs)
        self._fixed_stage = stage

    def stage_of(self, iteration, total_iterations=None):
        return self._fixed_stage


class FixedSpreadNyx(NyxModel):
    """Nyx variant with a pinned intra-node max compression-ratio
    difference (the Figure 3/8 x-axis).

    Multipliers are spread evenly in log space across the node's ranks so
    the *realized* max/min ratio equals the requested spread — the
    figure's x-axis is the assumed spread, not a lucky draw.
    """

    def __init__(self, spread: float, **kwargs) -> None:
        super().__init__(**kwargs)
        self._spread = spread

    def max_ratio_difference(self, stage):
        return self._spread

    def rank_multipliers(self, node_size, stage, iteration):
        log_span = 0.5 * np.log(max(self._spread, 1.0))
        z = (
            np.linspace(-2.0, 2.0, node_size)
            if node_size > 1
            else np.zeros(1)
        )
        multipliers = np.exp(z / 2.0 * log_span)
        drift = self._rng(2000, iteration).normal(1.0, 0.0145, node_size)
        return multipliers * np.clip(drift, 0.9, 1.1)


def scaled_ratio_nyx(average_ratio: float, **kwargs) -> NyxModel:
    """Nyx variant whose fields average ``average_ratio`` (Figure 7)."""
    app = NyxModel(**kwargs)
    base_mean = float(np.mean([f.base_ratio for f in app.fields]))
    factor = average_ratio / base_mean
    app.fields = tuple(
        FieldSpec(f.name, f.error_bound, f.base_ratio * factor)
        for f in app.fields
    )
    return app
