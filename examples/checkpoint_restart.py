#!/usr/bin/env python
"""Checkpoint/restart with compressed snapshots and subfiling.

A toy iterative "simulation" (a diffusing field) checkpoints its state
with :func:`repro.framework.save_snapshot` every iteration — one run into
a single shared file, one into a subfiled directory (the paper's Section 6
multi-file future work).  The run is then "crashed" and restarted from the
last checkpoint; the restarted trajectory is verified to track the
original within the accumulated error bound.

Run:  python examples/checkpoint_restart.py
"""

import os
import tempfile

import numpy as np
from scipy import ndimage

from repro.compression import CompressedBlock, max_abs_error
from repro.framework import load_snapshot, save_snapshot
from repro.io import SubfileReader, SubfileWriter

SHAPE = (32, 32)
ERROR_BOUND = 1e-4
CRASH_AT = 6
TOTAL = 10


def step(state: np.ndarray) -> np.ndarray:
    """One 'simulation' iteration: diffusion plus a rotating source."""
    diffused = ndimage.uniform_filter(state, size=3, mode="wrap")
    source = np.zeros_like(state)
    source[8, 8] = 1.0
    return 0.98 * diffused + 0.02 * source


def run_with_checkpoints(workdir: str) -> tuple[np.ndarray, str]:
    rng = np.random.default_rng(33)
    state = rng.normal(size=SHAPE)
    last_checkpoint = ""
    for iteration in range(CRASH_AT):
        state = step(state)
        last_checkpoint = os.path.join(workdir, f"ckpt_{iteration:03d}.rpio")
        save_snapshot(
            last_checkpoint,
            {"state": state},
            error_bounds=ERROR_BOUND,
            block_bytes=2048,
        )
    return state, last_checkpoint


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-ckpt-")

    # --- original run until the "crash" -------------------------------
    state_at_crash, checkpoint = run_with_checkpoints(workdir)
    print(f"crashed after iteration {CRASH_AT - 1}; restarting from "
          f"{os.path.basename(checkpoint)}")

    # --- restart -------------------------------------------------------
    restored = load_snapshot(checkpoint)["state"]
    drift = max_abs_error(state_at_crash, restored)
    print(f"restart state max error vs original: {drift:.2e} "
          f"(bound {ERROR_BOUND:g})")
    assert drift <= ERROR_BOUND * (1 + 1e-9)

    reference = state_at_crash
    resumed = restored
    for _ in range(CRASH_AT, TOTAL):
        reference = step(reference)
        resumed = step(resumed)
    final_drift = max_abs_error(reference, resumed)
    print(f"after {TOTAL - CRASH_AT} more iterations, trajectories "
          f"diverge by {final_drift:.2e} (diffusion contracts errors)")
    assert final_drift <= ERROR_BOUND * 2

    # --- the same checkpoint through subfiling -------------------------
    subdir = os.path.join(workdir, "subfiled")
    blocks = _compress_to_subfiles(reference, subdir, num_subfiles=3)
    restored2 = _load_from_subfiles(subdir, blocks)
    err = max_abs_error(reference, restored2)
    print(f"subfiled checkpoint ({blocks} blocks across 3 subfiles) "
          f"max error: {err:.2e}")
    assert err <= ERROR_BOUND * (1 + 1e-9)
    print("checkpoint/restart verified for both layouts")


def _compress_to_subfiles(state, directory, num_subfiles):
    from repro.compression import SZCompressor, plan_blocks, slice_field

    compressor = SZCompressor()
    specs = plan_blocks("state", state.shape, state.itemsize, 2048)
    with SubfileWriter(directory, num_subfiles=num_subfiles) as writer:
        for spec in specs:
            payload = compressor.compress(
                np.ascontiguousarray(slice_field(state, spec)),
                ERROR_BOUND,
            ).to_bytes()
            writer.reserve(f"state/{spec.block_index}", len(payload))
            writer.write(f"state/{spec.block_index}", payload)
    return len(specs)


def _load_from_subfiles(directory, num_blocks):
    from repro.compression import (
        SZCompressor,
        plan_blocks,
        reassemble_field,
    )

    compressor = SZCompressor()
    with SubfileReader(directory) as reader:
        block0 = CompressedBlock.from_bytes(reader.read("state/0"))
        rows = block0.shape[0] * num_blocks
        specs = plan_blocks(
            "state",
            (rows, *block0.shape[1:]),
            np.dtype(block0.dtype).itemsize,
            block0.original_nbytes,
        )
        blocks = []
        for spec in specs:
            block = CompressedBlock.from_bytes(
                reader.read(f"state/{spec.block_index}")
            )
            blocks.append((spec, compressor.decompress(block)))
        return reassemble_field(blocks)


if __name__ == "__main__":
    main()
