#!/usr/bin/env python
"""Rate-distortion comparison: SZ-style vs ZFP-style codecs.

Section 2.2 introduces both compressor families; this example runs both
on the same synthetic Nyx temperature field and prints their
rate-distortion behaviour — SZ (error-bounded) swept over error bounds,
ZFP (fixed-rate) swept over rates — as a table and an ASCII chart of
PSNR vs bits/value.

Run:  python examples/codec_comparison.py
"""

import math

import numpy as np

from repro.apps import NyxModel
from repro.compression import (
    SZCompressor,
    ZFPCompressor,
    bit_rate,
    psnr,
)
from repro.framework import format_table, line_chart


def main() -> None:
    app = NyxModel(seed=41, partition_shape=(40, 40, 40))
    field = app.generate_field("temperature", 0, 8)
    value_range = float(np.ptp(field))
    print(
        f"field: temperature {field.shape} float64, "
        f"range {value_range:.3g}\n"
    )

    rows = []
    sz_points = []
    compressor = SZCompressor()
    for rel_bound in (1e-1, 1e-2, 1e-3, 1e-4, 1e-5):
        block = compressor.compress(field, rel_bound, mode="rel")
        recon = compressor.decompress(block)
        bits = bit_rate(field.size, block.compressed_nbytes)
        quality = psnr(field, recon)
        sz_points.append((bits, quality))
        rows.append(
            (
                "SZ (error-bounded)",
                f"rel {rel_bound:g}",
                f"{block.compression_ratio:.1f}x",
                f"{bits:.2f}",
                f"{quality:.1f} dB",
            )
        )
    zfp_points = []
    for rate in (2, 4, 8, 12, 16, 24):
        codec = ZFPCompressor(rate)
        stream = codec.compress(field)
        recon = codec.decompress(stream)
        bits = bit_rate(field.size, stream.compressed_nbytes)
        quality = psnr(field, recon)
        if math.isfinite(quality):
            zfp_points.append((bits, quality))
        rows.append(
            (
                "ZFP (fixed-rate)",
                f"{rate} bits/value",
                f"{stream.compression_ratio:.1f}x",
                f"{bits:.2f}",
                f"{quality:.1f} dB",
            )
        )
    print(
        format_table(
            rows,
            headers=("codec", "setting", "ratio", "bits/value", "PSNR"),
        )
    )
    print("\nrate-distortion (higher-left is better):")
    print(
        line_chart(
            {"SZ": sz_points, "ZFP": zfp_points},
            x_label="bits per value",
            y_label="PSNR (dB)",
        )
    )
    print(
        "\nSZ's prediction stage exploits the field's smoothness, so it "
        "dominates at low rates; ZFP's fixed rate buys guaranteed size "
        "and random access."
    )


if __name__ == "__main__":
    main()
