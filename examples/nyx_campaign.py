#!/usr/bin/env python
"""Nyx campaign at the paper's largest scale (16 nodes, 64 GPUs).

Reproduces the Figure 9 comparison: time overhead relative to computation
for the baseline (no compression, synchronous writes), the previous
solution (asynchronous I/O without compression), and the proposed
framework — plus the noise-free "simulation" reference the paper plots
alongside its in situ measurement.

Run:  python examples/nyx_campaign.py [iterations]
"""

import sys

from repro.apps import NyxModel
from repro.framework import (
    CampaignRunner,
    async_io_config,
    baseline_config,
    compare,
    format_table,
    ours_config,
)
from repro.simulator import ClusterSpec, NoiseModel


def main(iterations: int = 10) -> None:
    app = NyxModel(seed=11)
    cluster = ClusterSpec(num_nodes=16, processes_per_node=4)
    print(
        f"Nyx {app.partition_shape} per rank, "
        f"{cluster.num_nodes} nodes x {cluster.processes_per_node} GPUs, "
        f"{iterations} iterations, dump every iteration\n"
    )

    solutions = [
        ("baseline", baseline_config(), None),
        ("async-I/O", async_io_config(), None),
        ("ours", ours_config(), None),
        (
            "ours (simulation)",
            ours_config(),
            NoiseModel(
                seed=0,
                interval_sigma_frac=0.0,
                ratio_sigma_frac=0.0,
                compression_sigma_frac=0.0,
                io_sigma_frac=0.0,
            ),
        ),
    ]
    results = {}
    rows = []
    for name, config, noise in solutions:
        runner = CampaignRunner(
            app, cluster, config, solution=name, seed=11, noise=noise
        )
        result = runner.run(iterations)
        results[name] = result
        rows.append(
            (
                name,
                f"{result.mean_relative_overhead * 100:.1f}%",
                f"{result.total_overhead:.1f}s",
                f"{result.total_time:.1f}s",
            )
        )
    print(
        format_table(
            rows,
            headers=(
                "solution",
                "I/O overhead (rel.)",
                "total overhead",
                "total time",
            ),
        )
    )

    comparison = compare(
        results["baseline"], results["async-I/O"], results["ours"]
    )
    print(
        f"\nOurs reduces I/O overhead by "
        f"{comparison.improvement_over_baseline:.2f}x vs the baseline and "
        f"{comparison.improvement_over_previous:.2f}x vs asynchronous I/O "
        f"(paper: up to 3.8x and 2.6x)."
    )

    print("\nPer-iteration relative overhead (ours):")
    for record in results["ours"].dump_records():
        bar = "#" * int(record.relative_overhead * 60)
        print(f"  iter {record.iteration:2d}  "
              f"{record.relative_overhead * 100:5.1f}% {bar}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10)
