#!/usr/bin/env python
"""One node's dump executed for real with OS processes as ranks.

The campaign benchmarks *model* multi-process execution; this example
*performs* it: several worker processes (one per simulated MPI rank)
generate their Nyx partitions, compress them concurrently, and then
``pwrite`` their compressed blocks concurrently into one shared file at
independently reserved offsets — the shared-file parallel-write pattern
the paper builds on (Section 2.1).  The file is then re-read and every
rank's error bounds are verified.

Run:  python examples/parallel_node_dump.py [ranks]
"""

import os
import sys
import tempfile

from repro.apps import NyxModel
from repro.io import SharedFileReader
from repro.parallel import parallel_dump, parallel_verify

FIELDS = ("temperature", "velocity_x", "baryon_density")
BLOCK_BYTES = 32 * 1024


def main(ranks: int = 4) -> None:
    app = NyxModel(seed=77, partition_shape=(24, 24, 24))
    path = os.path.join(
        tempfile.mkdtemp(prefix="repro-parallel-"), "node_dump.rpio"
    )
    print(
        f"dumping {ranks} ranks x {len(FIELDS)} fields "
        f"({app.partition_nbytes() * len(FIELDS) * ranks / 2**20:.1f} MiB raw) "
        f"into one shared file..."
    )
    stats = parallel_dump(
        path,
        app,
        ranks=ranks,
        iteration=3,
        fields=FIELDS,
        block_bytes=BLOCK_BYTES,
    )
    print(
        f"  {stats.num_blocks} blocks, ratio {stats.compression_ratio:.1f}x, "
        f"{stats.num_workers} worker processes"
    )
    print(
        f"  parallel compression {stats.compression_wall_s:.2f}s, "
        f"parallel writes {stats.write_wall_s * 1e3:.0f}ms"
    )

    with SharedFileReader(path) as reader:
        size = sum(e.nbytes for e in reader.entries.values())
        print(f"  shared file holds {len(reader.entries)} datasets, "
              f"{size / 2**20:.2f} MiB compressed")

    worst = parallel_verify(
        path, app, ranks, 3, fields=FIELDS, block_bytes=BLOCK_BYTES
    )
    print("per-field worst absolute error (all within bounds):")
    for field in FIELDS:
        bound = app.field(field).error_bound
        print(f"  {field:18s} {worst[field]:.4g}  (bound {bound:g})")
    print(f"\nshared file at {path}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
