#!/usr/bin/env python
"""Porting the framework to *your* platform, end to end.

The campaign simulator ships with Summit-like constants; deploying the
methodology elsewhere means re-fitting them.  This example walks the full
porting recipe on the current machine:

1. **measure** — time real compressions (this Python pipeline, here) and
   synthesize write timings for a hypothetical filesystem;
2. **fit** — recover `CompressionThroughputModel` / `IoThroughputModel`
   constants with `repro.framework.calibration`;
3. **profile block sizes** — run the Section 4.1 offline analysis with
   the fitted I/O model to pick the fine-grained block size;
4. **plug in a measured iteration trace** — load an obstacle layout from
   JSON (here: exported from the Nyx generator, but this is where your
   application's real trace goes);
5. **run the campaign** with the fitted configuration and compare the
   three solutions on *your* numbers.

Run:  python examples/port_to_platform.py
"""

import time

import numpy as np

from repro.apps import NyxModel, profile_from_json, profile_to_json
from repro.compression import (
    SZCompressor,
    build_codebook,
    profile_block_sizes,
)
from repro.framework import (
    CampaignRunner,
    async_io_config,
    baseline_config,
    fit_compression_model,
    fit_io_model,
    format_table,
    ours_config,
)
from repro.simulator import ClusterSpec


def measure_compression(compressor, shared, rng):
    """Step 1a: real timings of the local compressor."""
    field = np.cumsum(rng.normal(size=2**19))  # 4 MiB float64
    samples_shared, samples_native = [], []
    for count in (2**15, 2**17, 2**19):
        block = field[:count]
        t0 = time.perf_counter()
        compressor.compress(block, 0.01, shared_codebook=shared)
        samples_shared.append((block.nbytes, time.perf_counter() - t0))
        t0 = time.perf_counter()
        compressor.compress(block, 0.01)
        samples_native.append((block.nbytes, time.perf_counter() - t0))
    return samples_shared, samples_native


def synth_io_samples():
    """Step 1b: write timings for the target filesystem (stub).

    On a real port these come from timed writes on the target system;
    here we synthesize a 0.5 GB/s-node, 3 ms-latency filesystem (a
    mid-range parallel FS share).
    """
    return [
        (size, 0.003 + size / (0.5e9 / 4))
        for size in (2**18, 2**20, 2**22, 2**24, 2**26)
    ]


def main() -> None:
    rng = np.random.default_rng(99)
    compressor = SZCompressor()
    train = np.cumsum(rng.normal(size=2**17))
    shared = build_codebook(
        compressor.histogram(train, 0.01),
        force_symbols=(compressor.sentinel,),
    )

    # --- 1 + 2: measure and fit --------------------------------------
    shared_samples, native_samples = measure_compression(
        compressor, shared, rng
    )
    comp_model, comp_fit = fit_compression_model(
        shared_samples, native_samples
    )
    io_model, io_fit = fit_io_model(synth_io_samples(), processes_per_node=4)
    print("fitted models:")
    print(
        f"  compression: {comp_model.throughput_bytes_per_s / 1e6:.0f} MB/s"
        f" + {comp_model.setup_s * 1e3:.2f} ms setup"
        f" + {comp_model.tree_build_s * 1e3:.2f} ms tree build"
        f"  (R^2 = {comp_fit.r_squared:.4f})"
    )
    print(
        f"  I/O: {io_model.per_process_bandwidth / 1e6:.0f} MB/s/process"
        f" + {io_model.write_latency_s * 1e3:.1f} ms latency"
        f"  (R^2 = {io_fit.r_squared:.4f})"
    )

    # --- 3: offline block-size profiling ------------------------------
    sample_field = np.cumsum(rng.normal(size=2**17))
    profile = profile_block_sizes(
        sample_field,
        0.01,
        candidate_bytes=(16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024),
        compressor=compressor,
        shared_codebook=shared,
        io_model=io_model,
        repeats=1,
    )
    print(
        f"\nblock-size profiling recommends "
        f"{profile.recommended_block_bytes // 1024} KiB blocks "
        f"(of {[p.block_bytes // 1024 for p in profile.profiles]} KiB tried)"
    )

    # --- 4: a measured iteration trace --------------------------------
    exported = profile_to_json(NyxModel(seed=99).iteration_profile(0))
    trace = profile_from_json(exported)  # <- your app's trace goes here
    print(
        f"\niteration trace: T_n = {trace.length:.2f}s, "
        f"main thread {trace.busy_fraction_main() * 100:.0f}% busy, "
        f"background {trace.busy_fraction_background() * 100:.0f}% busy"
    )

    # --- 5: campaign with the fitted configuration --------------------
    # The timings above measured *this repo's pure-Python compressor* —
    # instructive, but nobody deploys that: SZ3/cuSZ run 1-2 orders of
    # magnitude faster.  Scale the fitted model by the native-vs-Python
    # factor for the deployment the campaign represents (on a real port
    # you would have measured the native compressor directly).
    import dataclasses as _dc

    native_factor = 250e6 / comp_model.throughput_bytes_per_s
    deployed_comp = _dc.replace(
        comp_model,
        throughput_bytes_per_s=comp_model.throughput_bytes_per_s
        * native_factor,
        tree_build_s=comp_model.tree_build_s / native_factor,
    )
    print(
        f"\nscaling compression by the native/Python factor "
        f"({native_factor:.0f}x) for the deployed configuration"
    )

    app = NyxModel(seed=99)
    cluster = ClusterSpec(num_nodes=4, processes_per_node=4)
    rows = []
    for name, config in (
        ("baseline", baseline_config()),
        ("previous", async_io_config()),
        ("ours", ours_config()),
    ):
        import dataclasses

        tuned = dataclasses.replace(
            config, io_model=io_model, compression_model=deployed_comp
        )
        result = CampaignRunner(
            app, cluster, tuned, solution=name, seed=99
        ).run(5)
        rows.append(
            (name, f"{result.mean_relative_overhead * 100:.1f}%")
        )
    print("\ncampaign with fitted models (4 nodes x 4 GPUs):")
    print(format_table(rows, headers=("solution", "I/O overhead")))


if __name__ == "__main__":
    main()
