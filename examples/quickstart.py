#!/usr/bin/env python
"""Quickstart: the three layers of the reproduction in one minute.

1. Schedule the paper's Figure 1 example with all six heuristics and
   print the ExtJohnson+BF Gantt chart.
2. Compress a synthetic Nyx field with the SZ-style compressor and verify
   the error bound.
3. Run a small end-to-end campaign comparing the three solutions
   (baseline / async-I/O-only / ours).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apps import NyxModel
from repro.compression import SZCompressor, max_abs_error
from repro.core import ALGORITHMS, Interval, Job, ProblemInstance
from repro.framework import (
    CampaignRunner,
    async_io_config,
    baseline_config,
    compare,
    ours_config,
)
from repro.simulator import ClusterSpec, render_gantt, schedule_to_trace


def schedule_figure1() -> None:
    print("=" * 64)
    print("1. Task scheduling on the paper's Figure 1 example")
    print("=" * 64)
    instance = ProblemInstance(
        begin=0.0,
        end=12.0,
        jobs=(
            Job(0, 1.0, 2.0),
            Job(1, 2.0, 1.0),
            Job(2, 2.0, 2.0),
            Job(3, 3.0, 2.0),
        ),
        main_obstacles=(Interval(3.0, 4.0), Interval(6.0, 7.0)),
        background_obstacles=(Interval(4.0, 5.0),),
    )
    for name, algorithm in ALGORITHMS.items():
        schedule = algorithm(instance)
        schedule.validate()
        print(f"  {name:28s} I/O makespan = {schedule.io_makespan:5.2f}")
    best = ALGORITHMS["ExtJohnson+BF"](instance)
    print("\nExtJohnson+BF schedule (Y=compute, G=core, R=compress, B=I/O):")
    print(render_gantt(schedule_to_trace(best)))


def compress_a_field() -> None:
    print("\n" + "=" * 64)
    print("2. Error-bounded lossy compression of a Nyx-like field")
    print("=" * 64)
    app = NyxModel(seed=7, partition_shape=(48, 48, 48))
    field = app.generate_field("temperature", rank=0, iteration=5)
    error_bound = app.field("temperature").error_bound
    compressor = SZCompressor()
    block = compressor.compress(field, error_bound)
    recon = compressor.decompress(block)
    print(f"  field shape          : {field.shape} float64")
    print(f"  error bound (abs)    : {error_bound:g}")
    print(f"  compression ratio    : {block.compression_ratio:.1f}x")
    print(f"  max abs error        : {max_abs_error(field, recon):.4g}")
    assert max_abs_error(field, recon) <= error_bound * (1 + 1e-9)
    print("  error bound respected: yes")


def run_small_campaign() -> None:
    print("\n" + "=" * 64)
    print("3. End-to-end campaign: baseline vs async-I/O vs ours")
    print("=" * 64)
    app = NyxModel(seed=7)
    cluster = ClusterSpec(num_nodes=2, processes_per_node=4)
    results = {}
    for name, config in (
        ("baseline", baseline_config()),
        ("previous", async_io_config()),
        ("ours", ours_config()),
    ):
        runner = CampaignRunner(app, cluster, config, solution=name, seed=7)
        results[name] = runner.run(6)
        overhead = results[name].mean_relative_overhead
        print(f"  {name:10s} I/O overhead = {overhead * 100:6.1f}% of computation")
    comparison = compare(
        results["baseline"], results["previous"], results["ours"]
    )
    print(
        f"\n  ours vs baseline : {comparison.improvement_over_baseline:.2f}x"
        f" less I/O overhead"
    )
    print(
        f"  ours vs previous : {comparison.improvement_over_previous:.2f}x"
        f" less I/O overhead"
    )


if __name__ == "__main__":
    np.set_printoptions(precision=3)
    schedule_figure1()
    compress_a_field()
    run_small_campaign()
