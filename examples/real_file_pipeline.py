#!/usr/bin/env python
"""The real data path: compress Nyx fields and write a shared file.

Everything here moves actual bytes — no duration models.  One simulated
process per "rank" runs the full Section 4 pipeline:

* fine-grained blocking of each field (Section 4.1);
* a shared Huffman tree trained on the previous iteration (Section 4.3);
* pre-compression size prediction to reserve shared-file offsets
  (Section 4.4), with the overflow region absorbing mispredictions;
* background-thread asynchronous writes (the async-VOL stand-in);
* a compressed data buffer consolidating small writes (Section 4.2).

Afterwards the file is reopened, every block decompressed, each field
reassembled, and the error bound verified.

Run:  python examples/real_file_pipeline.py
"""

import os
import tempfile
import time

import numpy as np

from repro.apps import NyxModel
from repro.compression import (
    CompressedBlock,
    CompressedDataBuffer,
    RatioModel,
    SharedTreeManager,
    SZCompressor,
    max_abs_error,
    plan_blocks,
    reassemble_field,
    slice_field,
)
from repro.io import AsyncWriter, SharedFileReader, SharedFileWriter

PARTITION = (32, 32, 32)
FIELDS = ("temperature", "velocity_x", "baryon_density")
BLOCK_BYTES = 64 * 1024  # scaled-down "8 MB" for a quick demo
ITERATIONS = 3


def main() -> None:
    app = NyxModel(seed=21, partition_shape=PARTITION)
    compressor = SZCompressor()
    ratio_model = RatioModel(compressor, sample_limit=8192)
    tree = SharedTreeManager(
        num_symbols=2 * compressor.radius + 1,
        sentinel=compressor.sentinel,
        rebuild_period=1,
    )

    workdir = tempfile.mkdtemp(prefix="repro-demo-")
    for iteration in range(ITERATIONS):
        path = os.path.join(workdir, f"snapshot_{iteration:03d}.rpio")
        t0 = time.time()
        stats = dump_iteration(
            app, compressor, ratio_model, tree, iteration, path
        )
        verify_snapshot(
            app, compressor, stats["codebook"], iteration, path
        )
        tree.end_iteration()
        print(
            f"iter {iteration}: wrote {stats['compressed'] / 1024:.0f} KiB "
            f"(ratio {stats['ratio']:.1f}x, "
            f"{stats['overflows']} overflow(s), "
            f"tree {'shared' if stats['shared_tree'] else 'native'}, "
            f"write units {stats['units']}) "
            f"verified in {time.time() - t0:.2f}s"
        )
    print(f"\nsnapshots under {workdir} — all error bounds verified")


def dump_iteration(app, compressor, ratio_model, tree, iteration, path):
    shared = tree.codebook  # None on the first iteration
    raw_bytes = 0
    compressed_bytes = 0
    overflows = 0
    buffer = CompressedDataBuffer(max_bytes=4 * BLOCK_BYTES)
    payloads: dict[int, tuple[str, bytes]] = {}
    block_id = 0

    with SharedFileWriter(path) as writer:
        with AsyncWriter(writer) as async_writer:
            jobs = []
            for field_name in FIELDS:
                field = app.generate_field(field_name, 0, iteration)
                error_bound = app.field(field_name).error_bound
                specs = plan_blocks(
                    field_name, field.shape, field.itemsize, BLOCK_BYTES
                )
                for spec in specs:
                    data = np.ascontiguousarray(slice_field(field, spec))
                    name = f"{field_name}/{spec.block_index}"
                    # Reserve the offset from the *predicted* size.
                    estimate = ratio_model.predict(
                        data, error_bound, shared_codebook=shared
                    )
                    writer.reserve(name, estimate.compressed_nbytes)

                    block = compressor.compress(
                        data, error_bound, shared_codebook=shared
                    )
                    tree.observe(compressor.histogram(data, error_bound))
                    payload = block.to_bytes()
                    raw_bytes += data.nbytes
                    compressed_bytes += len(payload)
                    payloads[block_id] = (name, payload)
                    # The buffer decides when a write unit is full.
                    for unit in buffer.append(block_id, len(payload)):
                        for buffered in unit.blocks:
                            unit_name, unit_payload = payloads[
                                buffered.block_id
                            ]
                            jobs.append(
                                async_writer.submit(unit_name, unit_payload)
                            )
                    block_id += 1
            for unit in buffer.flush():
                for buffered in unit.blocks:
                    name, payload = payloads[buffered.block_id]
                    jobs.append(async_writer.submit(name, payload))
            async_writer.drain()
            overflows = sum(1 for j in jobs if j.fit_reservation is False)
    return {
        "compressed": compressed_bytes,
        "ratio": raw_bytes / compressed_bytes,
        "overflows": overflows,
        "shared_tree": shared is not None,
        "units": buffer.units_emitted,
        "codebook": shared,
    }


def verify_snapshot(app, compressor, shared, iteration, path):
    with SharedFileReader(path) as reader:
        for field_name in FIELDS:
            original = app.generate_field(field_name, 0, iteration)
            error_bound = app.field(field_name).error_bound
            specs = plan_blocks(
                field_name, original.shape, original.itemsize, BLOCK_BYTES
            )
            blocks = []
            for spec in specs:
                payload = reader.read(f"{field_name}/{spec.block_index}")
                block = CompressedBlock.from_bytes(payload)
                recon = compressor.decompress(
                    block,
                    shared_codebook=shared if block.used_shared_tree else None,
                )
                blocks.append((spec, recon))
            restored = reassemble_field(blocks)
            error = max_abs_error(original, restored)
            assert error <= error_bound * (1 + 1e-9), (
                field_name,
                error,
                error_bound,
            )


if __name__ == "__main__":
    main()
