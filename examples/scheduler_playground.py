#!/usr/bin/env python
"""Scheduler playground: heuristics vs the exact ILP on random instances.

Generates a few random instances, solves each with the six Section 3.3
heuristics and the Appendix A ILP (HiGHS, 20 s limit), and prints the
optimality gaps — the small-scale counterpart of the paper's remark that
the ILP is exact but intractable at experiment sizes.

Run:  python examples/scheduler_playground.py
"""

import time

import numpy as np

from repro.core import (
    ALGORITHMS,
    Interval,
    Job,
    ProblemInstance,
    ilp_schedule,
    local_search_schedule,
)
from repro.framework import format_table


def random_instance(rng: np.random.Generator, num_jobs: int) -> ProblemInstance:
    length = 20.0

    def obstacles(count):
        points = np.sort(rng.uniform(0, length, size=2 * count))
        return tuple(
            Interval(float(points[2 * i]), float(points[2 * i + 1]))
            for i in range(count)
        )

    jobs = tuple(
        Job(i, float(rng.uniform(0.2, 2.5)), float(rng.uniform(0.2, 2.5)))
        for i in range(num_jobs)
    )
    return ProblemInstance(
        begin=0.0,
        end=length,
        jobs=jobs,
        main_obstacles=obstacles(2),
        background_obstacles=obstacles(2),
    )


def main() -> None:
    rng = np.random.default_rng(20240422)
    rows = []
    for trial in range(4):
        instance = random_instance(rng, num_jobs=5)
        t0 = time.time()
        ilp = ilp_schedule(instance, time_limit=20.0)
        ilp_time = time.time() - t0
        optimum = ilp.objective if ilp.status == "optimal" else None
        for name, algorithm in ALGORITHMS.items():
            t0 = time.time()
            schedule = algorithm(instance)
            elapsed = time.time() - t0
            gap = (
                f"{(schedule.io_makespan / optimum - 1) * 100:+.1f}%"
                if optimum
                else "n/a"
            )
            rows.append(
                (
                    f"#{trial}",
                    name,
                    f"{schedule.io_makespan:.3f}",
                    gap,
                    f"{elapsed * 1e3:.2f} ms",
                )
            )
        t0 = time.time()
        ls = local_search_schedule(instance, time_budget_s=0.05)
        rows.append(
            (
                f"#{trial}",
                "LocalSearch (ext)",
                f"{ls.io_makespan:.3f}",
                f"{(ls.io_makespan / optimum - 1) * 100:+.1f}%" if optimum else "n/a",
                f"{(time.time() - t0) * 1e3:.2f} ms",
            )
        )
        rows.append(
            (
                f"#{trial}",
                f"ILP ({ilp.status})",
                f"{optimum:.3f}" if optimum else "-",
                "+0.0%" if optimum else "-",
                f"{ilp_time * 1e3:.0f} ms",
            )
        )
    print(
        format_table(
            rows,
            headers=("instance", "algorithm", "makespan", "gap", "time"),
        )
    )
    print(
        "\nThe ILP is optimal but orders of magnitude slower; at the "
        "paper's 32-block instances it fails to finish (Section 5.2)."
    )


if __name__ == "__main__":
    main()
