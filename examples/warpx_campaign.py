#!/usr/bin/env python
"""WarpX weak-scaling campaign (the Figure 11b experiment).

Each process keeps a fixed 128 x 128 x 512 partition while the GPU count
grows 8 -> 64; the baseline and async-only solutions pay growing
shared-file contention while the compressed solution stays nearly flat.

Run:  python examples/warpx_campaign.py
"""

from repro.apps import WarpXModel
from repro.framework import (
    CampaignRunner,
    async_io_config,
    baseline_config,
    format_table,
    ours_config,
)
from repro.simulator import ClusterSpec


def main() -> None:
    app = WarpXModel(seed=13)
    print(
        f"WarpX {app.partition_shape} per rank (weak scaling), "
        f"compression ratio ~{app.fields[0].base_ratio:.0f}x\n"
    )
    scales = [(2, 4), (4, 4), (8, 4), (16, 4)]  # (nodes, GPUs/node)
    rows = []
    for nodes, ppn in scales:
        cluster = ClusterSpec(num_nodes=nodes, processes_per_node=ppn)
        cells = []
        for name, config in (
            ("baseline", baseline_config()),
            ("async-I/O", async_io_config()),
            ("ours", ours_config()),
        ):
            runner = CampaignRunner(
                app, cluster, config, solution=name, seed=13
            )
            result = runner.run(6)
            cells.append(f"{result.mean_relative_overhead * 100:.1f}%")
        rows.append((f"{nodes * ppn} GPUs", *cells))
    print(
        format_table(
            rows, headers=("scale", "baseline", "async-I/O", "ours")
        )
    )
    print(
        "\nExpected shape: baseline/async-I/O overheads grow with scale "
        "(shared-file contention); ours stays nearly flat because it "
        "writes ~274x less data."
    )


if __name__ == "__main__":
    main()
