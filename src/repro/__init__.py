"""repro: reproduction of "Concealing Compression-accelerated I/O for HPC
Applications through In Situ Task Scheduling" (EuroSys '24).

Public API tour:

* :mod:`repro.core` — the scheduling contribution: the two-machine
  flow-shop model with obstacles, the six heuristics, the exact ILP, and
  the intra-node I/O balancer.
* :mod:`repro.compression` — the SZ-style error-bounded lossy compressor
  plus the paper's three runtime designs (fine-grained blocking,
  compressed data buffer, shared Huffman tree).
* :mod:`repro.simulator` — noise models, schedule replay, virtual clock,
  cluster topology, Gantt traces.
* :mod:`repro.io` — write-time model, simulated parallel filesystem, the
  shared-file container with overflow handling, async background writes.
* :mod:`repro.apps` — Nyx-like and WarpX-like application models.
* :mod:`repro.framework` — the end-to-end system and the three evaluated
  solutions (baseline / async-I/O-only / ours).
* :mod:`repro.telemetry` — tracing and metrics: spans, counters, JSON-lines
  traces, ASCII Gantt rendering.
* :mod:`repro.resilience` — fault injection (stalls, transient write
  errors, bandwidth collapse, compression failures, stragglers), retry
  policies, and the per-campaign resilience report.
* :mod:`repro.bench` — benchmark harness and performance-regression
  gate: registered timed cases, robust statistics, versioned
  ``BENCH_*.json`` reports, and baseline comparison.
* :mod:`repro.engines` — interchangeable execution backends behind one
  `ExecutionEngine` protocol: the discrete-event simulator and a real
  process-pool engine that overlaps compression with I/O on real cores.
"""

from . import (
    apps,
    bench,
    compression,
    core,
    engines,
    framework,
    io,
    parallel,
    resilience,
    simulator,
    telemetry,
)

__version__ = "1.0.0"

__all__ = [
    "core",
    "compression",
    "simulator",
    "io",
    "apps",
    "parallel",
    "framework",
    "telemetry",
    "resilience",
    "bench",
    "engines",
    "__version__",
]
