"""Application simulators: Nyx-like and WarpX-like iterative workloads."""

from .base import ApplicationModel, FieldSpec, IterationProfile, Stage
from .hacc import HaccModel
from .nyx import NyxModel
from .warpx import WarpXModel
from .workloads import (
    generate_profile,
    jitter_profile,
    profile_from_json,
    profile_to_json,
)

__all__ = [
    "ApplicationModel",
    "FieldSpec",
    "IterationProfile",
    "Stage",
    "NyxModel",
    "HaccModel",
    "WarpXModel",
    "generate_profile",
    "jitter_profile",
    "profile_to_json",
    "profile_from_json",
]
