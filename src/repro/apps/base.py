"""Application model abstraction for iterative HPC simulations.

The evaluation uses an application only through three interfaces:

1. its **iteration profile** — how long an iteration runs and where the
   immovable compute/core tasks sit on the two threads (Section 3.1's
   obstacles);
2. its **data compressibility** — per-rank, per-field, per-block
   compression ratios and how they drift across iterations (Sections 3.4
   and 4.3 depend on the drift being slow);
3. its **data itself** — synthetic fields with the right spatial
   structure, for experiments that really compress (Figures 4-6).

Concrete models (:mod:`repro.apps.nyx`, :mod:`repro.apps.warpx`)
parameterize all three from the paper's reported characteristics.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..core.model import Interval

__all__ = ["Stage", "FieldSpec", "IterationProfile", "ApplicationModel"]


class Stage(enum.Enum):
    """Run phase, as sampled in Section 5.2: the data distribution starts
    even, becomes structured, and ends highly centralized."""

    BEGINNING = "beginning"
    MIDDLE = "middle"
    END = "end"


@dataclass(frozen=True)
class FieldSpec:
    """One data field the application dumps.

    Attributes:
        name: field name (e.g. ``"temperature"``).
        error_bound: absolute error bound used for this field (the paper's
            Section 5.1 per-field configuration).
        base_ratio: typical compression ratio at that bound.
    """

    name: str
    error_bound: float
    base_ratio: float


@dataclass(frozen=True)
class IterationProfile:
    """One iteration's obstacle layout, relative to the iteration start."""

    length: float
    main_obstacles: tuple[Interval, ...]
    background_obstacles: tuple[Interval, ...]

    def busy_fraction_main(self) -> float:
        busy = sum(o.duration for o in self.main_obstacles)
        return busy / self.length if self.length else 0.0

    def busy_fraction_background(self) -> float:
        busy = sum(o.duration for o in self.background_obstacles)
        return busy / self.length if self.length else 0.0


class ApplicationModel(ABC):
    """Base class for Nyx-like and WarpX-like application models."""

    #: Application name for reports.
    name: str = "application"
    #: Fields dumped each snapshot.
    fields: tuple[FieldSpec, ...] = ()
    #: Per-process partition shape (values, not bytes).
    partition_shape: tuple[int, ...] = ()
    #: Field dtype.
    dtype = np.dtype(np.float64)

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    # -- iteration structure -------------------------------------------
    @abstractmethod
    def iteration_profile(self, iteration: int) -> IterationProfile:
        """Obstacle layout of one iteration (deterministic per seed)."""

    # -- compressibility ------------------------------------------------
    @abstractmethod
    def stage_of(self, iteration: int, total_iterations: int) -> Stage:
        """Which run phase an iteration belongs to."""

    @abstractmethod
    def max_ratio_difference(self, stage: Stage) -> float:
        """Intra-node max/min compression-ratio spread at this stage."""

    @abstractmethod
    def block_ratios(
        self,
        rank: int,
        iteration: int,
        blocks_per_field: int,
        node_size: int,
        stage: Stage | None = None,
    ) -> dict[str, np.ndarray]:
        """Actual per-block compression ratios for one rank's dump."""

    # -- data ------------------------------------------------------------
    @abstractmethod
    def generate_field(
        self,
        field_name: str,
        rank: int,
        iteration: int,
        shape: tuple[int, ...] | None = None,
    ) -> np.ndarray:
        """Synthesize one field partition with realistic structure."""

    # -- helpers shared by subclasses ------------------------------------
    def field(self, name: str) -> FieldSpec:
        for spec in self.fields:
            if spec.name == name:
                return spec
        raise KeyError(f"{self.name} has no field {name!r}")

    def partition_nbytes(self) -> int:
        return int(
            np.prod(self.partition_shape, dtype=np.int64)
        ) * self.dtype.itemsize

    def _rng(self, *streams: int) -> np.random.Generator:
        """A deterministic generator namespaced by (seed, streams...)."""
        return np.random.default_rng((self.seed, *streams))

    def rank_multipliers(
        self, node_size: int, stage: Stage, iteration: int
    ) -> np.ndarray:
        """Per-local-rank ratio multipliers with the stage's spread.

        Multipliers follow a normal distribution whose extremes span the
        stage's ``max_ratio_difference`` (Section 5.2's methodology), and
        drift ~1.45 % per iteration (the paper's measured Nyx stability)
        so consecutive dumps stay predictable from history.
        """
        spread = self.max_ratio_difference(stage)
        base_rng = self._rng(1000, node_size, _stage_index(stage))
        # Draw once per stage; spread maps the +-2 sigma range onto
        # [1/sqrt(spread), sqrt(spread)] so max/min ~= spread.
        z = base_rng.normal(0.0, 1.0, size=node_size)
        z = np.clip(z, -2.5, 2.5)
        log_span = 0.5 * np.log(max(spread, 1.0))
        multipliers = np.exp(z / 2.0 * log_span)
        drift_rng = self._rng(2000, iteration)
        drift = drift_rng.normal(1.0, 0.0145, size=node_size)
        return multipliers * np.clip(drift, 0.9, 1.1)


def _stage_index(stage: Stage) -> int:
    return list(Stage).index(stage)
