"""HACC-like N-body application model (extension).

The paper's future work calls for "a wider range of real-world HPC
applications"; HACC (Hardware/Hybrid Accelerated Cosmology Code, cited in
the paper's related work) is the natural third: a particle-only N-body
code whose dumped payload is *particle* data — positions and velocities —
which is far less compressible than gridded fields (particles are
near-random within a cell, so Lorenzo prediction gains little).  Typical
error-bounded ratios on HACC data are ~4-6x, an order of magnitude below
Nyx, which places HACC near the low-ratio end of Figure 7 where the
framework's gains are smallest — a useful stress case.

Structure: six 1-D particle arrays (xx, yy, zz, vx, vy, vz).  Positions
drift coherently across iterations (particles move smoothly), so
consecutive dumps stay similar; compressibility spreads across ranks are
small (particle counts per rank are balanced by design in HACC).
"""

from __future__ import annotations

import numpy as np

from .base import ApplicationModel, FieldSpec, IterationProfile, Stage
from .workloads import generate_profile, jitter_profile

__all__ = ["HaccModel"]

_FIELDS = (
    FieldSpec("xx", 1.0e-3, 5.0),
    FieldSpec("yy", 1.0e-3, 5.0),
    FieldSpec("zz", 1.0e-3, 5.0),
    FieldSpec("vx", 5.0e0, 4.5),
    FieldSpec("vy", 5.0e0, 4.5),
    FieldSpec("vz", 5.0e0, 4.5),
)


class HaccModel(ApplicationModel):
    """Synthetic HACC: particle arrays, low compression ratios."""

    name = "hacc"
    fields = _FIELDS
    dtype = np.dtype(np.float64)

    def __init__(
        self,
        seed: int = 0,
        particles_per_rank: int = 2**24,  # 128 MiB per field
        iteration_length_s: float = 3.0,
        total_iterations: int = 30,
    ) -> None:
        super().__init__(seed)
        self.partition_shape = (particles_per_rank,)
        self.iteration_length_s = iteration_length_s
        self.total_iterations = total_iterations
        self._base_profile = generate_profile(
            length=iteration_length_s,
            num_main_tasks=3,
            main_busy_fraction=0.5,
            num_background_tasks=3,
            background_busy_fraction=0.35,
            rng=self._rng(1),
        )

    # -- iteration structure -------------------------------------------
    def iteration_profile(self, iteration: int) -> IterationProfile:
        return jitter_profile(
            self._base_profile, self._rng(2, iteration), 0.01
        )

    # -- compressibility --------------------------------------------------
    def stage_of(self, iteration: int, total_iterations: int | None = None) -> Stage:
        total = total_iterations or self.total_iterations
        frac = iteration / max(total - 1, 1)
        if frac < 1 / 3:
            return Stage.BEGINNING
        if frac < 2 / 3:
            return Stage.MIDDLE
        return Stage.END

    def max_ratio_difference(self, stage: Stage) -> float:
        # Particle counts are balanced across ranks; compressibility
        # varies only mildly with local clustering.
        return {Stage.BEGINNING: 1.2, Stage.MIDDLE: 1.5, Stage.END: 2.0}[
            stage
        ]

    def block_ratios(
        self,
        rank: int,
        iteration: int,
        blocks_per_field: int,
        node_size: int,
        stage: Stage | None = None,
    ) -> dict[str, np.ndarray]:
        if stage is None:
            stage = self.stage_of(iteration, self.total_iterations)
        multipliers = self.rank_multipliers(node_size, stage, iteration)
        mult = multipliers[rank % node_size]
        rng = self._rng(3, rank, iteration)
        out: dict[str, np.ndarray] = {}
        for spec in self.fields:
            block_noise = rng.normal(1.0, 0.03, size=blocks_per_field)
            out[spec.name] = np.clip(
                spec.base_ratio * mult * block_noise, 1.2, None
            )
        return out

    # -- data --------------------------------------------------------------
    def generate_field(
        self,
        field_name: str,
        rank: int,
        iteration: int,
        shape: tuple[int, ...] | None = None,
    ) -> np.ndarray:
        count = (shape or self.partition_shape)[0]
        rng = self._rng(4, rank, _stable_hash(field_name))
        t = iteration / max(self.total_iterations - 1, 1)
        if field_name in ("xx", "yy", "zz"):
            # Positions: sorted base positions plus a coherent drift and
            # small per-particle scatter — locally correlated once sorted
            # (HACC dumps are spatially ordered), modestly compressible.
            base = np.sort(rng.uniform(0.0, 256.0, size=count))
            drift = 4.0 * t
            scatter = rng.normal(0.0, 0.02, size=count)
            return (base + drift + scatter).astype(self.dtype)
        # Velocities: bulk flow plus thermal scatter.
        bulk = rng.normal(0.0, 300.0)
        thermal = rng.normal(0.0, 80.0, size=count)
        growth = 1.0 + 0.5 * t
        return (growth * (bulk + thermal)).astype(self.dtype)


def _stable_hash(text: str) -> int:
    value = 2166136261
    for ch in text.encode():
        value = (value ^ ch) * 16777619 % (2**31)
    return value
