"""Nyx-like cosmology application model.

Reproduces the characteristics the paper reports for Nyx (Sections 2.3,
5.1, 5.2):

* nine dumped fields — six grid fields with the paper's absolute error
  bounds (baryon density 0.2, dark matter density 0.4, temperature 1e3,
  velocities 2e5) plus three particle-velocity fields — averaging a ~16x
  compression ratio;
* data distribution evolving from even (beginning) through structured
  (middle) to highly centralized (end), with intra-node max
  compression-ratio differences up to ~20;
* iteration durations around the ~4.0-4.7 s range of Table 1, with the
  main thread largely idle while the GPU computes.

Synthetic fields come from a fixed per-rank Gaussian random field pushed
through a clustering transform whose strength grows with the iteration
number — mimicking gravitational structure formation, so consecutive
iterations stay similar (the shared-Huffman-tree premise) while the run's
stages differ markedly.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from .base import ApplicationModel, FieldSpec, IterationProfile, Stage
from .workloads import generate_profile, jitter_profile

__all__ = ["NyxModel"]

_GRID_FIELDS = (
    FieldSpec("baryon_density", 0.2, 14.0),
    FieldSpec("dark_matter_density", 0.4, 15.0),
    FieldSpec("temperature", 1.0e3, 18.0),
    FieldSpec("velocity_x", 2.0e5, 16.0),
    FieldSpec("velocity_y", 2.0e5, 16.0),
    FieldSpec("velocity_z", 2.0e5, 16.0),
)
_PARTICLE_FIELDS = (
    FieldSpec("particle_vx", 2.0e5, 16.0),
    FieldSpec("particle_vy", 2.0e5, 16.0),
    FieldSpec("particle_vz", 2.0e5, 16.0),
)


class NyxModel(ApplicationModel):
    """Synthetic Nyx: adaptive-mesh cosmology, GPU compute, 9 fields."""

    name = "nyx"
    fields = _GRID_FIELDS + _PARTICLE_FIELDS
    dtype = np.dtype(np.float64)

    def __init__(
        self,
        seed: int = 0,
        partition_shape: tuple[int, ...] = (256, 256, 256),
        iteration_length_s: float = 4.2,
        total_iterations: int = 30,
    ) -> None:
        super().__init__(seed)
        self.partition_shape = partition_shape
        self.iteration_length_s = iteration_length_s
        self.total_iterations = total_iterations
        self._base_profile = generate_profile(
            length=iteration_length_s,
            num_main_tasks=4,
            main_busy_fraction=0.40,
            num_background_tasks=3,
            background_busy_fraction=0.30,
            rng=self._rng(1),
        )

    # -- iteration structure -------------------------------------------
    def iteration_profile(self, iteration: int) -> IterationProfile:
        return jitter_profile(
            self._base_profile, self._rng(2, iteration), 0.01
        )

    # -- compressibility --------------------------------------------------
    def stage_of(self, iteration: int, total_iterations: int | None = None) -> Stage:
        total = total_iterations or self.total_iterations
        frac = iteration / max(total - 1, 1)
        if frac < 1 / 3:
            return Stage.BEGINNING
        if frac < 2 / 3:
            return Stage.MIDDLE
        return Stage.END

    def max_ratio_difference(self, stage: Stage) -> float:
        return {Stage.BEGINNING: 2.0, Stage.MIDDLE: 8.0, Stage.END: 20.0}[
            stage
        ]

    def block_ratios(
        self,
        rank: int,
        iteration: int,
        blocks_per_field: int,
        node_size: int,
        stage: Stage | None = None,
    ) -> dict[str, np.ndarray]:
        if stage is None:
            stage = self.stage_of(iteration, self.total_iterations)
        multipliers = self.rank_multipliers(node_size, stage, iteration)
        mult = multipliers[rank % node_size]
        rng = self._rng(3, rank, iteration)
        out: dict[str, np.ndarray] = {}
        for spec in self.fields:
            block_noise = rng.normal(1.0, 0.05, size=blocks_per_field)
            out[spec.name] = np.clip(
                spec.base_ratio * mult * block_noise, 1.5, None
            )
        return out

    # -- data --------------------------------------------------------------
    def generate_field(
        self,
        field_name: str,
        rank: int,
        iteration: int,
        shape: tuple[int, ...] | None = None,
    ) -> np.ndarray:
        shape = shape or self.partition_shape
        spec = self.field(field_name)
        base = self._base_noise(rank, field_name, shape)
        # Structure grows with iteration: stronger clustering bias and a
        # slow morphing of the underlying field.
        t = iteration / max(self.total_iterations - 1, 1)
        morph = self._base_noise(rank, field_name + "#morph", shape)
        field = (1.0 - 0.15 * t) * base + 0.15 * t * morph

        if "density" in field_name:
            # Nyx densities are overdensities (units of the cosmic mean),
            # O(1) with a heavy clustering tail — which is why the
            # paper's absolute bounds of 0.2/0.4 are meaningful.
            bias = 1.0 + 3.0 * t  # clustering strength
            rho = np.exp(bias * field)
            return (rho / rho.mean()).astype(self.dtype)
        if field_name == "temperature":
            bias = 1.0 + 2.0 * t
            rho = np.exp(bias * field)
            temp = 1.0e4 * (rho / rho.mean()) ** (2.0 / 3.0)
            return temp.astype(self.dtype)
        # Velocity-like fields: large-scale flows ~ 1e7, eb 2e5 (~2 %).
        return (2.0e7 * field).astype(self.dtype)

    def _base_noise(
        self, rank: int, tag: str, shape: tuple[int, ...]
    ) -> np.ndarray:
        rng = self._rng(4, rank, _stable_hash(tag))
        white = rng.normal(0.0, 1.0, size=shape)
        smooth = ndimage.gaussian_filter(white, sigma=3.0, mode="wrap")
        std = smooth.std()
        return smooth / std if std > 0 else smooth


def _stable_hash(text: str) -> int:
    value = 2166136261
    for ch in text.encode():
        value = (value ^ ch) * 16777619 % (2**31)
    return value
