"""WarpX-like particle-in-cell application model.

Reproduces the characteristics the paper reports for WarpX (Sections 2.3,
5.1): ten electromagnetic/particle fields compressed at a very high
average ratio (273.9x, the setting "suggested by the application
developers"), weak-scaling partitions of 128 x 128 x 1024 per process,
and a laser-plasma structure where almost the whole domain is quiet
vacuum except a localized, moving interaction region — which is exactly
why such extreme ratios are achievable.
"""

from __future__ import annotations

import numpy as np

from .base import ApplicationModel, FieldSpec, IterationProfile, Stage
from .workloads import generate_profile, jitter_profile

__all__ = ["WarpXModel"]

_FIELDS = tuple(
    FieldSpec(name, bound, 273.9)
    for name, bound in (
        ("Ex", 1.0e4),
        ("Ey", 1.0e4),
        ("Ez", 1.0e4),
        ("Bx", 1.0e-2),
        ("By", 1.0e-2),
        ("Bz", 1.0e-2),
        ("jx", 1.0e2),
        ("jy", 1.0e2),
        ("jz", 1.0e2),
        ("rho", 1.0e-8),
    )
)


class WarpXModel(ApplicationModel):
    """Synthetic WarpX: PIC laser-plasma run, 10 fields, CR ~274x."""

    name = "warpx"
    fields = _FIELDS
    dtype = np.dtype(np.float64)

    def __init__(
        self,
        seed: int = 0,
        partition_shape: tuple[int, ...] = (128, 128, 512),
        iteration_length_s: float = 3.4,
        total_iterations: int = 30,
    ) -> None:
        super().__init__(seed)
        self.partition_shape = partition_shape
        self.iteration_length_s = iteration_length_s
        self.total_iterations = total_iterations
        self._base_profile = generate_profile(
            length=iteration_length_s,
            num_main_tasks=5,
            main_busy_fraction=0.45,
            num_background_tasks=4,
            background_busy_fraction=0.32,
            rng=self._rng(1),
        )

    # -- iteration structure -------------------------------------------
    def iteration_profile(self, iteration: int) -> IterationProfile:
        return jitter_profile(
            self._base_profile, self._rng(2, iteration), 0.01
        )

    # -- compressibility --------------------------------------------------
    def stage_of(self, iteration: int, total_iterations: int | None = None) -> Stage:
        total = total_iterations or self.total_iterations
        frac = iteration / max(total - 1, 1)
        if frac < 1 / 3:
            return Stage.BEGINNING
        if frac < 2 / 3:
            return Stage.MIDDLE
        return Stage.END

    def max_ratio_difference(self, stage: Stage) -> float:
        # The interaction region touches few partitions; spreads stay
        # moderate compared to Nyx's end-stage clustering.
        return {Stage.BEGINNING: 1.5, Stage.MIDDLE: 3.0, Stage.END: 6.0}[
            stage
        ]

    def block_ratios(
        self,
        rank: int,
        iteration: int,
        blocks_per_field: int,
        node_size: int,
        stage: Stage | None = None,
    ) -> dict[str, np.ndarray]:
        if stage is None:
            stage = self.stage_of(iteration, self.total_iterations)
        multipliers = self.rank_multipliers(node_size, stage, iteration)
        mult = multipliers[rank % node_size]
        rng = self._rng(3, rank, iteration)
        out: dict[str, np.ndarray] = {}
        for spec in self.fields:
            block_noise = rng.normal(1.0, 0.08, size=blocks_per_field)
            out[spec.name] = np.clip(
                spec.base_ratio * mult * block_noise, 2.0, None
            )
        return out

    # -- data --------------------------------------------------------------
    def generate_field(
        self,
        field_name: str,
        rank: int,
        iteration: int,
        shape: tuple[int, ...] | None = None,
    ) -> np.ndarray:
        shape = shape or self.partition_shape
        if len(shape) != 3:
            raise ValueError("WarpX fields are 3-D")
        # A localized interaction blob travelling along the z axis.
        t = iteration / max(self.total_iterations - 1, 1)
        z_center = (0.1 + 0.8 * t) * shape[2]
        zz = np.arange(shape[2])
        xx = np.arange(shape[0])[:, None, None]
        yy = np.arange(shape[1])[None, :, None]
        envelope_z = np.exp(
            -((zz - z_center) ** 2) / (2 * (shape[2] * 0.03) ** 2)
        )[None, None, :]
        envelope_xy = np.exp(
            -((xx - shape[0] / 2) ** 2 + (yy - shape[1] / 2) ** 2)
            / (2 * (max(shape[0], 2) * 0.15) ** 2)
        )
        rng = self._rng(4, rank, _stable_hash(field_name))
        carrier = np.sin(
            2 * np.pi * zz / max(8.0, shape[2] / 64)
            + rng.uniform(0, 2 * np.pi)
        )[None, None, :]
        amplitude = {
            "E": 1.0e7,
            "B": 1.0e1,
            "j": 1.0e5,
            "r": 1.0e-5,
        }[field_name[0]]
        signal = amplitude * envelope_xy * envelope_z * carrier
        noise_level = amplitude * 1e-6
        noise = rng.normal(0.0, noise_level, size=shape)
        return (signal + noise).astype(self.dtype)


def _stable_hash(text: str) -> int:
    value = 2166136261
    for ch in text.encode():
        value = (value ^ ch) * 16777619 % (2**31)
    return value
