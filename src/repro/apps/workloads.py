"""Iteration interval patterns: where the immovable tasks sit.

Generates the obstacle layouts (compute tasks on the main thread, core
communication/I/O tasks on the background thread) that define the
scheduler's playing field.  Patterns are deterministic per seed so
consecutive iterations look alike — the similarity assumption the paper's
history-based prediction rests on — with shape knobs for how busy and how
fragmented each thread is.
"""

from __future__ import annotations

import numpy as np

from ..core.model import Interval
from .base import IterationProfile

__all__ = [
    "generate_profile",
    "jitter_profile",
    "profile_to_json",
    "profile_from_json",
]


def generate_profile(
    length: float,
    num_main_tasks: int,
    main_busy_fraction: float,
    num_background_tasks: int,
    background_busy_fraction: float,
    rng: np.random.Generator,
    lead_in_fraction: float = 0.02,
) -> IterationProfile:
    """Draw one iteration's obstacle layout.

    Busy time is split into the requested number of tasks with random
    (Dirichlet) proportions; idle time is split into the gaps between
    them, so tasks never touch the iteration's very start (a small lead-in
    gap is kept — in practice the main thread hands off to the GPU before
    idling).
    """
    if not 0.0 <= main_busy_fraction < 1.0:
        raise ValueError("main_busy_fraction must be in [0, 1)")
    if not 0.0 <= background_busy_fraction < 1.0:
        raise ValueError("background_busy_fraction must be in [0, 1)")
    main = _layout(
        length, num_main_tasks, main_busy_fraction, rng, lead_in_fraction
    )
    background = _layout(
        length,
        num_background_tasks,
        background_busy_fraction,
        rng,
        lead_in_fraction,
    )
    return IterationProfile(
        length=length,
        main_obstacles=main,
        background_obstacles=background,
    )


def _layout(
    length: float,
    num_tasks: int,
    busy_fraction: float,
    rng: np.random.Generator,
    lead_in_fraction: float,
) -> tuple[Interval, ...]:
    if num_tasks == 0 or busy_fraction == 0.0:
        return ()
    busy_total = length * busy_fraction
    idle_total = length - busy_total
    busy_parts = rng.dirichlet(np.full(num_tasks, 4.0)) * busy_total
    # num_tasks + 1 gaps; the first gets at least the lead-in.
    gap_parts = rng.dirichlet(np.full(num_tasks + 1, 2.0)) * idle_total
    lead_in = min(idle_total * 0.5, length * lead_in_fraction)
    if gap_parts[0] < lead_in:
        deficit = lead_in - gap_parts[0]
        gap_parts[0] = lead_in
        gap_parts[1:] -= deficit / num_tasks
        gap_parts = np.maximum(gap_parts, 0.0)
    intervals = []
    cursor = 0.0
    for i in range(num_tasks):
        cursor += gap_parts[i]
        start = cursor
        cursor += busy_parts[i]
        intervals.append(Interval(start, cursor))
    return tuple(intervals)


def profile_to_json(profile: IterationProfile) -> str:
    """Serialize a profile so measured traces can be stored and shared."""
    import json

    return json.dumps(
        {
            "length": profile.length,
            "main_obstacles": [
                [o.start, o.end] for o in profile.main_obstacles
            ],
            "background_obstacles": [
                [o.start, o.end] for o in profile.background_obstacles
            ],
        }
    )


def profile_from_json(text: str) -> IterationProfile:
    """Load an :class:`IterationProfile` from JSON — the hook for driving
    the framework with *measured* application traces instead of the
    synthetic generators (profile your app once, replay it here)."""
    import json

    raw = json.loads(text)
    return IterationProfile(
        length=raw["length"],
        main_obstacles=tuple(
            Interval(a, b) for a, b in raw["main_obstacles"]
        ),
        background_obstacles=tuple(
            Interval(a, b) for a, b in raw["background_obstacles"]
        ),
    )


def jitter_profile(
    profile: IterationProfile,
    rng: np.random.Generator,
    sigma_fraction: float = 0.01,
) -> IterationProfile:
    """A slightly perturbed copy of a profile (iteration-to-iteration
    variation, per Section 5.4.1's sigma = 0.01 x T_n)."""
    sigma = sigma_fraction * profile.length

    def perturb(obstacles: tuple[Interval, ...]) -> tuple[Interval, ...]:
        out = []
        cursor = 0.0
        for obs in obstacles:
            start = max(cursor, obs.start + float(rng.normal(0, sigma)))
            end = max(
                start + obs.duration * 0.5,
                obs.end + float(rng.normal(0, sigma)),
            )
            out.append(Interval(start, end))
            cursor = end
        return tuple(out)

    return IterationProfile(
        length=max(
            profile.length + float(rng.normal(0, sigma)),
            profile.length * 0.5,
        ),
        main_obstacles=perturb(profile.main_obstacles),
        background_obstacles=perturb(profile.background_obstacles),
    )
