"""Benchmark harness and performance-regression subsystem.

The ROADMAP's north star is that every PR makes a hot path "measurably
faster"; this package is the measurement substrate.  It turns the
repo's figure scripts (and any future scenario) into registered, timed,
statistically summarized cases whose results serialize to versioned
``BENCH_*.json`` documents and gate CI against a committed baseline.

Layers:

* :mod:`~repro.bench.harness` — ``BenchCase``/``BenchSample``/
  ``BenchResult`` dataclasses, ``perf_counter`` timing with warmup and
  repeats, robust statistics (min/median/mean/stdev + IQR outlier
  flagging), and the host environment fingerprint.
* :mod:`~repro.bench.registry` — the ``@bench_case`` decorator, the
  shared :data:`~repro.bench.registry.REGISTRY`, and discovery of
  ``benchmarks/bench_*.py`` registration modules.
* :mod:`~repro.bench.runner` — serial and ``ProcessPoolExecutor``
  execution with per-case wall budgets and failure isolation; emits
  ``bench.case`` telemetry spans.
* :mod:`~repro.bench.schema` — the versioned JSON document format with
  exhaustive validation.
* :mod:`~repro.bench.baseline` — the improved/unchanged/regressed
  comparator behind ``repro bench compare`` and the CI gate.

CLI: ``repro bench run|list|compare`` (see ``repro bench --help``).
"""

from .baseline import BaselineComparison, CaseComparison, compare_documents
from .harness import (
    BenchCase,
    BenchResult,
    BenchSample,
    BenchStats,
    BenchTimeout,
    environment_fingerprint,
    run_case,
    summarize,
)
from .registry import (
    REGISTRY,
    BenchRegistry,
    RegisteredCase,
    bench_case,
    discover_benchmarks,
)
from .runner import BenchReport, run_benchmarks, standalone_main
from .schema import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    SchemaError,
    load_document,
    report_to_document,
    validate_document,
    write_document,
)

__all__ = [
    "BenchCase",
    "BenchSample",
    "BenchStats",
    "BenchResult",
    "BenchTimeout",
    "run_case",
    "summarize",
    "environment_fingerprint",
    "RegisteredCase",
    "BenchRegistry",
    "REGISTRY",
    "bench_case",
    "discover_benchmarks",
    "BenchReport",
    "run_benchmarks",
    "standalone_main",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "SchemaError",
    "report_to_document",
    "validate_document",
    "write_document",
    "load_document",
    "CaseComparison",
    "BaselineComparison",
    "compare_documents",
]
