"""Baseline comparison: the regression gate behind ``repro bench compare``.

:func:`compare_documents` matches the cases of a current report against a
baseline document and classifies each by the ratio of median runtimes:

=============  ========================================================
``regressed``  current median > baseline median * (1 + threshold)
``improved``   current median < baseline median * (1 - threshold)
``unchanged``  within the threshold band
``failed``     the current run ended ``failed``/``timeout``
``added``      present now, absent from the baseline (informational)
``missing``    present in the baseline, absent now (informational)
=============  ========================================================

``regressed`` and ``failed`` drive the nonzero exit code; ``added`` and
``missing`` are surfaced but do not gate, so growing or pruning the suite
never requires a synchronized baseline refresh.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CaseComparison", "BaselineComparison", "compare_documents"]

#: Default relative threshold: +/-25% of the baseline median.
DEFAULT_THRESHOLD = 0.25


@dataclass(frozen=True)
class CaseComparison:
    """One case's classification against the baseline."""

    name: str
    group: str
    verdict: str  # regressed | improved | unchanged | failed | added | missing
    current_median_s: float | None = None
    baseline_median_s: float | None = None

    @property
    def ratio(self) -> float | None:
        """current / baseline median, when both are measurable."""
        if not self.current_median_s or not self.baseline_median_s:
            return None
        return self.current_median_s / self.baseline_median_s


@dataclass(frozen=True)
class BaselineComparison:
    """Full verdict set for one current-vs-baseline comparison."""

    cases: tuple[CaseComparison, ...]
    threshold: float

    def verdicts(self, *names: str) -> tuple[CaseComparison, ...]:
        return tuple(c for c in self.cases if c.verdict in names)

    @property
    def regressed(self) -> tuple[CaseComparison, ...]:
        return self.verdicts("regressed")

    @property
    def failed(self) -> tuple[CaseComparison, ...]:
        return self.verdicts("failed")

    @property
    def exit_code(self) -> int:
        """Nonzero iff any case regressed or failed — the CI gate."""
        return 1 if self.verdicts("regressed", "failed") else 0

    def format(self) -> str:
        """Human-readable verdict table plus a one-line summary."""
        from repro.framework.report import format_table

        def fmt(value: float | None) -> str:
            return "-" if value is None else f"{value * 1e3:.3f} ms"

        rows = []
        for case in self.cases:
            ratio = case.ratio
            rows.append(
                (
                    case.name,
                    case.group,
                    fmt(case.baseline_median_s),
                    fmt(case.current_median_s),
                    "-" if ratio is None else f"{ratio:.2f}x",
                    case.verdict,
                )
            )
        table = format_table(
            rows,
            headers=(
                "case",
                "group",
                "baseline median",
                "current median",
                "ratio",
                "verdict",
            ),
        )
        lines = [table, "", f"threshold: +/-{self.threshold * 100:g}%"]
        for verdict in ("regressed", "failed", "improved", "missing", "added"):
            hits = self.verdicts(verdict)
            if hits:
                names = ", ".join(c.name for c in hits)
                lines.append(f"{verdict}: {names}")
        if self.exit_code == 0:
            lines.append("no regressions")
        return "\n".join(lines)


def _medians(doc: dict) -> dict[str, dict]:
    return {case["name"]: case for case in doc["cases"]}


def compare_documents(
    current: dict,
    baseline: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> BaselineComparison:
    """Classify every case of ``current`` against ``baseline``.

    Both documents must already be schema-valid (see
    :func:`repro.bench.schema.load_document`).  ``threshold`` is the
    relative band around the baseline median counted as noise.
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    current_cases = _medians(current)
    baseline_cases = _medians(baseline)
    comparisons = []
    for name, case in current_cases.items():
        group = case["group"]
        if case["status"] != "ok":
            comparisons.append(
                CaseComparison(name=name, group=group, verdict="failed")
            )
            continue
        cur = case["stats"]["median_s"]
        ref_case = baseline_cases.get(name)
        if ref_case is None or ref_case["status"] != "ok":
            comparisons.append(
                CaseComparison(
                    name=name,
                    group=group,
                    verdict="added",
                    current_median_s=cur,
                )
            )
            continue
        ref = ref_case["stats"]["median_s"]
        if ref <= 0:
            verdict = "unchanged" if cur <= 0 else "regressed"
        elif cur > ref * (1 + threshold):
            verdict = "regressed"
        elif cur < ref * (1 - threshold):
            verdict = "improved"
        else:
            verdict = "unchanged"
        comparisons.append(
            CaseComparison(
                name=name,
                group=group,
                verdict=verdict,
                current_median_s=cur,
                baseline_median_s=ref,
            )
        )
    for name, ref_case in baseline_cases.items():
        if name not in current_cases:
            comparisons.append(
                CaseComparison(
                    name=name,
                    group=ref_case["group"],
                    verdict="missing",
                    baseline_median_s=(
                        ref_case["stats"]["median_s"]
                        if ref_case["status"] == "ok"
                        else None
                    ),
                )
            )
    ordered = sorted(comparisons, key=lambda c: (c.group, c.name))
    return BaselineComparison(cases=tuple(ordered), threshold=threshold)
