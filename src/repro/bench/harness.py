"""Timing core of the benchmark subsystem: cases, samples, statistics.

A :class:`BenchCase` is a fully resolved, runnable scenario — a callable
plus its keyword arguments, warmup/repeat counts, and an optional wall
budget.  :func:`run_case` executes it with ``time.perf_counter`` (or any
injected clock, which is how the tests obtain deterministic timings) and
returns a :class:`BenchResult` carrying the raw :class:`BenchSample`
timings and their :class:`BenchStats` summary: min/median/mean/stdev and
the indices of IQR outliers (Tukey fences at 1.5x), so noisy samples are
flagged rather than silently averaged in.

:func:`environment_fingerprint` stamps every report with enough context
to interpret a regression: interpreter, platform, CPU count, git SHA, and
the package version.
"""

from __future__ import annotations

import os
import platform
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

__all__ = [
    "BenchCase",
    "BenchSample",
    "BenchStats",
    "BenchResult",
    "BenchTimeout",
    "run_case",
    "summarize",
    "environment_fingerprint",
]

#: Tukey fence multiplier for IQR outlier flagging.
_IQR_FENCE = 1.5


class BenchTimeout(Exception):
    """A case exceeded its wall budget (raised by the runner's deadline)."""


@dataclass(frozen=True)
class BenchCase:
    """One runnable benchmark scenario, fully resolved."""

    name: str
    func: Callable[..., object]
    group: str = "default"
    kwargs: Mapping[str, object] = field(default_factory=dict)
    warmup: int = 1
    repeats: int = 3
    timeout_s: float | None = 60.0

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError(f"{self.name}: warmup must be >= 0")
        if self.repeats < 1:
            raise ValueError(f"{self.name}: repeats must be >= 1")


@dataclass(frozen=True)
class BenchSample:
    """One timed execution of a case's callable."""

    index: int
    seconds: float


@dataclass(frozen=True)
class BenchStats:
    """Robust summary of a case's samples."""

    min_s: float
    max_s: float
    mean_s: float
    median_s: float
    stdev_s: float
    iqr_s: float
    #: Indices (into the sample list) outside the Tukey fences.
    outliers: tuple[int, ...] = ()


@dataclass(frozen=True)
class BenchResult:
    """Outcome of running one case: samples + stats, or a failure."""

    name: str
    group: str
    status: str  # "ok" | "failed" | "timeout"
    warmup: int
    repeats: int
    samples: tuple[BenchSample, ...] = ()
    stats: BenchStats | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def summarize(samples: tuple[BenchSample, ...] | list[BenchSample]) -> BenchStats:
    """Min/median/mean/stdev plus IQR outlier indices for the samples."""
    if not samples:
        raise ValueError("cannot summarize zero samples")
    values = [s.seconds for s in samples]
    stdev = statistics.stdev(values) if len(values) > 1 else 0.0
    if len(values) >= 4:
        q1, _, q3 = statistics.quantiles(values, n=4, method="inclusive")
        iqr = q3 - q1
        low = q1 - _IQR_FENCE * iqr
        high = q3 + _IQR_FENCE * iqr
        outliers = tuple(
            s.index for s in samples if not low <= s.seconds <= high
        )
    else:
        iqr, outliers = 0.0, ()
    return BenchStats(
        min_s=min(values),
        max_s=max(values),
        mean_s=statistics.fmean(values),
        median_s=statistics.median(values),
        stdev_s=stdev,
        iqr_s=iqr,
        outliers=outliers,
    )


def run_case(
    case: BenchCase,
    clock: Callable[[], float] = time.perf_counter,
) -> BenchResult:
    """Run ``case``: warmup iterations untimed, then ``repeats`` timed calls.

    Exceptions from the case's callable propagate — failure isolation and
    wall budgets live in :mod:`repro.bench.runner`, which maps them to
    ``failed``/``timeout`` results.  ``clock`` is injectable so tests can
    produce deterministic samples.
    """
    kwargs = dict(case.kwargs)
    for _ in range(case.warmup):
        case.func(**kwargs)
    samples = []
    for i in range(case.repeats):
        t0 = clock()
        case.func(**kwargs)
        t1 = clock()
        samples.append(BenchSample(index=i, seconds=t1 - t0))
    return BenchResult(
        name=case.name,
        group=case.group,
        status="ok",
        warmup=case.warmup,
        repeats=case.repeats,
        samples=tuple(samples),
        stats=summarize(samples),
    )


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def environment_fingerprint() -> dict[str, object]:
    """Context stamped on every report: interpreter, host, code version."""
    from repro import __version__

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "git_sha": _git_sha(),
        "repro_version": __version__,
    }
