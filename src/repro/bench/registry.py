"""Case registry: the ``@bench_case`` decorator and module discovery.

Benchmark scenarios register themselves by decorating a callable:

.. code-block:: python

    from repro.bench import bench_case

    @bench_case(
        "fig5.buffer_plan",
        group="figures",
        params={"edge": 128},          # full-size run
        quick={"edge": 32},            # CI-sized override
        warmup=1, repeats=3, timeout_s=60.0,
    )
    def plan_with_buffer(edge=128):
        ...

``params`` are the keyword arguments of the full run; ``quick`` opts the
case into the CI suite (``repro bench run --quick``) with overrides sized
to finish in seconds (``quick=True`` keeps the full params).  Cases whose
``quick`` is ``None`` are excluded from the quick suite entirely.

:func:`discover_benchmarks` imports every ``benchmarks/bench_*.py`` so
their decorators populate the shared :data:`REGISTRY`; the figure scripts
therefore double as registration modules while keeping their pytest
behaviour.
"""

from __future__ import annotations

import importlib
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping

from .harness import BenchCase

__all__ = [
    "RegisteredCase",
    "BenchRegistry",
    "REGISTRY",
    "bench_case",
    "discover_benchmarks",
]


@dataclass(frozen=True)
class RegisteredCase:
    """A decorated case plus both of its parameterizations."""

    name: str
    group: str
    func: Callable[..., object]
    module: str
    params: Mapping[str, object] = field(default_factory=dict)
    #: ``None`` — not part of the quick suite; a mapping — overrides
    #: merged over ``params`` when running with ``--quick``.
    quick: Mapping[str, object] | None = None
    warmup: int = 1
    repeats: int = 3
    timeout_s: float | None = 60.0

    def resolve(self, quick: bool = False) -> BenchCase:
        """The runnable :class:`BenchCase` for the requested suite."""
        kwargs = dict(self.params)
        if quick:
            if self.quick is None:
                raise ValueError(f"{self.name} has no quick variant")
            kwargs.update(self.quick)
        return BenchCase(
            name=self.name,
            func=self.func,
            group=self.group,
            kwargs=kwargs,
            warmup=self.warmup,
            repeats=self.repeats,
            timeout_s=self.timeout_s,
        )


class BenchRegistry:
    """Name-keyed collection of :class:`RegisteredCase` entries."""

    def __init__(self) -> None:
        self._cases: dict[str, RegisteredCase] = {}

    def register(self, case: RegisteredCase) -> None:
        existing = self._cases.get(case.name)
        if existing is not None and (
            existing.module != case.module
            or existing.func.__qualname__ != case.func.__qualname__
        ):
            raise ValueError(
                f"bench case {case.name!r} already registered by "
                f"{existing.module}.{existing.func.__qualname__}"
            )
        self._cases[case.name] = case

    def get(self, name: str) -> RegisteredCase:
        try:
            return self._cases[name]
        except KeyError:
            known = ", ".join(sorted(self._cases)) or "<none>"
            raise KeyError(
                f"unknown bench case {name!r} (registered: {known})"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._cases)

    def select(
        self,
        quick: bool = False,
        filter: str | None = None,
        modules: Iterable[str] | None = None,
    ) -> list[RegisteredCase]:
        """Cases matching the suite/filter, ordered by (group, name).

        ``filter`` is a case-insensitive substring over ``group/name``;
        ``modules`` restricts to cases registered by those modules.
        """
        wanted_modules = set(modules) if modules is not None else None
        selected = []
        for case in self._cases.values():
            if quick and case.quick is None:
                continue
            if wanted_modules is not None and case.module not in wanted_modules:
                continue
            if filter and filter.lower() not in f"{case.group}/{case.name}".lower():
                continue
            selected.append(case)
        return sorted(selected, key=lambda c: (c.group, c.name))

    def clear(self) -> None:
        """Drop every registration (test isolation helper)."""
        self._cases.clear()

    def __len__(self) -> int:
        return len(self._cases)

    def __contains__(self, name: str) -> bool:
        return name in self._cases


#: The process-wide registry the decorator and CLI share.
REGISTRY = BenchRegistry()


def bench_case(
    name: str,
    group: str = "default",
    *,
    params: Mapping[str, object] | None = None,
    quick: Mapping[str, object] | bool | None = None,
    warmup: int = 1,
    repeats: int = 3,
    timeout_s: float | None = 60.0,
    registry: BenchRegistry | None = None,
) -> Callable[[Callable[..., object]], Callable[..., object]]:
    """Register the decorated callable as a benchmark case.

    ``quick=True`` joins the quick suite with the full ``params``; a
    mapping joins it with those keys overriding ``params``; ``None``
    (default) keeps the case full-suite only.
    """
    if quick is True:
        quick = {}
    elif quick is False:
        quick = None

    def decorate(func: Callable[..., object]) -> Callable[..., object]:
        case = RegisteredCase(
            name=name,
            group=group,
            func=func,
            module=func.__module__,
            params=dict(params or {}),
            quick=None if quick is None else dict(quick),
            warmup=warmup,
            repeats=repeats,
            timeout_s=timeout_s,
        )
        (registry if registry is not None else REGISTRY).register(case)
        return func

    return decorate


def _benchmarks_dir(directory: str | Path | None) -> Path | None:
    """Resolve the benchmarks directory: arg > $REPRO_BENCH_DIR > cwd >
    the checkout that contains the installed package."""
    import os

    if directory is not None:
        # An explicit directory is authoritative — no fallbacks.
        path = Path(directory)
        return path.resolve() if path.is_dir() else None
    candidates: list[Path] = []
    env = os.environ.get("REPRO_BENCH_DIR")
    if env:
        candidates.append(Path(env))
    candidates.append(Path.cwd() / "benchmarks")
    candidates.append(Path(__file__).resolve().parents[3] / "benchmarks")
    for candidate in candidates:
        if candidate.is_dir():
            return candidate.resolve()
    return None


def discover_benchmarks(
    directory: str | Path | None = None,
) -> tuple[list[str], list[str]]:
    """Import every ``bench_*.py`` under the benchmarks directory.

    Returns ``(imported_module_names, errors)``; an unimportable module
    is reported, not fatal, so one broken figure script cannot take the
    whole suite down.
    """
    root = _benchmarks_dir(directory)
    if root is None:
        return [], ["no benchmarks/ directory found"]
    parent = str(root.parent)
    if parent not in sys.path:
        sys.path.insert(0, parent)
    package = root.name
    imported, errors = [], []
    for path in sorted(root.glob("bench_*.py")):
        module = f"{package}.{path.stem}"
        try:
            importlib.import_module(module)
        except Exception as exc:  # noqa: BLE001 — isolate broken scripts
            errors.append(f"{module}: {type(exc).__name__}: {exc}")
        else:
            imported.append(module)
    return imported, errors
