"""Suite execution: serial or process-parallel, with failure isolation.

:func:`run_benchmarks` executes a selection of registered cases and
returns a :class:`BenchReport`.  Guarantees:

* **Failure isolation** — a case that raises is reported as ``failed``
  (with its traceback) and the remaining cases still run.
* **Per-case wall budgets** — each case runs under a ``SIGALRM``
  deadline covering warmup + all repeats; overruns are reported as
  ``timeout``.  The deadline interrupts Python-level work (including
  ``time.sleep``); a C extension that never re-enters the interpreter
  can only be bounded by the parallel mode's process kill-switch.
* **Parallel mode** — ``jobs > 1`` fans cases out over a
  ``ProcessPoolExecutor``; workers re-resolve their case from the
  registry by module + name, so only small specs cross the process
  boundary.  A hard-crashed worker (e.g. segfault) breaks the pool;
  the affected cases are reported ``failed`` instead of sinking the
  suite.

Every case emits a ``bench.case`` span through the given
:class:`repro.telemetry` tracer (name/group/status/median attached), so
``--trace-out`` shows the suite's timeline like any other run.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.telemetry import NULL_TRACER, NullTracer, Tracer

from .harness import BenchResult, BenchTimeout, environment_fingerprint, run_case
from .registry import REGISTRY, RegisteredCase

__all__ = ["BenchReport", "run_benchmarks", "standalone_main"]

#: Extra seconds granted to a worker beyond the case's own deadline
#: before the parent gives up waiting on its future.
_WORKER_GRACE_S = 30.0


@dataclass(frozen=True)
class BenchReport:
    """All results of one suite run plus the host fingerprint."""

    results: tuple[BenchResult, ...]
    environment: dict[str, object] = field(default_factory=dict)
    quick: bool = False
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failed(self) -> tuple[BenchResult, ...]:
        return tuple(r for r in self.results if not r.ok)


@contextmanager
def _deadline(seconds: float | None):
    """Raise :class:`BenchTimeout` inside the block after ``seconds``.

    No-op when ``seconds`` is falsy, off the main thread, or on a
    platform without ``SIGALRM``.
    """
    usable = (
        seconds
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _expired(signum, frame):
        raise BenchTimeout(f"exceeded wall budget of {seconds:g}s")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute(case: RegisteredCase, quick: bool) -> BenchResult:
    """Run one case under its deadline, mapping errors to statuses."""
    bench = case.resolve(quick=quick)
    try:
        with _deadline(bench.timeout_s):
            return run_case(bench)
    except BenchTimeout as exc:
        return BenchResult(
            name=case.name,
            group=case.group,
            status="timeout",
            warmup=bench.warmup,
            repeats=bench.repeats,
            error=str(exc),
        )
    except Exception:  # noqa: BLE001 — isolation is the contract
        return BenchResult(
            name=case.name,
            group=case.group,
            status="failed",
            warmup=bench.warmup,
            repeats=bench.repeats,
            error=traceback.format_exc(limit=8),
        )


def _failure(case: RegisteredCase, status: str, error: str) -> BenchResult:
    return BenchResult(
        name=case.name,
        group=case.group,
        status=status,
        warmup=case.warmup,
        repeats=case.repeats,
        error=error,
    )


def _worker_execute(module: str, name: str, quick: bool) -> dict:
    """Process-pool entry point: re-resolve the case, run, serialize."""
    import importlib

    from .schema import result_to_dict

    if name not in REGISTRY:
        # Fresh interpreter (spawn start method): re-run the decorators.
        importlib.import_module(module)
    return result_to_dict(_execute(REGISTRY.get(name), quick))


def _span(tracer: NullTracer | Tracer, result: BenchResult, t0: float, t1: float) -> None:
    tracer.span(
        "bench.case",
        machine="bench",
        t0=t0,
        t1=t1,
        case=result.name,
        group=result.group,
        status=result.status,
        median_s=None if result.stats is None else result.stats.median_s,
    )
    tracer.counter(f"bench.{result.status}").inc()


def _run_serial(
    cases: list[RegisteredCase], quick: bool, tracer: NullTracer | Tracer
) -> list[BenchResult]:
    results = []
    for case in cases:
        t0 = time.perf_counter()
        result = _execute(case, quick)
        _span(tracer, result, t0, time.perf_counter())
        results.append(result)
    return results


def _run_parallel(
    cases: list[RegisteredCase],
    quick: bool,
    jobs: int,
    tracer: NullTracer | Tracer,
) -> list[BenchResult]:
    from .schema import result_from_dict

    results: dict[str, BenchResult] = {}
    t0 = time.perf_counter()
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {
            case.name: pool.submit(
                _worker_execute, case.module, case.name, quick
            )
            for case in cases
        }
        for case in cases:
            future = futures[case.name]
            budget = (case.timeout_s or 0.0) + _WORKER_GRACE_S
            try:
                result = result_from_dict(future.result(timeout=budget))
            except BrokenProcessPool:
                result = _failure(
                    case, "failed", "worker process crashed (pool broken)"
                )
            except TimeoutError:
                future.cancel()
                result = _failure(
                    case,
                    "timeout",
                    f"worker unresponsive past {budget:g}s hard limit",
                )
            except Exception as exc:  # noqa: BLE001 — isolation contract
                result = _failure(
                    case, "failed", f"{type(exc).__name__}: {exc}"
                )
            _span(tracer, result, t0, time.perf_counter())
            results[case.name] = result
    return [results[case.name] for case in cases]


def run_benchmarks(
    cases: list[RegisteredCase],
    quick: bool = False,
    jobs: int = 1,
    tracer: NullTracer | Tracer = NULL_TRACER,
) -> BenchReport:
    """Run the cases serially (``jobs=1``) or in a process pool."""
    started = time.perf_counter()
    if jobs <= 1 or len(cases) <= 1:
        results = _run_serial(cases, quick, tracer)
    else:
        results = _run_parallel(cases, quick, jobs, tracer)
    return BenchReport(
        results=tuple(results),
        environment=environment_fingerprint(),
        quick=quick,
        elapsed_s=time.perf_counter() - started,
    )


def standalone_main(argv: list[str] | None = None) -> int:
    """Entry point for ``python benchmarks/bench_*.py``.

    Runs whatever cases the executing script registered (serially) and
    prints their summary, so every figure script doubles as a
    self-contained benchmark without the ``repro bench`` CLI.
    """
    import argparse

    from repro.framework.report import format_table

    parser = argparse.ArgumentParser(
        description="run this script's registered bench cases"
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized quick variants"
    )
    parser.add_argument(
        "--filter", default=None, help="substring over 'group/name'"
    )
    args = parser.parse_args(argv)
    cases = REGISTRY.select(quick=args.quick, filter=args.filter)
    if not cases:
        print("no bench cases registered")
        return 1
    report = run_benchmarks(cases, quick=args.quick)
    rows = [
        (
            r.name,
            r.status,
            "-" if r.stats is None else f"{r.stats.median_s * 1e3:.3f} ms",
            "-" if r.stats is None else f"{r.stats.mean_s * 1e3:.3f} ms",
        )
        for r in report.results
    ]
    print(format_table(rows, headers=("case", "status", "median", "mean")))
    for result in report.failed:
        print(f"{result.status}: {result.name}\n{result.error}")
    return 0 if report.ok else 1
