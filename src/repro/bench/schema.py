"""Versioned JSON document format for benchmark reports.

A report serializes to a single self-describing document::

    {
      "schema": "repro.bench",
      "version": 1,
      "name": "quick",
      "created_unix": 1738000000.0,
      "quick": true,
      "environment": {"python": ..., "platform": ..., "cpu_count": ...,
                      "git_sha": ..., "repro_version": ...},
      "cases": [
        {"name": "fig5.buffer_plan", "group": "figures", "status": "ok",
         "warmup": 1, "repeats": 3, "samples_s": [...],
         "stats": {"min_s": ..., "max_s": ..., "mean_s": ...,
                   "median_s": ..., "stdev_s": ..., "iqr_s": ...,
                   "outliers": [...]},
         "error": null},
        ...
      ]
    }

Documents are written to ``BENCH_<name>.json`` at the repo root by
``repro bench run`` and consumed by ``repro bench compare``.
:func:`validate_document` checks structure exhaustively and raises
:class:`SchemaError` listing *every* problem found, so a tampered or
truncated baseline fails loudly rather than comparing garbage.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .harness import BenchResult, BenchSample, BenchStats
from .runner import BenchReport

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "SchemaError",
    "report_to_document",
    "result_to_dict",
    "result_from_dict",
    "validate_document",
    "write_document",
    "load_document",
]

SCHEMA_NAME = "repro.bench"
SCHEMA_VERSION = 1

_STATUSES = ("ok", "failed", "timeout")

_ENVIRONMENT_KEYS = (
    "python",
    "platform",
    "cpu_count",
    "git_sha",
    "repro_version",
)

_STATS_KEYS = ("min_s", "max_s", "mean_s", "median_s", "stdev_s", "iqr_s")


class SchemaError(ValueError):
    """A document failed validation; ``problems`` lists every issue."""

    def __init__(self, problems: list[str]) -> None:
        self.problems = list(problems)
        super().__init__(
            "invalid bench document: " + "; ".join(self.problems)
        )


def result_to_dict(result: BenchResult) -> dict:
    """One case's JSON form (also the parallel runner's wire format)."""
    stats = None
    if result.stats is not None:
        stats = {
            "min_s": result.stats.min_s,
            "max_s": result.stats.max_s,
            "mean_s": result.stats.mean_s,
            "median_s": result.stats.median_s,
            "stdev_s": result.stats.stdev_s,
            "iqr_s": result.stats.iqr_s,
            "outliers": list(result.stats.outliers),
        }
    return {
        "name": result.name,
        "group": result.group,
        "status": result.status,
        "warmup": result.warmup,
        "repeats": result.repeats,
        "samples_s": [s.seconds for s in result.samples],
        "stats": stats,
        "error": result.error,
    }


def result_from_dict(doc: dict) -> BenchResult:
    """Inverse of :func:`result_to_dict`."""
    stats = None
    if doc.get("stats") is not None:
        raw = doc["stats"]
        stats = BenchStats(
            min_s=raw["min_s"],
            max_s=raw["max_s"],
            mean_s=raw["mean_s"],
            median_s=raw["median_s"],
            stdev_s=raw["stdev_s"],
            iqr_s=raw["iqr_s"],
            outliers=tuple(raw.get("outliers", ())),
        )
    return BenchResult(
        name=doc["name"],
        group=doc["group"],
        status=doc["status"],
        warmup=doc["warmup"],
        repeats=doc["repeats"],
        samples=tuple(
            BenchSample(index=i, seconds=s)
            for i, s in enumerate(doc.get("samples_s", ()))
        ),
        stats=stats,
        error=doc.get("error"),
    )


def report_to_document(report: BenchReport, name: str) -> dict:
    """The full versioned document for one suite run."""
    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "name": name,
        "created_unix": time.time(),
        "quick": report.quick,
        "environment": dict(report.environment),
        "cases": [result_to_dict(r) for r in report.results],
    }


def _check_number(doc: dict, key: str, problems: list[str], where: str) -> None:
    value = doc.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        problems.append(f"{where}.{key} must be a number, got {value!r}")


def validate_document(doc: object) -> dict:
    """Validate structure; return the document or raise :class:`SchemaError`."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        raise SchemaError([f"document must be an object, got {type(doc).__name__}"])
    if doc.get("schema") != SCHEMA_NAME:
        problems.append(f"schema must be {SCHEMA_NAME!r}, got {doc.get('schema')!r}")
    if doc.get("version") != SCHEMA_VERSION:
        problems.append(
            f"version must be {SCHEMA_VERSION}, got {doc.get('version')!r}"
        )
    if not isinstance(doc.get("name"), str) or not doc.get("name"):
        problems.append("name must be a non-empty string")
    _check_number(doc, "created_unix", problems, "document")
    if not isinstance(doc.get("quick"), bool):
        problems.append("quick must be a boolean")
    environment = doc.get("environment")
    if not isinstance(environment, dict):
        problems.append("environment must be an object")
    else:
        for key in _ENVIRONMENT_KEYS:
            if key not in environment:
                problems.append(f"environment.{key} is missing")
    cases = doc.get("cases")
    if not isinstance(cases, list):
        problems.append("cases must be a list")
        cases = []
    seen: set[str] = set()
    for i, case in enumerate(cases):
        where = f"cases[{i}]"
        if not isinstance(case, dict):
            problems.append(f"{where} must be an object")
            continue
        name = case.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}.name must be a non-empty string")
        elif name in seen:
            problems.append(f"{where}.name {name!r} is duplicated")
        else:
            seen.add(name)
        if not isinstance(case.get("group"), str):
            problems.append(f"{where}.group must be a string")
        status = case.get("status")
        if status not in _STATUSES:
            problems.append(
                f"{where}.status must be one of {_STATUSES}, got {status!r}"
            )
        for key in ("warmup", "repeats"):
            if not isinstance(case.get(key), int):
                problems.append(f"{where}.{key} must be an integer")
        samples = case.get("samples_s")
        if not isinstance(samples, list) or any(
            not isinstance(s, (int, float)) or isinstance(s, bool)
            for s in samples
        ):
            problems.append(f"{where}.samples_s must be a list of numbers")
        stats = case.get("stats")
        if status == "ok":
            if not isinstance(stats, dict):
                problems.append(f"{where}.stats is required when status is ok")
            else:
                for key in _STATS_KEYS:
                    _check_number(stats, key, problems, f"{where}.stats")
                if not isinstance(stats.get("outliers"), list):
                    problems.append(f"{where}.stats.outliers must be a list")
        elif stats is not None and not isinstance(stats, dict):
            problems.append(f"{where}.stats must be an object or null")
        error = case.get("error")
        if error is not None and not isinstance(error, str):
            problems.append(f"{where}.error must be a string or null")
        if status != "ok" and not error:
            problems.append(f"{where}.error is required when status is {status}")
    if problems:
        raise SchemaError(problems)
    return doc


def write_document(doc: dict, path: str | Path) -> None:
    """Validate and write the document as pretty-printed JSON."""
    validate_document(doc)
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def load_document(path: str | Path) -> dict:
    """Read and validate a ``BENCH_*.json`` document."""
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SchemaError([f"{path} is not valid JSON: {exc}"]) from exc
    return validate_document(doc)
