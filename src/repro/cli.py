"""Command-line interface: ``python -m repro <command>``.

The commands expose the library without writing code:

* ``schedule``  — run the six heuristics (and optionally the ILP) on the
  paper's Figure 1 instance or a random one; prints a Gantt chart.
* ``campaign``  — run a Nyx/WarpX campaign for one or all solutions and
  print the overhead comparison; ``--faults SPEC`` runs it under a
  seeded fault-injection plan and appends a resilience report;
  ``--journal``/``--resume`` write-ahead-log the run and recover an
  interrupted one (``docs/durability.md``).
* ``verify``    — scrub a snapshot or journal offline, walking every
  checksum and structural invariant; exit 0 clean, 1 corrupt.
* ``compress``  — generate a synthetic field, compress it with the SZ or
  ZFP codec, and report ratio/error.
* ``snapshot``  — write a real compressed snapshot of synthetic fields to
  a shared file (or subfiled directory) and verify it on read-back.
* ``engines``   — list the registered execution engines (``--engine``
  on ``schedule``/``campaign`` picks one; ``sim`` models in-process,
  ``process`` really compresses on a worker pool with overlapped I/O).
* ``serve``     — run the scheduling service: a long-lived JSON-over-
  HTTP server with exact solution memoization, request batching, and
  per-tenant admission quotas (``docs/service.md``).
* ``submit``    — client for a running service: submit solve/campaign
  requests, poll status/health, or ask it to drain and shut down.
* ``experiments`` — list every reproduced table/figure and its bench.
* ``bench``     — the performance-regression harness: ``run`` registered
  benchmark cases (serial or process-parallel) into a versioned
  ``BENCH_*.json`` report, ``list`` the registry, and ``compare`` a
  report against a baseline with a nonzero exit on regression.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]

_EXPERIMENTS = [
    ("Figure 1", "the worked scheduling example", "benchmarks/bench_fig1_example.py"),
    ("Table 1", "scheduler comparison", "benchmarks/bench_table1_schedulers.py"),
    ("Figure 3", "I/O workload balancing", "benchmarks/bench_fig3_balancing.py"),
    ("Figure 4", "fine-grained block size", "benchmarks/bench_fig4_blocksize.py"),
    ("Figure 5", "compressed data buffer", "benchmarks/bench_fig5_buffer.py"),
    ("Figure 6", "shared Huffman tree", "benchmarks/bench_fig6_shared_tree.py"),
    ("Figure 7", "overhead vs compression ratio", "benchmarks/bench_fig7_ratio.py"),
    ("Figure 8", "overhead vs data distribution", "benchmarks/bench_fig8_distribution.py"),
    ("Figure 9", "Nyx 16 nodes / 64 GPUs", "benchmarks/bench_fig9_nyx64.py"),
    ("Figure 10", "run-stage comparison", "benchmarks/bench_fig10_timesteps.py"),
    ("Figure 11", "weak scaling", "benchmarks/bench_fig11_scaling.py"),
    ("Artifact B.5", "end-to-end runs", "benchmarks/bench_artifact_endtoend.py"),
    ("Ablations", "design-choice decomposition", "benchmarks/bench_ablations.py"),
    ("Sensitivity", "prediction-noise robustness (Section 3.1)", "benchmarks/bench_sensitivity.py"),
    ("Compression config", "Section 5.1 per-field ratio/PSNR", "benchmarks/bench_compression_config.py"),
    ("Codec micro", "real codec throughput on this machine", "benchmarks/bench_codec_micro.py"),
    ("Prediction vs oracle", "Section 5.2 predicted-vs-actual inputs", "benchmarks/bench_prediction_oracle.py"),
    ("Ext: HACC", "third application at low ratios", "benchmarks/bench_extension_hacc.py"),
    ("Ext: subfiling", "multi-file dumps at scale", "benchmarks/bench_extension_subfiling.py"),
]


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Concealing Compression-accelerated I/O "
            "for HPC Applications through In Situ Task Scheduling' "
            "(EuroSys '24)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schedule", help="run the scheduling heuristics")
    p.add_argument(
        "--instance",
        choices=["figure1", "random"],
        default="figure1",
        help="which instance to schedule",
    )
    p.add_argument("--jobs", type=int, default=6, help="random-instance job count")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--algorithm",
        default=None,
        help=(
            "run one named algorithm through the solve() facade "
            "instead of sweeping all six heuristics "
            "(exact solvers 'ILP' and 'Exhaustive' included)"
        ),
    )
    p.add_argument(
        "--ilp",
        action="store_true",
        help="also solve the Appendix A ILP (small instances only)",
    )
    p.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="record telemetry spans and write them as JSON lines",
    )
    p.add_argument(
        "--engine",
        choices=["sim", "process"],
        default="sim",
        help=(
            "execution backend the schedules target (recorded on each "
            "SolveResult; see 'repro engines list')"
        ),
    )

    p = sub.add_parser("campaign", help="run an application campaign")
    p.add_argument("--app", choices=["nyx", "warpx", "hacc"], default="nyx")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--ppn", type=int, default=4, help="processes per node")
    p.add_argument("--iterations", type=int, default=6)
    p.add_argument(
        "--solution",
        choices=["baseline", "previous", "ours", "all"],
        default="all",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=1,
        help=(
            "master seed: drives the application fields, the per-rank "
            "noise models, and (with --faults) every fault draw, so one "
            "value reproduces the whole campaign"
        ),
    )
    p.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help=(
            "YAML/JSON fault spec (see examples/fault_specs/); injects "
            "stalls, write errors, bandwidth bursts, compression "
            "failures, and stragglers, then prints a resilience report"
        ),
    )
    p.add_argument(
        "--engine",
        choices=["sim", "process"],
        default="sim",
        help=(
            "execution backend: 'sim' models everything in-process; "
            "'process' really compresses each rank's partition on a "
            "worker-process pool with the writes overlapped "
            "(journal records and reports are identical either way; "
            "ignored with --resume, which follows the journal header)"
        ),
    )
    p.add_argument(
        "--data-out",
        metavar="DIR",
        default=None,
        help=(
            "directory for real compressed .rpio containers: every dump "
            "iteration also generates, compresses, CRC32C-stamps, and "
            "writes each rank's partition (the 'process' engine uses a "
            "temp dir when omitted; 'sim' skips the data plane)"
        ),
    )
    p.add_argument(
        "--data-edge",
        type=int,
        default=16,
        help="cubic partition edge of the real data-plane fields",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for --engine process "
            "(default: min(ranks, cpu count))"
        ),
    )
    p.add_argument(
        "--task-deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "wall-clock deadline for one attempt of a rank compression "
            "task under --engine process; past it the attempt is "
            "abandoned and the task retried (0 disables deadlines)"
        ),
    )
    p.add_argument(
        "--max-task-retries",
        type=int,
        default=2,
        help=(
            "re-executions of a failed/timed-out rank task before the "
            "parent compresses that rank serially (bytes identical "
            "either way)"
        ),
    )
    p.add_argument(
        "--speculative-frac",
        type=float,
        default=0.9,
        metavar="FRAC",
        help=(
            "fraction of a dump's rank tasks that must complete before "
            "a straggling task gets one speculative duplicate launch "
            "(0 disables speculation)"
        ),
    )
    p.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="record telemetry spans and write them as JSON lines",
    )
    p.add_argument(
        "--journal",
        metavar="FILE",
        default=None,
        help=(
            "write-ahead campaign journal (JSONL): one plan record "
            "before and one commit record after each iteration, fsynced; "
            "requires a single --solution"
        ),
    )
    p.add_argument(
        "--resume",
        metavar="FILE",
        default=None,
        help=(
            "resume an interrupted journaled campaign: replays the "
            "committed prefix (verifying it byte-for-byte) and continues "
            "from the first incomplete iteration; campaign parameters "
            "come from the journal header"
        ),
    )
    p.add_argument(
        "--report-out",
        metavar="FILE",
        default=None,
        help=(
            "write the campaign result as JSON (atomic temp+fsync+"
            "rename); with --journal/--resume this is the recovery-gate "
            "artifact"
        ),
    )

    p = sub.add_parser(
        "verify",
        help="scrub a snapshot or journal for corruption (exit 1 if any)",
    )
    p.add_argument(
        "target",
        help="a .rpio snapshot, snapshot dir, journal, or request ledger",
    )
    p.add_argument(
        "--kind",
        choices=["auto", "snapshot", "journal", "ledger"],
        default="auto",
        help="what the target is (default: sniff the file)",
    )

    p = sub.add_parser("compress", help="compress a synthetic field")
    p.add_argument("--codec", choices=["sz", "zfp"], default="sz")
    p.add_argument(
        "--backend",
        default=None,
        help="codec kernel backend (sz; any registered backend — "
        "pure, numpy, deflate, zlib; default: $REPRO_CODEC_BACKEND "
        "or numpy)",
    )
    p.add_argument("--field", default="temperature")
    p.add_argument("--size", type=int, default=48, help="cubic field edge")
    p.add_argument(
        "--error-bound",
        type=float,
        default=None,
        help="absolute bound (sz; default: the field's Nyx bound)",
    )
    p.add_argument("--rate", type=int, default=8, help="bits/value (zfp)")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "snapshot", help="write + verify a real compressed snapshot"
    )
    p.add_argument("output", help="output file (or directory for subfiled)")
    p.add_argument("--app", choices=["nyx", "warpx", "hacc"], default="nyx")
    p.add_argument("--size", type=int, default=32, help="cubic field edge")
    p.add_argument("--fields", type=int, default=3, help="fields to dump")
    p.add_argument(
        "--layout", choices=["shared", "subfiled"], default="shared"
    )
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "serve", help="run the scheduling service (JSON over HTTP)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8742,
        help="listening port (0 picks a free ephemeral port)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="solver worker threads behind the batching dispatcher",
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="bounded dispatch-queue depth (beyond it: 429 queue_full)",
    )
    p.add_argument(
        "--max-batch",
        type=int,
        default=8,
        help="most compatible requests one coalesced dispatch may carry",
    )
    p.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        metavar="SECONDS",
        help="how long the batcher waits to coalesce compatible requests",
    )
    p.add_argument(
        "--cache-size",
        type=int,
        default=256,
        help="memo-cache capacity in solutions (0 disables memoization)",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "persist the memo cache here as atomically-published "
            "fingerprint-named JSON entries (survives restarts)"
        ),
    )
    p.add_argument(
        "--quota-rate",
        type=float,
        default=50.0,
        help="per-tenant token refill, requests/second (0 = no refill)",
    )
    p.add_argument(
        "--quota-burst",
        type=float,
        default=20.0,
        help="per-tenant token-bucket capacity",
    )
    p.add_argument(
        "--ledger",
        metavar="FILE",
        default=None,
        help=(
            "write-ahead request ledger: admitted requests are "
            "journaled and replayed after a crash"
        ),
    )
    p.add_argument(
        "--drain-deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "hard cap on graceful-drain time; queued requests past it "
            "get a 503 draining rejection"
        ),
    )
    p.add_argument(
        "--breaker-threshold",
        type=float,
        default=0.5,
        help="circuit-breaker failure-rate threshold (engine + disk cache)",
    )
    p.add_argument(
        "--breaker-window",
        type=int,
        default=8,
        help="circuit-breaker sliding outcome window",
    )
    p.add_argument(
        "--breaker-cooldown",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="open-breaker cooldown before a half-open probe",
    )
    p.add_argument(
        "--supervised",
        action="store_true",
        help=(
            "run the server as a child process under a watchdog that "
            "probes /health and a heartbeat file, and restarts it on "
            "crash or hang with bounded exponential backoff"
        ),
    )
    p.add_argument(
        "--heartbeat-file",
        metavar="FILE",
        default=None,
        help=(
            "liveness file the server refreshes from its event loop "
            "(default with --supervised: <tmp>/repro-serve-heartbeat)"
        ),
    )
    p.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="how often the heartbeat file is refreshed",
    )
    p.add_argument(
        "--hang-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help=(
            "watchdog: kill + restart the child when neither heartbeat "
            "nor /health shows life for this long"
        ),
    )
    p.add_argument(
        "--max-restarts",
        type=int,
        default=5,
        help="watchdog: give up (structured exit 1) after this many restarts",
    )
    p.add_argument(
        "--restart-backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="watchdog: first restart backoff (doubles per restart)",
    )
    p.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help=(
            "record service.request/service.batch/solve telemetry spans "
            "and write them as JSON lines on shutdown"
        ),
    )

    p = sub.add_parser(
        "submit", help="talk to a running scheduling service"
    )
    submit_sub = p.add_subparsers(dest="submit_command", required=True)

    def _client_flags(q):
        q.add_argument("--host", default="127.0.0.1")
        q.add_argument("--port", type=int, default=8742)
        q.add_argument(
            "--timeout",
            type=float,
            default=60.0,
            help="HTTP timeout per request, seconds",
        )
        q.add_argument(
            "--no-retry",
            action="store_true",
            help=(
                "fail on the first connection error or 5xx instead of "
                "retrying with backoff + an idempotency key"
            ),
        )
        q.add_argument(
            "--retries",
            type=int,
            default=5,
            help="retry attempts per request (connection errors and 5xx)",
        )
        q.add_argument(
            "--retry-deadline",
            type=float,
            default=None,
            metavar="SECONDS",
            help="give up retrying a request after this long in total",
        )

    q = submit_sub.add_parser("solve", help="submit one solve request")
    _client_flags(q)
    q.add_argument(
        "--instance",
        choices=["figure1", "random"],
        default="figure1",
        help="which instance to submit",
    )
    q.add_argument("--jobs", type=int, default=6, help="random-instance job count")
    q.add_argument("--seed", type=int, default=0)
    q.add_argument(
        "--algorithm",
        default=None,
        help="algorithm name (default: the service's default)",
    )
    q.add_argument("--engine", choices=["sim", "process"], default="sim")
    q.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS"
    )
    q.add_argument("--tenant", default="default")
    q.add_argument(
        "--priority",
        type=int,
        default=0,
        help="dispatch priority (higher runs first)",
    )
    q.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="expire the request if still queued after this long",
    )
    q.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the service's memo cache for this request",
    )

    q = submit_sub.add_parser(
        "campaign", help="submit one campaign request"
    )
    _client_flags(q)
    q.add_argument("--app", choices=["nyx", "warpx", "hacc"], default="nyx")
    q.add_argument("--nodes", type=int, default=4)
    q.add_argument("--ppn", type=int, default=4)
    q.add_argument("--iterations", type=int, default=6)
    q.add_argument(
        "--solution",
        choices=["baseline", "previous", "ours"],
        default="ours",
    )
    q.add_argument("--seed", type=int, default=1)
    q.add_argument("--engine", choices=["sim", "process"], default="sim")
    q.add_argument("--tenant", default="default")
    q.add_argument(
        "--journal",
        metavar="FILE",
        default=None,
        help="server-side write-ahead journal path for the campaign",
    )

    for name, help_text in (
        ("status", "print the service's counter snapshot"),
        ("health", "print the service's liveness/drain state"),
        ("shutdown", "ask the service to drain and exit"),
    ):
        q = submit_sub.add_parser(name, help=help_text)
        _client_flags(q)

    sub.add_parser("experiments", help="list the reproduced experiments")

    p = sub.add_parser(
        "engines", help="inspect the registered execution engines"
    )
    engines_sub = p.add_subparsers(dest="engines_command", required=True)
    engines_sub.add_parser(
        "list", help="list engine names with a one-line description"
    )

    p = sub.add_parser(
        "bench", help="run/list/compare performance benchmark cases"
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    def _selection_flags(q):
        q.add_argument(
            "--quick",
            action="store_true",
            help="only the CI-sized quick variants of each case",
        )
        q.add_argument(
            "--filter",
            metavar="SUBSTR",
            default=None,
            help="case-insensitive substring over 'group/name'",
        )
        q.add_argument(
            "--bench-dir",
            metavar="DIR",
            default=None,
            help="benchmarks directory to discover (default: ./benchmarks)",
        )

    q = bench_sub.add_parser("run", help="run selected cases, write JSON")
    _selection_flags(q)
    q.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = serial in-process)",
    )
    q.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="report path (default: BENCH_quick.json / BENCH_full.json)",
    )
    q.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="also compare against this baseline document",
    )
    q.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="relative regression threshold for --baseline (default 0.25)",
    )
    q.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="record bench.case telemetry spans as JSON lines",
    )

    q = bench_sub.add_parser("list", help="list registered cases")
    _selection_flags(q)

    q = bench_sub.add_parser(
        "compare", help="compare a report against a baseline"
    )
    q.add_argument("current", help="current BENCH_*.json report")
    q.add_argument(
        "--baseline",
        metavar="FILE",
        required=True,
        help="baseline BENCH_*.json document",
    )
    q.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="relative regression threshold (default 0.25)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "schedule": _cmd_schedule,
        "campaign": _cmd_campaign,
        "compress": _cmd_compress,
        "snapshot": _cmd_snapshot,
        "experiments": _cmd_experiments,
        "engines": _cmd_engines,
        "bench": _cmd_bench,
        "verify": _cmd_verify,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
    }[args.command]
    return handler(args)


# ----------------------------------------------------------------------
def _make_tracer(args):
    """A recording tracer when ``--trace-out`` was given, else the null."""
    from repro.telemetry import NULL_TRACER, Tracer

    return Tracer() if getattr(args, "trace_out", None) else NULL_TRACER


def _write_trace(tracer, path: str) -> None:
    if not tracer.enabled:
        return
    tracer.recorder.write_jsonl(path)
    print(
        f"\ntrace: {len(tracer.recorder.records)} records -> {path}"
    )


def _cmd_schedule(args) -> int:
    from repro.core import (
        get_algorithm_info,
        list_algorithms,
        lower_bound,
        solve,
    )
    from repro.simulator import render_gantt, schedule_to_trace

    tracer = _make_tracer(args)
    instance = _make_instance(args)
    print(
        f"instance: {instance.num_jobs} jobs, "
        f"{len(instance.main_obstacles)} main / "
        f"{len(instance.background_obstacles)} background obstacles, "
        f"T_n = {instance.length:.2f}"
    )
    print(f"lower bound on I/O makespan: {lower_bound(instance):.3f}\n")
    names = (
        [args.algorithm]
        if args.algorithm
        else list_algorithms()
    )
    best_name, best = None, None
    for name in names:
        try:
            info = get_algorithm_info(name)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        result = solve(
            instance,
            name,
            tracer=tracer,
            time_limit=30.0,
            engine=args.engine,
        )
        if result.schedule is None:
            print(f"  {name:28s} {result.status}: no schedule")
            continue
        if not info.exact:
            # Exact solvers place tasks on a discretized grid whose
            # sub-microsecond slack the strict validator rejects.
            result.schedule.validate()
        print(
            f"  {name:28s} io makespan = {result.makespan:7.3f} "
            f"({result.wall_time * 1e3:.1f} ms)"
        )
        if best is None or result.makespan < best.io_makespan:
            best_name, best = name, result.schedule
    if args.ilp and "ILP" not in names:
        result = solve(
            instance,
            "ILP",
            tracer=tracer,
            time_limit=30.0,
            engine=args.engine,
        )
        value = "-" if result.makespan is None else f"{result.makespan:7.3f}"
        print(f"  {'ILP (' + result.status + ')':28s} io makespan = {value}")
    if best is None:
        _write_trace(tracer, args.trace_out)
        return 1
    print(f"\nbest heuristic: {best_name}")
    print(render_gantt(schedule_to_trace(best)))
    _write_trace(tracer, args.trace_out)
    return 0


def _make_instance(args):
    from repro.core import Interval, Job, ProblemInstance

    if args.instance == "figure1":
        return ProblemInstance(
            begin=0.0,
            end=12.0,
            jobs=(
                Job(0, 1.0, 2.0),
                Job(1, 2.0, 1.0),
                Job(2, 2.0, 2.0),
                Job(3, 3.0, 2.0),
            ),
            main_obstacles=(Interval(3.0, 4.0), Interval(6.0, 7.0)),
            background_obstacles=(Interval(4.0, 5.0),),
        )
    rng = np.random.default_rng(args.seed)
    from repro.core import Interval, Job, ProblemInstance

    length = 20.0

    def obstacles(count):
        points = np.sort(rng.uniform(0, length, 2 * count))
        return tuple(
            Interval(float(points[2 * i]), float(points[2 * i + 1]))
            for i in range(count)
        )

    jobs = tuple(
        Job(i, float(rng.uniform(0.2, 2.0)), float(rng.uniform(0.2, 2.0)))
        for i in range(args.jobs)
    )
    return ProblemInstance(
        begin=0.0,
        end=length,
        jobs=jobs,
        main_obstacles=obstacles(2),
        background_obstacles=obstacles(2),
    )


def _cmd_campaign(args) -> int:
    from repro.durability import JournalError
    from repro.engines import (
        SOLUTIONS,
        CampaignSpec,
        EngineError,
        run_campaign,
    )
    from repro.framework import format_table, write_campaign_report

    if args.journal and args.resume:
        print(
            "error: --journal and --resume are mutually exclusive "
            "(--resume appends to the journal it resumes)",
            file=sys.stderr,
        )
        return 2
    if args.journal and args.solution == "all":
        print(
            "error: --journal records a single campaign; pick one "
            "--solution (baseline, previous, or ours)",
            file=sys.stderr,
        )
        return 2

    def _task_deadline(args):
        # `--task-deadline 0` is the CLI spelling of "no deadline".
        return args.task_deadline if args.task_deadline > 0 else None

    spec_data = None
    if args.faults and not args.resume:
        from repro.resilience import load_spec_data

        try:
            spec_data = load_spec_data(args.faults)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    tracer = _make_tracer(args)

    def on_resume(journal):
        header = journal.header
        print(
            f"resuming {header['solution']} campaign from "
            f"{args.resume}: {journal.committed_iterations}/"
            f"{header['iterations']} iterations already committed"
        )

    runs = []
    try:
        if args.resume:
            # Every campaign parameter comes from the journal header so
            # the resumed run re-executes exactly what the crashed run
            # planned; only the (unjournalled) data-plane knobs are ours.
            data_spec = CampaignSpec(
                data_dir=args.data_out,
                data_edge=args.data_edge,
                workers=args.workers,
                task_deadline_s=_task_deadline(args),
                max_task_retries=args.max_task_retries,
                speculative_frac=args.speculative_frac,
            )
            runs.append(
                run_campaign(
                    data_spec,
                    resume_path=args.resume,
                    tracer=tracer,
                    on_resume=on_resume,
                )
            )
        else:
            solutions = (
                SOLUTIONS
                if args.solution == "all"
                else (args.solution,)
            )
            for name in solutions:
                spec = CampaignSpec(
                    app=args.app,
                    nodes=args.nodes,
                    ppn=args.ppn,
                    iterations=args.iterations,
                    solution=name,
                    seed=args.seed,
                    engine=args.engine,
                    faults=spec_data,
                    data_dir=args.data_out,
                    data_edge=args.data_edge,
                    workers=args.workers,
                    task_deadline_s=_task_deadline(args),
                    max_task_retries=args.max_task_retries,
                    speculative_frac=args.speculative_frac,
                )
                runs.append(
                    run_campaign(
                        spec,
                        journal_path=(
                            args.journal
                            if name == args.solution
                            else None
                        ),
                        tracer=tracer,
                    )
                )
    except (OSError, ValueError, JournalError, EngineError) as exc:
        for run in runs:
            run.close()
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rows = []
    reports = []
    for run in runs:
        result = run.result
        rows.append(
            (
                result.solution,
                f"{result.mean_relative_overhead * 100:.1f}%",
                f"{result.total_time:.1f}s",
            )
        )
        if result.resilience is not None:
            reports.append((result.solution, result.resilience))
    print(
        format_table(
            rows, headers=("solution", "I/O overhead", "total time")
        )
    )
    for run in runs:
        if run.data is not None:
            data = run.data
            print(
                f"\ndata plane [{run.result.solution}/{run.engine}]: "
                f"{data.num_blocks} blocks, "
                f"{data.raw_bytes / 2**20:.2f} MiB -> "
                f"{data.compressed_bytes / 2**20:.2f} MiB "
                f"(ratio {data.compression_ratio:.1f}x), "
                f"dump wall {data.dump_wall_s:.2f}s, "
                f"{data.workers} worker(s)"
            )
            sup = data.supervisor
            if sup is not None and sup.recovered:
                print(
                    f"supervisor [{run.result.solution}]: "
                    f"{sup.attempts} attempts for {sup.tasks} tasks, "
                    f"{sup.retries} retries, "
                    f"{sup.deadline_misses} deadline misses, "
                    f"{sup.worker_deaths} worker deaths, "
                    f"{sup.worker_errors} worker errors, "
                    f"{sup.speculative_launches} speculative "
                    f"({sup.speculative_wins} won), "
                    f"{len(sup.fallback_ranks)} serial fallbacks"
                )
    for name, report in reports:
        print(f"\nresilience [{name}]:")
        print(report.format())
    final = runs[-1] if runs else None
    if args.report_out and final is not None:
        before_commit = None
        if final.journal is not None:
            # The "report" crash point: die after the temp file is
            # durable but before the rename publishes it.
            def before_commit(j=final.journal):
                j.maybe_crash("report", -1)

        write_campaign_report(
            args.report_out, final.result, before_commit=before_commit
        )
        print(f"report -> {args.report_out}")
    for run in runs:
        run.close()
    _write_trace(tracer, args.trace_out)
    return 0


def _cmd_serve(args) -> int:
    if args.supervised:
        return _cmd_serve_supervised(args)

    from repro.service import SchedulingService, ServiceConfig, serve_forever

    tracer = _make_tracer(args)
    try:
        config = ServiceConfig(
            workers=args.workers,
            max_queue=args.max_queue,
            max_batch=args.max_batch,
            batch_window_s=args.batch_window,
            cache_size=args.cache_size,
            cache_dir=args.cache_dir,
            quota_rate=args.quota_rate,
            quota_burst=args.quota_burst,
            ledger_path=args.ledger,
            drain_deadline_s=args.drain_deadline,
            breaker_threshold=args.breaker_threshold,
            breaker_window=args.breaker_window,
            breaker_cooldown_s=args.breaker_cooldown,
        )
        service = SchedulingService(config, tracer=tracer)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # Replay admitted-but-unanswered requests from the ledger *before*
    # the socket opens: a restarted server converges to the same
    # memoized state as an uninterrupted one, then accepts traffic.
    if service.ledger is not None:
        recovered = service.recover()
        if recovered["replayed"]:
            print(
                f"repro service recovered {recovered['replayed']} "
                f"request(s) from the ledger "
                f"({recovered['solve']} solve, "
                f"{recovered['campaign']} campaign, "
                f"{recovered['failed']} failed)",
                flush=True,
            )

    def on_bound(host, port):
        print(f"repro service listening on http://{host}:{port}", flush=True)
        print(
            f"  workers={config.workers} cache={config.cache_size}"
            f"{' (persistent)' if config.cache_dir else ''} "
            f"quota={config.quota_rate:g}/s burst={config.quota_burst:g}"
            f"{' ledger=' + config.ledger_path if config.ledger_path else ''}",
            flush=True,
        )

    try:
        serve_forever(
            service,
            host=args.host,
            port=args.port,
            on_bound=on_bound,
            install_signal_handlers=True,
            heartbeat_path=args.heartbeat_file,
            heartbeat_interval_s=args.heartbeat_interval,
        )
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        # Signal-triggered exits land here too: always drain.
        service.shutdown()
    print("repro service drained and stopped")
    _write_trace(tracer, args.trace_out)
    return 0


def _cmd_serve_supervised(args) -> int:
    """Run the server as a watchdog-supervised child process."""
    import os
    import signal as signal_module
    import tempfile

    from repro.resilience import RetryPolicy
    from repro.service import Watchdog

    heartbeat = args.heartbeat_file
    if heartbeat is None:
        heartbeat = os.path.join(
            tempfile.gettempdir(), f"repro-serve-heartbeat-{os.getpid()}"
        )
    # The child runs the exact same serve command minus --supervised,
    # plus the heartbeat file the watchdog will watch.
    child_argv = [
        sys.executable,
        "-m",
        "repro",
        *[a for a in sys.argv[1:] if a != "--supervised"],
    ]
    if args.heartbeat_file is None:
        child_argv += ["--heartbeat-file", heartbeat]
    watchdog = Watchdog(
        child_argv,
        heartbeat_path=heartbeat,
        host=args.host,
        port=args.port if args.port != 0 else None,
        hang_timeout_s=args.hang_timeout,
        max_restarts=args.max_restarts,
        backoff=RetryPolicy(
            max_attempts=max(args.max_restarts, 1) + 1,
            base_backoff_s=args.restart_backoff,
            backoff_multiplier=2.0,
        ),
    )
    for signum in (signal_module.SIGINT, signal_module.SIGTERM):
        signal_module.signal(
            signum, lambda *_: watchdog.request_stop()
        )
    return watchdog.run()


def _cmd_submit(args) -> int:
    import json as json_module

    from repro.core import instance_json_dict
    from repro.resilience import RetryPolicy
    from repro.service import ServiceClient, ServiceUnavailableError

    retry = None
    if not args.no_retry and args.retries > 0:
        retry = RetryPolicy(
            max_attempts=args.retries,
            base_backoff_s=0.2,
            backoff_multiplier=2.0,
            deadline_s=args.retry_deadline,
        )
    client = ServiceClient(
        args.host, args.port, timeout=args.timeout, retry=retry
    )
    try:
        if args.submit_command == "solve":
            instance = _make_instance(args)
            payload = {
                "instance": instance_json_dict(instance),
                "engine": args.engine,
                "tenant": args.tenant,
                "priority": args.priority,
            }
            if args.algorithm is not None:
                payload["algorithm"] = args.algorithm
            if args.time_limit is not None:
                payload["time_limit"] = args.time_limit
            if args.deadline is not None:
                payload["deadline_s"] = args.deadline
            if args.no_cache:
                payload["cache"] = False
            status, body = client.solve(payload)
            if status == 200:
                solution = body["solution"]
                timing = body.get("timing", {})
                print(
                    f"{solution['algorithm']}: io makespan = "
                    f"{solution['makespan']:.3f} "
                    f"[{body['cache']}, key {body['key']}]"
                )
                if timing:
                    print(
                        f"  queue {timing['queue_wait_s'] * 1e3:.2f} ms, "
                        f"solve {timing['solve_s'] * 1e3:.2f} ms, "
                        f"batch of {timing['batch_size']}"
                    )
                return 0
        elif args.submit_command == "campaign":
            payload = {
                "app": args.app,
                "nodes": args.nodes,
                "ppn": args.ppn,
                "iterations": args.iterations,
                "solution": args.solution,
                "seed": args.seed,
                "engine": args.engine,
                "tenant": args.tenant,
            }
            if args.journal is not None:
                payload["journal"] = args.journal
            status, body = client.campaign(payload)
            if status == 200:
                campaign = body["campaign"]
                print(
                    f"{campaign['solution']}: "
                    f"{campaign['iterations']} iterations, "
                    f"I/O overhead "
                    f"{campaign['mean_relative_overhead'] * 100:.1f}%, "
                    f"total {campaign['total_time']:.1f}s "
                    f"(wall {campaign['wall_time_s']:.2f}s, "
                    f"engine {campaign['engine']})"
                )
                if campaign.get("journal"):
                    print(f"  journal -> {campaign['journal']}")
                return 0
        elif args.submit_command in ("status", "health"):
            status, body = getattr(client, args.submit_command)()
            print(json_module.dumps(body, indent=2, sort_keys=True))
            return 0 if status == 200 else 1
        else:  # shutdown
            status, body = client.shutdown()
            print("service draining" if status == 200 else f"HTTP {status}")
            return 0 if status == 200 else 1
    except ServiceUnavailableError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # A structured non-200 reply (rejection / bad request / failure).
    error = body.get("error", {})
    code = error.get("code", f"http_{status}")
    message = error.get("message", "request failed")
    line = f"rejected [{code}]: {message}"
    if "retry_after_s" in error:
        line += f" (retry after {error['retry_after_s']:g}s)"
    print(line, file=sys.stderr)
    return 3


def _cmd_engines(args) -> int:
    from repro.engines import get_engine, list_engines
    from repro.framework import format_table

    rows = []
    for name in list_engines():
        cls = get_engine(name)
        doc = (cls.__doc__ or "").strip().splitlines()
        rows.append((name, cls.__name__, doc[0] if doc else ""))
    print(
        format_table(rows, headers=("engine", "class", "description"))
    )
    return 0


def _cmd_verify(args) -> int:
    from repro.durability import verify_path

    try:
        report = verify_path(args.target, kind=args.kind)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.format())
    return 0 if report.ok else 1


def _cmd_compress(args) -> int:
    from repro.apps import NyxModel
    from repro.compression import (
        SZCompressor,
        ZFPCompressor,
        max_abs_error,
        psnr,
    )

    app = NyxModel(seed=args.seed, partition_shape=(args.size,) * 3)
    field = app.generate_field(args.field, rank=0, iteration=5)
    print(f"field: {args.field} {field.shape} {field.dtype}")
    if args.codec == "sz":
        bound = (
            args.error_bound
            if args.error_bound is not None
            else app.field(args.field).error_bound
        )
        from repro.compression import available_backends

        try:
            compressor = SZCompressor(backend=args.backend)
        except ValueError:
            known = ", ".join(available_backends())
            print(
                f"error: unknown codec backend {args.backend!r} "
                f"(available: {known})"
            )
            return 2
        block = compressor.compress(field, bound)
        recon = compressor.decompress(block)
        print(
            f"codec: SZ-style, absolute error bound {bound:g}, "
            f"{compressor.backend.name} backend "
            f"(stream format {block.codec})"
        )
        print(f"compression ratio: {block.compression_ratio:.1f}x")
    else:
        codec = ZFPCompressor(args.rate)
        stream = codec.compress(field)
        recon = codec.decompress(stream)
        print(f"codec: ZFP-style, fixed rate {args.rate} bits/value")
        print(f"compression ratio: {stream.compression_ratio:.1f}x")
    print(f"max abs error: {max_abs_error(field, recon):.4g}")
    print(f"PSNR: {psnr(field, recon):.1f} dB")
    return 0


def _cmd_snapshot(args) -> int:
    import numpy as np

    from repro.apps import HaccModel, NyxModel, WarpXModel
    from repro.compression import max_abs_error
    from repro.framework import load_snapshot, save_snapshot

    app_class = {"nyx": NyxModel, "warpx": WarpXModel, "hacc": HaccModel}[
        args.app
    ]
    shape = (
        (args.size**3,) if args.app == "hacc" else (args.size,) * 3
    )
    kwargs = (
        {"particles_per_rank": shape[0]}
        if args.app == "hacc"
        else {"partition_shape": shape}
    )
    app = app_class(seed=args.seed, **kwargs)
    specs = list(app.fields[: args.fields])
    fields = {
        spec.name: app.generate_field(spec.name, 0, 5) for spec in specs
    }
    bounds = {spec.name: spec.error_bound for spec in specs}
    stats = save_snapshot(
        args.output,
        fields,
        error_bounds=bounds,
        block_bytes=max(32 * 1024, fields[specs[0].name].nbytes // 8),
        layout=args.layout,
    )
    print(
        f"wrote {stats.num_blocks} blocks, "
        f"{stats.compressed_bytes / 2**20:.2f} MiB "
        f"(ratio {stats.compression_ratio:.1f}x, "
        f"{stats.overflow_blocks} overflow) to {args.output}"
    )
    restored = load_snapshot(args.output)
    for name, original in fields.items():
        error = max_abs_error(original, restored[name])
        bound = bounds[name]
        status = "ok" if error <= bound * (1 + 1e-9) else "VIOLATED"
        print(f"  {name:22s} max error {error:.4g} (bound {bound:g}) {status}")
        if status != "ok":
            return 1
    print("snapshot verified")
    return 0


def _bench_select(args):
    """Discover registration modules, then select matching cases."""
    from repro.bench import REGISTRY, discover_benchmarks

    _, errors = discover_benchmarks(args.bench_dir)
    for error in errors:
        print(f"warning: {error}", file=sys.stderr)
    return REGISTRY.select(quick=args.quick, filter=args.filter)


def _cmd_bench(args) -> int:
    return {
        "run": _cmd_bench_run,
        "list": _cmd_bench_list,
        "compare": _cmd_bench_compare,
    }[args.bench_command](args)


def _cmd_bench_list(args) -> int:
    from repro.framework import format_table

    cases = _bench_select(args)
    if not cases:
        print("no bench cases matched", file=sys.stderr)
        return 1
    rows = [
        (
            c.name,
            c.group,
            "yes" if c.quick is not None else "-",
            str(c.warmup),
            str(c.repeats),
            "-" if c.timeout_s is None else f"{c.timeout_s:g}s",
        )
        for c in cases
    ]
    print(
        format_table(
            rows,
            headers=("case", "group", "quick", "warmup", "repeats", "timeout"),
        )
    )
    return 0


def _cmd_bench_run(args) -> int:
    from repro.bench import report_to_document, run_benchmarks, write_document
    from repro.framework import format_table

    cases = _bench_select(args)
    if not cases:
        print("no bench cases matched", file=sys.stderr)
        return 1
    tracer = _make_tracer(args)
    report = run_benchmarks(
        cases,
        quick=args.quick,
        jobs=max(1, args.jobs),
        tracer=tracer,
    )
    rows = []
    for result in report.results:
        if result.stats is None:
            rows.append(
                (result.name, result.group, result.status, "-", "-", "-")
            )
        else:
            s = result.stats
            rows.append(
                (
                    result.name,
                    result.group,
                    result.status,
                    f"{s.median_s * 1e3:.3f} ms",
                    f"{s.mean_s * 1e3:.3f} +/- {s.stdev_s * 1e3:.3f} ms",
                    str(len(s.outliers)),
                )
            )
    print(
        format_table(
            rows,
            headers=("case", "group", "status", "median", "mean", "outliers"),
        )
    )
    suite = "quick" if args.quick else "full"
    out = args.out or f"BENCH_{suite}.json"
    write_document(report_to_document(report, name=suite), out)
    print(
        f"\n{len(report.results)} cases in {report.elapsed_s:.2f}s -> {out}"
    )
    for result in report.failed:
        detail = (result.error or "").strip().splitlines()
        last = detail[-1] if detail else "no detail"
        print(f"{result.status}: {result.name}: {last}", file=sys.stderr)
    _write_trace(tracer, args.trace_out)
    exit_code = 0 if report.ok else 1
    if args.baseline:
        compare_code = _bench_compare_files(
            out, args.baseline, args.threshold
        )
        exit_code = exit_code or compare_code
    return exit_code


def _bench_compare_files(current, baseline, threshold) -> int:
    from repro.bench import SchemaError, compare_documents, load_document
    from repro.bench.baseline import DEFAULT_THRESHOLD

    try:
        current_doc = load_document(current)
        baseline_doc = load_document(baseline)
    except (OSError, SchemaError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    comparison = compare_documents(
        current_doc,
        baseline_doc,
        threshold=DEFAULT_THRESHOLD if threshold is None else threshold,
    )
    print(comparison.format())
    return comparison.exit_code


def _cmd_bench_compare(args) -> int:
    return _bench_compare_files(args.current, args.baseline, args.threshold)


def _cmd_experiments(args) -> int:
    from repro.framework import format_table

    print(
        format_table(
            _EXPERIMENTS, headers=("experiment", "what", "bench")
        )
    )
    print("\nRun all with: pytest benchmarks/ --benchmark-only")
    print("Quick perf suite: python -m repro bench run --quick --jobs 2")
    return 0


if __name__ == "__main__":
    sys.exit(main())
