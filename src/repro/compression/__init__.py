"""Error-bounded lossy compression substrate (SZ-style) with the paper's
three runtime designs: fine-grained blocking, the compressed data buffer,
and the shared Huffman tree."""

from .autotuner import BlockSizeProfile, profile_block_sizes
from .blocking import BlockSpec, plan_blocks, reassemble_field, slice_field
from .buffer import BufferedBlock, CompressedDataBuffer, WriteUnit
from .huffman import (
    CODEBOOK_KIND_RAW,
    CODEBOOK_KIND_RLE,
    Codebook,
    build_codebook,
    codebook_blob_kind,
    codebook_from_bytes,
    codebook_to_bytes,
    decode,
    encode,
    encode_reference,
    estimate_encoded_bits,
    pack_bits,
    unpack_bits,
)
from .kernels import (
    DEFAULT_CHUNK_SIZE,
    FORMAT_DEFLATE,
    FORMAT_HUFFMAN,
    FORMAT_ZLIB,
    CodecBackend,
    EncodedStream,
    available_backends,
    backend_for_format,
    get_backend,
    register_backend,
    resolve_backend,
)
from .lossless import lossless_compress, lossless_decompress
from .metrics import bit_rate, compression_ratio, max_abs_error, nrmse, psnr
from .predictors import lorenzo_forward, lorenzo_inverse
from .quantizer import (
    DEFAULT_RADIUS,
    QuantizedDeltas,
    decode_codes,
    dequantize,
    encode_codes,
    prequantize,
)
from .ratio_model import (
    OUTLIER_BITS,
    CompressionThroughputModel,
    RatioEstimate,
    RatioModel,
)
from .shared_tree import SharedTreeManager, degradation_ratio
from .sz import CompressedBlock, SZCompressor
from .zfp import ZFPBlockStream, ZFPCompressor

__all__ = [
    "BlockSpec",
    "BlockSizeProfile",
    "profile_block_sizes",
    "plan_blocks",
    "slice_field",
    "reassemble_field",
    "BufferedBlock",
    "CompressedDataBuffer",
    "WriteUnit",
    "Codebook",
    "build_codebook",
    "codebook_to_bytes",
    "codebook_from_bytes",
    "codebook_blob_kind",
    "CODEBOOK_KIND_RAW",
    "CODEBOOK_KIND_RLE",
    "encode",
    "encode_reference",
    "decode",
    "estimate_encoded_bits",
    "pack_bits",
    "unpack_bits",
    "lossless_compress",
    "lossless_decompress",
    "compression_ratio",
    "bit_rate",
    "psnr",
    "max_abs_error",
    "nrmse",
    "lorenzo_forward",
    "lorenzo_inverse",
    "DEFAULT_RADIUS",
    "QuantizedDeltas",
    "prequantize",
    "dequantize",
    "encode_codes",
    "decode_codes",
    "SharedTreeManager",
    "degradation_ratio",
    "DEFAULT_CHUNK_SIZE",
    "FORMAT_HUFFMAN",
    "FORMAT_DEFLATE",
    "FORMAT_ZLIB",
    "CodecBackend",
    "EncodedStream",
    "available_backends",
    "backend_for_format",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "CompressedBlock",
    "SZCompressor",
    "ZFPCompressor",
    "ZFPBlockStream",
    "RatioModel",
    "RatioEstimate",
    "CompressionThroughputModel",
    "OUTLIER_BITS",
]
