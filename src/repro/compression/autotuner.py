"""Offline block-size profiling (Section 4.1's methodology).

The paper: "In practice, we use offline profiling to evaluate compression
and I/O performance on a given system to identify the point at which
compression and I/O throughput start to deteriorate with small data block
sizes.  This analysis informs our choice to select the smallest available
block size (>= 8 MB)."

:func:`profile_block_sizes` reproduces that procedure: it measures *this
machine's* real compression throughput per candidate block size on a
sample field (amortizing per-block constant costs) and combines it with
the I/O model's small-write efficiency, then picks the smallest block
size whose combined efficiency is within ``tolerance`` of the best —
smallest because more blocks give the scheduler more packing freedom.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..io.throughput import IoThroughputModel
from .huffman import Codebook
from .sz import SZCompressor

__all__ = ["BlockSizeProfile", "profile_block_sizes"]


@dataclass(frozen=True)
class BlockSizeProfile:
    """Measured efficiency of one candidate block size."""

    block_bytes: int
    compression_throughput: float  # bytes/s, measured on this machine
    io_efficiency: float  # achieved fraction of streaming bandwidth
    combined_efficiency: float  # product, normalized to the best


@dataclass(frozen=True)
class _ProfileResult:
    profiles: tuple[BlockSizeProfile, ...]
    recommended_block_bytes: int


def profile_block_sizes(
    sample_field: np.ndarray,
    error_bound: float,
    candidate_bytes: tuple[int, ...] = (
        64 * 1024,
        256 * 1024,
        1024 * 1024,
        4 * 1024 * 1024,
    ),
    compressor: SZCompressor | None = None,
    shared_codebook: Codebook | None = None,
    io_model: IoThroughputModel | None = None,
    predicted_ratio: float = 16.0,
    tolerance: float = 0.10,
    repeats: int = 2,
) -> _ProfileResult:
    """Profile candidate block sizes and recommend one.

    Args:
        sample_field: representative data (a slab of one field).
        error_bound: the bound the application will use.
        candidate_bytes: block sizes to try; each must not exceed the
            sample's size.
        compressor: the SZ-style compressor being deployed.
        shared_codebook: profile with the shared tree when the deployment
            uses one (per-block tree builds dominate small blocks
            otherwise, which is part of what this measures).
        io_model: write-time model used for the I/O efficiency term.
        predicted_ratio: expected compression ratio (determines the
            compressed write size per block).
        tolerance: pick the smallest size within this fraction of the
            best combined efficiency.
        repeats: timing repetitions per candidate (min is kept).

    Returns:
        An object with per-candidate profiles and the recommendation.
    """
    if sample_field.size == 0:
        raise ValueError("sample field is empty")
    compressor = compressor or SZCompressor()
    io_model = io_model or IoThroughputModel()
    flat = np.ascontiguousarray(sample_field).reshape(-1)
    itemsize = flat.itemsize

    profiles: list[BlockSizeProfile] = []
    for block_bytes in sorted(candidate_bytes):
        values_per_block = max(1, block_bytes // itemsize)
        if values_per_block > flat.size:
            raise ValueError(
                f"candidate {block_bytes} exceeds the sample size"
            )
        block = flat[:values_per_block]
        best_elapsed = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            compressor.compress(
                block, error_bound, shared_codebook=shared_codebook
            )
            best_elapsed = min(
                best_elapsed, time.perf_counter() - t0
            )
        throughput = block.nbytes / max(best_elapsed, 1e-9)
        compressed = max(1, int(block_bytes / predicted_ratio))
        io_eff = io_model.effective_throughput(compressed) / (
            io_model.per_process_bandwidth
        )
        profiles.append(
            BlockSizeProfile(
                block_bytes=block_bytes,
                compression_throughput=throughput,
                io_efficiency=io_eff,
                combined_efficiency=0.0,  # filled after normalization
            )
        )

    raw = [
        p.compression_throughput * p.io_efficiency for p in profiles
    ]
    best = max(raw)
    profiles = [
        BlockSizeProfile(
            block_bytes=p.block_bytes,
            compression_throughput=p.compression_throughput,
            io_efficiency=p.io_efficiency,
            combined_efficiency=score / best,
        )
        for p, score in zip(profiles, raw)
    ]
    acceptable = [
        p
        for p in profiles
        if p.combined_efficiency >= 1.0 - tolerance
    ]
    recommended = min(acceptable, key=lambda p: p.block_bytes)
    return _ProfileResult(
        profiles=tuple(profiles),
        recommended_block_bytes=recommended.block_bytes,
    )
