"""Fine-grained compression: slicing data fields into small blocks.

Section 4.1: applications expose only 6-12 fields, far too coarse for the
scheduler to weave tasks into computation gaps, so each field is sliced
into blocks of ~8-16 MB along its slowest-varying axis, "ensuring an even
division of each data field".  Each block becomes one job (compression
task + I/O task).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlockSpec", "plan_blocks", "slice_field", "reassemble_field"]


@dataclass(frozen=True)
class BlockSpec:
    """Where one block sits inside its field."""

    field_name: str
    block_index: int
    start_row: int  # along axis 0
    end_row: int
    field_shape: tuple[int, ...]

    @property
    def shape(self) -> tuple[int, ...]:
        return (self.end_row - self.start_row, *self.field_shape[1:])

    def num_values(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64))


def plan_blocks(
    field_name: str,
    field_shape: tuple[int, ...],
    itemsize: int,
    target_block_bytes: int,
) -> list[BlockSpec]:
    """Plan an even slicing of a field into ~``target_block_bytes`` blocks.

    The number of blocks is the divisor of ``field_shape[0]`` whose block
    size is closest to the target (so every block has identical shape, the
    paper's "evenly divided" requirement).  A field smaller than the
    target stays whole.
    """
    if target_block_bytes <= 0:
        raise ValueError("target_block_bytes must be positive")
    if not field_shape:
        raise ValueError("field must have at least one dimension")
    rows = field_shape[0]
    row_bytes = itemsize * int(np.prod(field_shape[1:], dtype=np.int64))
    field_bytes = rows * row_bytes
    if field_bytes <= target_block_bytes or rows == 1:
        return [
            BlockSpec(field_name, 0, 0, rows, tuple(field_shape))
        ]
    ideal = max(1, round(field_bytes / target_block_bytes))
    divisors = [d for d in range(1, rows + 1) if rows % d == 0]
    num_blocks = min(divisors, key=lambda d: abs(d - ideal))
    step = rows // num_blocks
    return [
        BlockSpec(
            field_name,
            i,
            i * step,
            (i + 1) * step,
            tuple(field_shape),
        )
        for i in range(num_blocks)
    ]


def slice_field(field: np.ndarray, spec: BlockSpec) -> np.ndarray:
    """The view of ``field`` that ``spec`` describes."""
    if field.shape != spec.field_shape:
        raise ValueError(
            f"field shape {field.shape} does not match spec "
            f"{spec.field_shape}"
        )
    return field[spec.start_row : spec.end_row]


def reassemble_field(
    blocks: list[tuple[BlockSpec, np.ndarray]]
) -> np.ndarray:
    """Rebuild a full field from its (spec, data) blocks."""
    if not blocks:
        raise ValueError("no blocks to reassemble")
    field_shape = blocks[0][0].field_shape
    dtype = blocks[0][1].dtype
    field = np.empty(field_shape, dtype=dtype)
    covered = np.zeros(field_shape[0], dtype=bool)
    for spec, data in blocks:
        if spec.field_shape != field_shape:
            raise ValueError("blocks come from different fields")
        if data.shape != spec.shape:
            raise ValueError(
                f"block data shape {data.shape} != spec shape {spec.shape}"
            )
        field[spec.start_row : spec.end_row] = data
        covered[spec.start_row : spec.end_row] = True
    if not covered.all():
        raise ValueError("blocks do not cover the whole field")
    return field
