"""Compressed data buffer (Section 4.2).

Compressed blocks can shrink below 1 MB, and sub-megabyte writes crater
parallel-filesystem throughput.  The buffer consolidates consecutive
compressed blocks into *write units* of up to ``max_bytes`` (the paper
settles on 20 MB after Figure 5): blocks are appended in completion order
and a unit is emitted as soon as adding the next block would overflow it.
Each emitted unit becomes a single I/O task.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..durability.checksum import crc32c_combine

__all__ = ["BufferedBlock", "WriteUnit", "CompressedDataBuffer"]


@dataclass(frozen=True)
class BufferedBlock:
    """One compressed block waiting in the buffer.

    ``crc32c`` carries the block's compression-time checksum through
    consolidation (None when the producer did not checksum).
    """

    block_id: int
    nbytes: int
    crc32c: int | None = None


@dataclass(frozen=True)
class WriteUnit:
    """A consolidated group of blocks written with one I/O operation."""

    blocks: tuple[BufferedBlock, ...]

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self.blocks)

    @property
    def block_ids(self) -> tuple[int, ...]:
        return tuple(b.block_id for b in self.blocks)

    @property
    def crc32c(self) -> int | None:
        """Checksum of the unit's concatenated payload, derived from the
        blocks' compression-time checksums via CRC combination — the
        payload bytes are never re-read.  None unless every block
        carries a checksum."""
        if not self.blocks or any(b.crc32c is None for b in self.blocks):
            return None
        total = self.blocks[0].crc32c
        for block in self.blocks[1:]:
            total = crc32c_combine(total, block.crc32c, block.nbytes)
        return total


@dataclass
class CompressedDataBuffer:
    """Greedy consolidation of compressed blocks into write units.

    ``max_bytes <= 0`` disables buffering: every block becomes its own
    write unit immediately (the Figure 5 "no buffer" baseline).
    """

    max_bytes: int
    _pending: list[BufferedBlock] = field(default_factory=list)
    _pending_bytes: int = 0
    units_emitted: int = 0
    blocks_seen: int = 0

    def append(
        self, block_id: int, nbytes: int, crc32c: int | None = None
    ) -> list[WriteUnit]:
        """Add a compressed block; return any write units now full.

        A block larger than ``max_bytes`` flushes the pending unit and is
        emitted alone (it cannot be consolidated further).
        """
        if nbytes < 0:
            raise ValueError("block size must be non-negative")
        self.blocks_seen += 1
        block = BufferedBlock(
            block_id=block_id, nbytes=nbytes, crc32c=crc32c
        )
        if self.max_bytes <= 0:
            self.units_emitted += 1
            return [WriteUnit(blocks=(block,))]

        emitted: list[WriteUnit] = []
        if nbytes >= self.max_bytes:
            emitted.extend(self.flush())
            emitted.append(WriteUnit(blocks=(block,)))
            self.units_emitted += 1
            return emitted

        if self._pending_bytes + nbytes > self.max_bytes:
            emitted.extend(self.flush())
        self._pending.append(block)
        self._pending_bytes += nbytes
        return emitted

    def flush(self) -> list[WriteUnit]:
        """Emit whatever is pending (end of the dump)."""
        if not self._pending:
            return []
        unit = WriteUnit(blocks=tuple(self._pending))
        self._pending = []
        self._pending_bytes = 0
        self.units_emitted += 1
        return [unit]

    @property
    def pending_bytes(self) -> int:
        return self._pending_bytes
