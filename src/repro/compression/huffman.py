"""Canonical Huffman coding over the quantization-code alphabet.

Encoding is vectorized with numpy and runs in bounded slabs: per-symbol
code/length gathers, a cumulative-sum bit placement that ORs each code's
(up to 25) bits into a preallocated output buffer through at most four
``np.bincount`` passes per slab.  Working memory is a few arrays of
``ENCODE_SLAB`` elements regardless of stream length — the earlier
implementation materialized a dense ``(n, max_len)`` bit matrix (10-15x
the symbol array, transiently) before ``np.packbits``.
:func:`encode_reference` is the bit-identical per-symbol Python loop the
vectorized path is tested against.

Decoding walks the bit stream with a canonical first-code table, reading
bits through a small integer buffer — adequate for the block sizes the
experiments use; the chunk-parallel batch decoder lives in
:mod:`repro.compression.kernels.vectorized`.

Codebooks are canonical, so they serialize as just the per-symbol code
*lengths* — by default in a compact run-length form
(:data:`CODEBOOK_KIND_RLE`); the flat legacy layout
(:data:`CODEBOOK_KIND_RAW`) still reads.  Canonical books are also what
makes the shared-tree comparison in Figure 6 meaningful: two iterations
with similar quantization-code histograms yield nearly identical length
vectors, hence nearly identical bit costs.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Codebook",
    "build_codebook",
    "encode",
    "encode_reference",
    "encode_with_offsets",
    "pack_bits",
    "unpack_bits",
    "decode",
    "dense_decode_tables",
    "codebook_to_bytes",
    "codebook_from_bytes",
    "codebook_blob_kind",
    "estimate_encoded_bits",
    "TABLE_DECODE_MAX_LEN",
    "ENCODE_SLAB",
    "CODEBOOK_KIND_RAW",
    "CODEBOOK_KIND_RLE",
]


@dataclass(frozen=True)
class Codebook:
    """A canonical Huffman codebook for symbols ``0..num_symbols-1``.

    ``lengths[s] == 0`` means symbol ``s`` has no code (it never occurred
    in the training histogram); encoders must reroute such symbols (the SZ
    layer converts them to outliers before encoding).
    """

    lengths: np.ndarray  # uint8, per-symbol code length (0 = uncoded)
    codes: np.ndarray  # uint64, canonical code values (MSB-first)

    @property
    def num_symbols(self) -> int:
        return int(self.lengths.size)

    @property
    def max_length(self) -> int:
        return int(self.lengths.max(initial=0))

    def can_encode(self, symbols: np.ndarray) -> np.ndarray:
        """Boolean mask of symbols this codebook has codes for."""
        return self.lengths[symbols] > 0


def build_codebook(
    frequencies: np.ndarray,
    force_symbols: tuple[int, ...] = (),
    max_length: int | None = None,
) -> Codebook:
    """Build a canonical codebook from a symbol histogram.

    Args:
        frequencies: occurrence counts per symbol (any integer dtype).
        force_symbols: symbols guaranteed a code even with zero observed
            frequency — the SZ layer forces the outlier sentinel so a
            shared tree can always escape unseen values.
        max_length: optional bound on code length.  When the natural
            Huffman tree is deeper (pathological skew), lengths are
            recomputed with the package-merge algorithm, which yields the
            optimal code under the constraint.  Bounds the decoder's
            table depth at a (usually negligible) ratio cost.
    """
    freqs = np.asarray(frequencies, dtype=np.int64).copy()
    if freqs.ndim != 1:
        raise ValueError("frequencies must be one-dimensional")
    for symbol in force_symbols:
        if freqs[symbol] == 0:
            freqs[symbol] = 1

    present = np.flatnonzero(freqs > 0)
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    if present.size == 1:
        lengths[present[0]] = 1
    elif present.size > 1:
        natural = _code_lengths(freqs[present])
        if max_length is not None and int(natural.max()) > max_length:
            if 2**max_length < present.size:
                raise ValueError(
                    f"max_length {max_length} cannot encode "
                    f"{present.size} symbols"
                )
            natural = _package_merge(freqs[present], max_length)
        lengths[present] = natural
    codes = _canonical_codes(lengths)
    return Codebook(lengths=lengths, codes=codes)


def _package_merge(freqs: np.ndarray, max_length: int) -> np.ndarray:
    """Optimal length-limited code lengths (package-merge, Larmore-
    Hirschberg 1990).

    Works on the ``n`` present symbols; returns one length per symbol,
    each in ``1..max_length``, satisfying Kraft equality.
    """
    n = freqs.size
    order = np.argsort(freqs, kind="stable")
    sorted_freqs = freqs[order].astype(np.int64)

    # Items are (weight, coverage): coverage[i] counts how many times
    # sorted symbol i participates.  Each of the max_length packaging
    # rounds merges the previous round's packages with fresh leaves and
    # pairs them up; a symbol's final code length equals how many of the
    # cheapest 2(n-1) items of the last round's merged list cover it.
    level: list[tuple[int, np.ndarray]] = []
    merged: list[tuple[int, np.ndarray]] = []
    for _ in range(max_length):
        leaves = [
            (int(sorted_freqs[i]), _unit(n, i)) for i in range(n)
        ]
        merged = sorted(level + leaves, key=lambda item: item[0])
        level = [
            (
                merged[2 * i][0] + merged[2 * i + 1][0],
                merged[2 * i][1] + merged[2 * i + 1][1],
            )
            for i in range(len(merged) // 2)
        ]
    chosen = np.zeros(n, dtype=np.int64)
    for _, coverage in merged[: 2 * (n - 1)]:
        chosen += coverage

    lengths = np.zeros(n, dtype=np.uint8)
    lengths[order] = chosen.astype(np.uint8)
    return lengths


def _unit(n: int, index: int) -> np.ndarray:
    unit = np.zeros(n, dtype=np.int64)
    unit[index] = 1
    return unit


def _code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Huffman code lengths for strictly positive frequencies."""
    # Heap items: (frequency, tiebreak, node_id).  Internal nodes are
    # appended after the leaves; parent[] lets us read depths afterwards.
    n = freqs.size
    parent = [-1] * (2 * n - 1)
    heap = [(int(freqs[i]), i, i) for i in range(n)]
    heapq.heapify(heap)
    next_id = n
    while len(heap) > 1:
        fa, _, a = heapq.heappop(heap)
        fb, _, b = heapq.heappop(heap)
        parent[a] = next_id
        parent[b] = next_id
        heapq.heappush(heap, (fa + fb, next_id, next_id))
        next_id += 1
    depths = np.zeros(n, dtype=np.uint8)
    for leaf in range(n):
        d = 0
        node = leaf
        while parent[node] != -1:
            node = parent[node]
            d += 1
        depths[leaf] = d
    return depths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    codes = np.zeros(lengths.size, dtype=np.uint64)
    order = sorted(
        (int(s) for s in np.flatnonzero(lengths > 0)),
        key=lambda s: (int(lengths[s]), s),
    )
    code = 0
    prev_len = 0
    for symbol in order:
        length = int(lengths[symbol])
        code <<= length - prev_len
        codes[symbol] = code
        code += 1
        prev_len = length
    return codes


#: Symbols per encoding slab.  Bounds the encoder's transient working
#: memory to a few ``ENCODE_SLAB``-element arrays (~16 MB) no matter how
#: long the symbol stream is.
ENCODE_SLAB = 1 << 18

#: Widest value the 32-bit placement window can hold: the value's bits
#: plus up to 7 alignment bits must fit in 4 bytes.
_PACK_MAX_WIDTH = 25


def _place_bits(
    values: np.ndarray,
    widths: np.ndarray,
    starts: np.ndarray,
    out: np.ndarray,
) -> None:
    """OR each value's ``width`` low bits into ``out`` (a uint8 buffer),
    MSB-first at absolute bit position ``starts``.

    Core of the vectorized encoder: every value is left-aligned inside a
    4-byte window beginning at its start byte and the whole windows are
    summed per start byte with a single ``np.bincount`` pass.  Bits of
    distinct values never overlap, so the per-byte-position sums equal
    the bitwise OR, every sum stays below 2**32, and float64
    accumulation is exact (windows carry at most 25 significant bits).
    The summed windows are then split into their four byte lanes with
    plain shifted ORs over the (much smaller) output span — the lane
    split costs O(output bytes), not O(values).
    """
    if values.size == 0:
        return
    # Accumulate only over the byte span this call actually touches —
    # bincount's result length must track the slab, not the whole output
    # buffer, or encoding a large stream allocates a stream-sized float64
    # array per call.
    byte0 = starts >> 3
    lo = int(byte0[0])
    span = int(byte0[-1]) - lo + 4
    window = (
        values.astype(np.int64) << (32 - widths - (starts & 7))
    ).astype(np.float64)
    acc = np.bincount(byte0 - lo, weights=window, minlength=span)[:span]
    words = acc.astype(np.uint64)
    # The final value's window may poke past the buffer; those trailing
    # lane bytes are zero by construction, so clamping is lossless.
    hi = min(lo + span, out.size)
    for lane in range(4):
        n_lane = hi - lo - lane
        if n_lane <= 0:
            break
        lane_bytes = (
            (words >> np.uint64(8 * (3 - lane))) & np.uint64(0xFF)
        ).astype(np.uint8)
        np.bitwise_or(
            out[lo + lane : hi], lane_bytes[:n_lane], out=out[lo + lane : hi]
        )


def pack_bits(
    values: np.ndarray, widths: np.ndarray, slab: int = ENCODE_SLAB
) -> tuple[bytes, int]:
    """Pack ``values[i]`` into ``widths[i]`` bits, MSB-first.

    The bit-placement primitive behind :func:`encode` (where the values
    are canonical code words) and the deflate backend's extra-bits
    section.  Zero-width entries contribute nothing.  Widths are capped
    at 25 bits (the 32-bit placement window minus byte alignment).
    """
    values = np.asarray(values).reshape(-1)
    widths = np.asarray(widths, dtype=np.int64).reshape(-1)
    if values.size != widths.size:
        raise ValueError("values and widths must have the same size")
    if widths.size and int(widths.max()) > _PACK_MAX_WIDTH:
        raise ValueError(
            f"pack_bits supports widths up to {_PACK_MAX_WIDTH}, "
            f"got {int(widths.max())}"
        )
    nbits = int(widths.sum())
    out = np.zeros((nbits + 7) // 8, dtype=np.uint8)
    bit_cursor = 0
    for lo in range(0, widths.size, slab):
        w = widths[lo : lo + slab]
        starts = bit_cursor + np.concatenate(
            ([0], np.cumsum(w[:-1]))
        )
        _place_bits(values[lo : lo + slab], w, starts, out)
        bit_cursor += int(w.sum())
    return out.tobytes(), nbits


def unpack_bits(data: bytes, widths: np.ndarray) -> np.ndarray:
    """Invert :func:`pack_bits`: read ``widths[i]`` bits per value.

    Fully vectorized through a 32-bit sliding-window gather; used by the
    deflate backend to read match-length extra bits.
    """
    widths = np.asarray(widths, dtype=np.int64).reshape(-1)
    if widths.size == 0:
        return np.zeros(0, dtype=np.int64)
    if int(widths.max()) > _PACK_MAX_WIDTH:
        raise ValueError(
            f"unpack_bits supports widths up to {_PACK_MAX_WIDTH}, "
            f"got {int(widths.max())}"
        )
    nbits = int(widths.sum())
    if 8 * len(data) < nbits:
        raise ValueError(
            f"corrupt bit stream: {len(data)} bytes cannot hold the "
            f"declared {nbits} bits"
        )
    starts = np.concatenate(([0], np.cumsum(widths[:-1])))
    raw = np.frombuffer(data, dtype=np.uint8)
    padded = np.concatenate([raw, np.zeros(4, dtype=np.uint8)]).astype(
        np.uint64
    )
    w32 = (
        (padded[:-3] << np.uint64(24))
        | (padded[1:-2] << np.uint64(16))
        | (padded[2:-1] << np.uint64(8))
        | padded[3:]
    )
    shift = (32 - widths - (starts & 7)).astype(np.uint64)
    mask = (np.uint64(1) << widths.astype(np.uint64)) - np.uint64(1)
    picked = (w32[starts >> 3] >> shift) & mask
    return picked.astype(np.int64)


def encode(symbols: np.ndarray, codebook: Codebook) -> tuple[bytes, int]:
    """Encode a symbol array; returns (packed bytes, exact bit count).

    Every symbol must have a code (see :meth:`Codebook.can_encode`).
    Vectorized and slab-bounded: peak transient memory is a few
    ``ENCODE_SLAB``-element arrays plus the output buffer, independent of
    the stream length.
    """
    data, nbits, _ = encode_with_offsets(symbols, codebook, chunk_size=0)
    return data, nbits


def encode_with_offsets(
    symbols: np.ndarray,
    codebook: Codebook,
    chunk_size: int,
    slab: int = ENCODE_SLAB,
) -> tuple[bytes, int, np.ndarray]:
    """Encode and (for ``chunk_size > 0``) record per-chunk bit offsets.

    Returns ``(data, nbits, chunk_offsets)`` where ``chunk_offsets[c]``
    is the start bit of symbol ``c * chunk_size`` — the index the
    chunk-parallel decoder needs.  With ``chunk_size == 0`` the offsets
    array is empty.  The stream is identical either way.

    Two slab passes: the first sums bit counts (sizing the output buffer
    exactly), the second places code bits with :func:`_place_bits`.
    """
    flat = np.ascontiguousarray(symbols).reshape(-1)
    if chunk_size:
        # Slabs aligned to chunk boundaries make every chunk start fall
        # inside exactly one slab's local cumsum.
        slab = max(chunk_size, slab - slab % chunk_size)
    if flat.size == 0:
        return b"", 0, np.zeros(0, dtype=np.uint64)
    if codebook.max_length > _PACK_MAX_WIDTH:
        # Pathologically deep book (never produced by the SZ layer, whose
        # books are length-limited): take the reference path.
        data, nbits = encode_reference(flat, codebook)
        offsets = _offsets_reference(flat, codebook, chunk_size)
        return data, nbits, offsets

    # One alphabet-sized histogram both validates the stream (any used
    # symbol without a code) and sizes the output exactly — no second
    # full-stream gather pass.  Accumulated slab-wise: bincount widens
    # its input to int64, so one full-stream call would transiently
    # allocate a stream-sized copy.
    lengths = codebook.lengths
    hist = np.zeros(0, dtype=np.int64)
    for lo in range(0, flat.size, slab):
        part = np.bincount(flat[lo : lo + slab])
        if part.size > hist.size:
            part[: hist.size] += hist
            hist = part
        else:
            hist[: part.size] += part
    m = min(hist.size, lengths.size)
    if hist.size > lengths.size or np.any(
        (hist[:m] > 0) & (lengths[:m] == 0)
    ):
        coded = np.zeros(max(hist.size, lengths.size), dtype=bool)
        coded[: lengths.size] = lengths > 0
        bad = int(flat[np.flatnonzero(~coded[flat])[0]])
        raise ValueError(f"symbol {bad} has no code in this codebook")
    nbits = int((hist[:m] * lengths[:m].astype(np.int64)).sum())

    out = np.zeros((nbits + 7) // 8, dtype=np.uint8)
    num_chunks = -(-flat.size // chunk_size) if chunk_size else 0
    offsets = np.zeros(num_chunks, dtype=np.uint64)

    bit_cursor = 0
    for lo in range(0, flat.size, slab):
        hi = min(lo + slab, flat.size)
        chunk = flat[lo:hi]
        lens = lengths[chunk].astype(np.int64)
        starts = bit_cursor + np.concatenate(
            ([0], np.cumsum(lens[:-1]))
        )
        if chunk_size:
            local = np.arange(0, hi - lo, chunk_size)
            offsets[lo // chunk_size : lo // chunk_size + local.size] = (
                starts[local].astype(np.uint64)
            )
        _place_bits(codebook.codes[chunk], lens, starts, out)
        bit_cursor = int(starts[-1]) + int(lens[-1])
    return out.tobytes(), nbits, offsets


def encode_reference(
    symbols: np.ndarray, codebook: Codebook
) -> tuple[bytes, int]:
    """Per-symbol Python reference encoder.

    Bit-for-bit identical to :func:`encode` on every valid input and the
    same ``ValueError`` on uncoded symbols — the behavioural baseline the
    vectorized slab encoder is tested (and benchmarked) against.
    """
    flat = np.asarray(symbols).reshape(-1)
    if flat.size == 0:
        return b"", 0
    lengths = codebook.lengths.tolist()
    codes = codebook.codes.tolist()
    buf = bytearray()
    acc = 0
    acc_bits = 0
    nbits = 0
    for s in flat.tolist():
        length = lengths[s]
        if length == 0:
            raise ValueError(f"symbol {int(s)} has no code in this codebook")
        acc = (acc << length) | codes[s]
        acc_bits += length
        nbits += length
        while acc_bits >= 8:
            acc_bits -= 8
            buf.append((acc >> acc_bits) & 0xFF)
        acc &= (1 << acc_bits) - 1
    if acc_bits:
        buf.append((acc << (8 - acc_bits)) & 0xFF)
    return bytes(buf), nbits


def _offsets_reference(
    flat: np.ndarray, codebook: Codebook, chunk_size: int
) -> np.ndarray:
    """Chunk start bits via a bounded cumulative walk (fallback path)."""
    if not chunk_size:
        return np.zeros(0, dtype=np.uint64)
    num_chunks = -(-flat.size // chunk_size)
    offsets = np.zeros(num_chunks, dtype=np.uint64)
    bit = 0
    lens = codebook.lengths
    for c in range(num_chunks):
        offsets[c] = bit
        piece = flat[c * chunk_size : (c + 1) * chunk_size]
        bit += int(lens[piece].astype(np.int64).sum())
    return offsets


#: Codes at or below this depth decode through a dense lookup table
#: (2^depth entries) instead of the canonical walk — one array access per
#: symbol instead of one per candidate length.
TABLE_DECODE_MAX_LEN = 12
_TABLE_DECODE_MAX_LEN = TABLE_DECODE_MAX_LEN  # backwards-compat alias


def decode(
    data: bytes, nbits: int, count: int, codebook: Codebook
) -> np.ndarray:
    """Decode ``count`` symbols from a packed bit stream.

    Shallow codebooks (max length <= 12, the common case for quantization
    codes — and guaranteed under ``build_codebook(max_length=...)``) use
    a dense prefix table; deeper books fall back to the canonical walk.
    """
    if count == 0:
        return np.zeros(0, dtype=np.uint16)
    if codebook.max_length == 0:
        # An all-zero-length codebook encodes nothing; a stream that
        # declares symbols against it is corrupt, not an index error.
        raise ValueError(
            "corrupt Huffman stream: codebook has no codes but "
            f"{count} symbols are declared"
        )
    if codebook.max_length <= _TABLE_DECODE_MAX_LEN:
        return _decode_table(data, nbits, count, codebook)
    first_code, order = _canonical_decode_tables(codebook)
    max_len = codebook.max_length
    out = np.empty(count, dtype=np.uint16)
    # Integer bit buffer: consume bytes on demand, peel one code at a time.
    buffer = 0
    buffered = 0
    pos = 0  # next byte
    consumed_bits = 0
    for i in range(count):
        # Ensure enough bits for the longest possible code.
        while buffered < max_len and pos < len(data):
            buffer = (buffer << 8) | data[pos]
            pos += 1
            buffered += 8
        length = 1
        # Canonical walk: find the shortest length whose range contains
        # the leading bits.
        while True:
            prefix = (buffer >> (buffered - length)) & ((1 << length) - 1)
            fc = first_code[length]
            if fc is not None and prefix < fc[1]:
                symbol = order[fc[0] + (prefix - fc[2])]
                break
            length += 1
            if length > max_len:
                raise ValueError("corrupt Huffman stream")
        buffered -= length
        buffer &= (1 << buffered) - 1
        consumed_bits += length
        out[i] = symbol
    if consumed_bits != nbits:
        raise ValueError(
            f"decoded {consumed_bits} bits but stream declared {nbits}"
        )
    return out


def dense_decode_tables(
    codebook: Codebook,
) -> tuple[np.ndarray, np.ndarray]:
    """Dense prefix tables ``(symbols, lengths)`` of ``2^max_length``
    entries: entry ``p`` is the symbol whose code prefixes ``p`` and its
    code length (0 = no code starts with ``p``; the stream is corrupt).
    Shared by the scalar fast path below and the vectorized kernel
    backend (:mod:`repro.compression.kernels.vectorized`)."""
    depth = codebook.max_length
    size = 1 << depth
    symbols_table = np.zeros(size, dtype=np.uint16)
    lengths_table = np.zeros(size, dtype=np.uint8)
    for symbol in np.flatnonzero(codebook.lengths > 0):
        length = int(codebook.lengths[symbol])
        code = int(codebook.codes[symbol])
        base = code << (depth - length)
        span = 1 << (depth - length)
        symbols_table[base : base + span] = symbol
        lengths_table[base : base + span] = length
    return symbols_table, lengths_table


def _decode_table(
    data: bytes, nbits: int, count: int, codebook: Codebook
) -> np.ndarray:
    """Dense-table decoder for shallow codebooks."""
    depth = codebook.max_length
    size = 1 << depth
    symbols_table, lengths_table = dense_decode_tables(codebook)
    sym_list = symbols_table.tolist()
    len_list = lengths_table.tolist()

    out = np.empty(count, dtype=np.uint16)
    buffer = 0
    buffered = 0
    pos = 0
    consumed = 0
    mask = size - 1
    n = len(data)
    for i in range(count):
        while buffered < depth and pos < n:
            buffer = (buffer << 8) | data[pos]
            pos += 1
            buffered += 8
        if buffered >= depth:
            prefix = (buffer >> (buffered - depth)) & mask
        else:
            prefix = (buffer << (depth - buffered)) & mask
        length = len_list[prefix]
        if length == 0 or length > buffered:
            raise ValueError("corrupt Huffman stream")
        out[i] = sym_list[prefix]
        buffered -= length
        buffer &= (1 << buffered) - 1
        consumed += length
    if consumed != nbits:
        raise ValueError(
            f"decoded {consumed} bits but stream declared {nbits}"
        )
    return out


def _canonical_decode_tables(codebook: Codebook):
    """Per-length (start_index, limit_code, first_code) decode tables.

    ``first_code[L]`` is ``None`` when no code of length ``L`` exists;
    otherwise ``(start_index, limit, first)`` where codes ``first..limit-1``
    of length ``L`` map to ``order[start_index + (code - first)]``.
    """
    lengths = codebook.lengths
    order = sorted(
        (int(s) for s in np.flatnonzero(lengths > 0)),
        key=lambda s: (int(lengths[s]), s),
    )
    order_arr = np.array(order, dtype=np.uint16) if order else np.zeros(
        0, dtype=np.uint16
    )
    max_len = codebook.max_length
    first_code: list[tuple[int, int, int] | None] = [None] * (max_len + 1)
    idx = 0
    code = 0
    prev_len = 0
    while idx < len(order):
        length = int(lengths[order[idx]])
        code <<= length - prev_len
        start_idx = idx
        first = code
        while idx < len(order) and int(lengths[order[idx]]) == length:
            idx += 1
            code += 1
        first_code[length] = (start_idx, code, first)
        prev_len = length
    return first_code, order_arr


#: Codebook blob layouts: the flat legacy form (count + one length byte
#: per symbol) and the compact run-length form new blocks write.
CODEBOOK_KIND_RAW = 0
CODEBOOK_KIND_RLE = 1

_RLE_MAGIC = b"RCB2"
#: One run: (code length uint8, run length uint16), packed.
_RLE_RUN = np.dtype([("value", np.uint8), ("count", "<u2")])


def _kraft_check(lengths: np.ndarray) -> None:
    """Reject length vectors no prefix code can realize."""
    coded = lengths[lengths > 0].astype(np.float64)
    if coded.size and float(np.sum(2.0**-coded)) > 1.0 + 1e-12:
        raise ValueError(
            "corrupt codebook blob: code lengths violate the Kraft "
            "inequality"
        )


def codebook_blob_kind(blob: bytes) -> int:
    """Which serialized layout a codebook blob uses (by its magic)."""
    return (
        CODEBOOK_KIND_RLE if blob[:4] == _RLE_MAGIC else CODEBOOK_KIND_RAW
    )


def codebook_to_bytes(codebook: Codebook, kind: int | None = None) -> bytes:
    """Serialize a canonical codebook (just the length vector).

    ``CODEBOOK_KIND_RLE`` stores the lengths as (value, run) pairs — a
    handful of bytes for the near-geometric quantization-code books
    (long zero runs for unused symbols) instead of one byte per symbol.
    ``CODEBOOK_KIND_RAW`` is the flat legacy layout.  The default
    (``kind=None``) writes whichever is smaller; both layouts are
    self-describing on read (:func:`codebook_blob_kind`).
    """
    if kind is None:
        rle = codebook_to_bytes(codebook, CODEBOOK_KIND_RLE)
        raw = codebook_to_bytes(codebook, CODEBOOK_KIND_RAW)
        return rle if len(rle) <= len(raw) else raw
    lengths = codebook.lengths
    if kind == CODEBOOK_KIND_RAW:
        header = np.uint32(codebook.num_symbols).tobytes()
        return header + lengths.tobytes()
    if kind != CODEBOOK_KIND_RLE:
        raise ValueError(f"unknown codebook kind {kind}")
    n = lengths.size
    if n:
        change = np.flatnonzero(np.diff(lengths)) + 1
        starts = np.concatenate(([0], change))
        run_lens = np.diff(np.concatenate((starts, [n])))
        values = lengths[starts]
    else:
        run_lens = np.zeros(0, dtype=np.int64)
        values = np.zeros(0, dtype=np.uint8)
    runs = np.empty(0, dtype=_RLE_RUN)
    pieces = []
    for value, run in zip(values.tolist(), run_lens.tolist()):
        while run > 0:
            piece = min(run, 0xFFFF)
            pieces.append((value, piece))
            run -= piece
    if pieces:
        runs = np.array(pieces, dtype=_RLE_RUN)
    return (
        _RLE_MAGIC
        + struct.pack("<II", n, runs.size)
        + runs.tobytes()
    )


def codebook_from_bytes(blob: bytes) -> Codebook:
    """Deserialize a codebook from either serialized layout.

    The run-length form is self-describing (magic ``RCB2``); anything
    else parses as the flat legacy layout.  Every declared size is
    validated against the actual blob length — a truncated blob raises a
    named ``ValueError`` instead of silently yielding a shorter lengths
    vector (which would decode downstream blocks into garbage).
    """
    if len(blob) < 4:
        raise ValueError(
            f"truncated codebook blob: {len(blob)} bytes cannot hold a "
            "codebook header"
        )
    if blob[:4] == _RLE_MAGIC:
        return _codebook_from_rle(blob)
    num = int(np.frombuffer(blob[:4], dtype=np.uint32)[0])
    got = len(blob) - 4
    if got != num:
        raise ValueError(
            f"truncated codebook blob: declares {num} symbols but "
            f"carries {got} length bytes"
        )
    if num == 0:
        raise ValueError("corrupt codebook blob: zero symbols declared")
    lengths = np.frombuffer(blob[4 : 4 + num], dtype=np.uint8).copy()
    _kraft_check(lengths)
    return Codebook(lengths=lengths, codes=_canonical_codes(lengths))


def _codebook_from_rle(blob: bytes) -> Codebook:
    if len(blob) < 12:
        raise ValueError(
            f"truncated codebook blob: {len(blob)} bytes cannot hold a "
            "run-length header"
        )
    num_symbols, num_runs = struct.unpack("<II", blob[4:12])
    want = 12 + _RLE_RUN.itemsize * num_runs
    if len(blob) != want:
        raise ValueError(
            f"truncated codebook blob: declares {num_runs} runs "
            f"({want} bytes) but the blob has {len(blob)}"
        )
    if num_symbols == 0:
        raise ValueError("corrupt codebook blob: zero symbols declared")
    runs = np.frombuffer(blob[12:want], dtype=_RLE_RUN)
    covered = int(runs["count"].astype(np.int64).sum())
    if covered != num_symbols:
        raise ValueError(
            f"corrupt codebook blob: runs cover {covered} symbols but "
            f"{num_symbols} are declared"
        )
    lengths = np.repeat(
        runs["value"], runs["count"].astype(np.int64)
    ).astype(np.uint8)
    if lengths.size and int(lengths.max()) > 63:
        raise ValueError(
            "corrupt codebook blob: code length exceeds 63 bits"
        )
    _kraft_check(lengths)
    return Codebook(lengths=lengths, codes=_canonical_codes(lengths))


def estimate_encoded_bits(
    histogram: np.ndarray,
    codebook: Codebook,
    sentinel: int | None = None,
) -> tuple[int, int]:
    """Bit cost of coding ``histogram`` with ``codebook``.

    Returns ``(bits, escapes)`` where ``escapes`` counts occurrences of
    symbols the codebook cannot encode.  At the SZ layer those become
    outliers: each is *rerouted to the sentinel symbol* (paying the
    sentinel's code length in the Huffman stream) and additionally pays
    the outlier-channel cost.  Pass ``sentinel`` to include the rerouted
    code bits in ``bits`` — without it the estimate drifts low by
    ``escapes * lengths[sentinel]`` exactly as ``encode`` would observe.
    Used by the ratio model and the shared-tree degradation analysis
    (Figure 6).
    """
    hist = np.asarray(histogram, dtype=np.int64)
    coded = codebook.lengths.astype(np.int64)
    n = min(hist.size, coded.size)
    bits = int(np.sum(hist[:n] * coded[:n]))
    escapes = int(np.sum(hist[:n][coded[:n] == 0]))
    if hist.size > n:
        escapes += int(hist[n:].sum())
    if sentinel is not None and escapes:
        bits += escapes * int(coded[sentinel])
    return bits, escapes
