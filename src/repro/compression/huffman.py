"""Canonical Huffman coding over the quantization-code alphabet.

Encoding is fully vectorized with numpy (per-symbol code/length gather,
bit expansion, ``np.packbits``).  Decoding walks the bit stream with a
canonical first-code table, reading bits through a small integer buffer —
adequate for the block sizes the experiments use.

Codebooks are canonical, so they serialize as just the per-symbol code
*lengths*; this is also what makes the shared-tree comparison in Figure 6
meaningful: two iterations with similar quantization-code histograms yield
nearly identical length vectors, hence nearly identical bit costs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Codebook",
    "build_codebook",
    "encode",
    "decode",
    "dense_decode_tables",
    "codebook_to_bytes",
    "codebook_from_bytes",
    "estimate_encoded_bits",
    "TABLE_DECODE_MAX_LEN",
]


@dataclass(frozen=True)
class Codebook:
    """A canonical Huffman codebook for symbols ``0..num_symbols-1``.

    ``lengths[s] == 0`` means symbol ``s`` has no code (it never occurred
    in the training histogram); encoders must reroute such symbols (the SZ
    layer converts them to outliers before encoding).
    """

    lengths: np.ndarray  # uint8, per-symbol code length (0 = uncoded)
    codes: np.ndarray  # uint64, canonical code values (MSB-first)

    @property
    def num_symbols(self) -> int:
        return int(self.lengths.size)

    @property
    def max_length(self) -> int:
        return int(self.lengths.max(initial=0))

    def can_encode(self, symbols: np.ndarray) -> np.ndarray:
        """Boolean mask of symbols this codebook has codes for."""
        return self.lengths[symbols] > 0


def build_codebook(
    frequencies: np.ndarray,
    force_symbols: tuple[int, ...] = (),
    max_length: int | None = None,
) -> Codebook:
    """Build a canonical codebook from a symbol histogram.

    Args:
        frequencies: occurrence counts per symbol (any integer dtype).
        force_symbols: symbols guaranteed a code even with zero observed
            frequency — the SZ layer forces the outlier sentinel so a
            shared tree can always escape unseen values.
        max_length: optional bound on code length.  When the natural
            Huffman tree is deeper (pathological skew), lengths are
            recomputed with the package-merge algorithm, which yields the
            optimal code under the constraint.  Bounds the decoder's
            table depth at a (usually negligible) ratio cost.
    """
    freqs = np.asarray(frequencies, dtype=np.int64).copy()
    if freqs.ndim != 1:
        raise ValueError("frequencies must be one-dimensional")
    for symbol in force_symbols:
        if freqs[symbol] == 0:
            freqs[symbol] = 1

    present = np.flatnonzero(freqs > 0)
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    if present.size == 1:
        lengths[present[0]] = 1
    elif present.size > 1:
        natural = _code_lengths(freqs[present])
        if max_length is not None and int(natural.max()) > max_length:
            if 2**max_length < present.size:
                raise ValueError(
                    f"max_length {max_length} cannot encode "
                    f"{present.size} symbols"
                )
            natural = _package_merge(freqs[present], max_length)
        lengths[present] = natural
    codes = _canonical_codes(lengths)
    return Codebook(lengths=lengths, codes=codes)


def _package_merge(freqs: np.ndarray, max_length: int) -> np.ndarray:
    """Optimal length-limited code lengths (package-merge, Larmore-
    Hirschberg 1990).

    Works on the ``n`` present symbols; returns one length per symbol,
    each in ``1..max_length``, satisfying Kraft equality.
    """
    n = freqs.size
    order = np.argsort(freqs, kind="stable")
    sorted_freqs = freqs[order].astype(np.int64)

    # Items are (weight, coverage): coverage[i] counts how many times
    # sorted symbol i participates.  Each of the max_length packaging
    # rounds merges the previous round's packages with fresh leaves and
    # pairs them up; a symbol's final code length equals how many of the
    # cheapest 2(n-1) items of the last round's merged list cover it.
    level: list[tuple[int, np.ndarray]] = []
    merged: list[tuple[int, np.ndarray]] = []
    for _ in range(max_length):
        leaves = [
            (int(sorted_freqs[i]), _unit(n, i)) for i in range(n)
        ]
        merged = sorted(level + leaves, key=lambda item: item[0])
        level = [
            (
                merged[2 * i][0] + merged[2 * i + 1][0],
                merged[2 * i][1] + merged[2 * i + 1][1],
            )
            for i in range(len(merged) // 2)
        ]
    chosen = np.zeros(n, dtype=np.int64)
    for _, coverage in merged[: 2 * (n - 1)]:
        chosen += coverage

    lengths = np.zeros(n, dtype=np.uint8)
    lengths[order] = chosen.astype(np.uint8)
    return lengths


def _unit(n: int, index: int) -> np.ndarray:
    unit = np.zeros(n, dtype=np.int64)
    unit[index] = 1
    return unit


def _code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Huffman code lengths for strictly positive frequencies."""
    # Heap items: (frequency, tiebreak, node_id).  Internal nodes are
    # appended after the leaves; parent[] lets us read depths afterwards.
    n = freqs.size
    parent = [-1] * (2 * n - 1)
    heap = [(int(freqs[i]), i, i) for i in range(n)]
    heapq.heapify(heap)
    next_id = n
    while len(heap) > 1:
        fa, _, a = heapq.heappop(heap)
        fb, _, b = heapq.heappop(heap)
        parent[a] = next_id
        parent[b] = next_id
        heapq.heappush(heap, (fa + fb, next_id, next_id))
        next_id += 1
    depths = np.zeros(n, dtype=np.uint8)
    for leaf in range(n):
        d = 0
        node = leaf
        while parent[node] != -1:
            node = parent[node]
            d += 1
        depths[leaf] = d
    return depths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    codes = np.zeros(lengths.size, dtype=np.uint64)
    order = sorted(
        (int(s) for s in np.flatnonzero(lengths > 0)),
        key=lambda s: (int(lengths[s]), s),
    )
    code = 0
    prev_len = 0
    for symbol in order:
        length = int(lengths[symbol])
        code <<= length - prev_len
        codes[symbol] = code
        code += 1
        prev_len = length
    return codes


def encode(symbols: np.ndarray, codebook: Codebook) -> tuple[bytes, int]:
    """Encode a symbol array; returns (packed bytes, exact bit count).

    Every symbol must have a code (see :meth:`Codebook.can_encode`).
    """
    flat = symbols.reshape(-1)
    if flat.size == 0:
        return b"", 0
    lens = codebook.lengths[flat].astype(np.int64)
    if not np.all(lens > 0):
        bad = flat[lens == 0][0]
        raise ValueError(f"symbol {int(bad)} has no code in this codebook")
    codes = codebook.codes[flat]
    max_len = int(lens.max())
    # Expand each code to its bits, MSB first, then mask to actual length.
    shifts = (lens[:, None] - 1 - np.arange(max_len)[None, :])
    valid = shifts >= 0
    shifts = np.where(valid, shifts, 0).astype(np.uint64)
    bits = ((codes[:, None] >> shifts) & 1).astype(np.uint8)
    stream = bits[valid]
    nbits = int(lens.sum())
    return np.packbits(stream).tobytes(), nbits


#: Codes at or below this depth decode through a dense lookup table
#: (2^depth entries) instead of the canonical walk — one array access per
#: symbol instead of one per candidate length.
TABLE_DECODE_MAX_LEN = 12
_TABLE_DECODE_MAX_LEN = TABLE_DECODE_MAX_LEN  # backwards-compat alias


def decode(
    data: bytes, nbits: int, count: int, codebook: Codebook
) -> np.ndarray:
    """Decode ``count`` symbols from a packed bit stream.

    Shallow codebooks (max length <= 12, the common case for quantization
    codes — and guaranteed under ``build_codebook(max_length=...)``) use
    a dense prefix table; deeper books fall back to the canonical walk.
    """
    if count == 0:
        return np.zeros(0, dtype=np.uint16)
    if codebook.max_length == 0:
        # An all-zero-length codebook encodes nothing; a stream that
        # declares symbols against it is corrupt, not an index error.
        raise ValueError(
            "corrupt Huffman stream: codebook has no codes but "
            f"{count} symbols are declared"
        )
    if codebook.max_length <= _TABLE_DECODE_MAX_LEN:
        return _decode_table(data, nbits, count, codebook)
    first_code, order = _canonical_decode_tables(codebook)
    max_len = codebook.max_length
    out = np.empty(count, dtype=np.uint16)
    # Integer bit buffer: consume bytes on demand, peel one code at a time.
    buffer = 0
    buffered = 0
    pos = 0  # next byte
    consumed_bits = 0
    for i in range(count):
        # Ensure enough bits for the longest possible code.
        while buffered < max_len and pos < len(data):
            buffer = (buffer << 8) | data[pos]
            pos += 1
            buffered += 8
        length = 1
        # Canonical walk: find the shortest length whose range contains
        # the leading bits.
        while True:
            prefix = (buffer >> (buffered - length)) & ((1 << length) - 1)
            fc = first_code[length]
            if fc is not None and prefix < fc[1]:
                symbol = order[fc[0] + (prefix - fc[2])]
                break
            length += 1
            if length > max_len:
                raise ValueError("corrupt Huffman stream")
        buffered -= length
        buffer &= (1 << buffered) - 1
        consumed_bits += length
        out[i] = symbol
    if consumed_bits != nbits:
        raise ValueError(
            f"decoded {consumed_bits} bits but stream declared {nbits}"
        )
    return out


def dense_decode_tables(
    codebook: Codebook,
) -> tuple[np.ndarray, np.ndarray]:
    """Dense prefix tables ``(symbols, lengths)`` of ``2^max_length``
    entries: entry ``p`` is the symbol whose code prefixes ``p`` and its
    code length (0 = no code starts with ``p``; the stream is corrupt).
    Shared by the scalar fast path below and the vectorized kernel
    backend (:mod:`repro.compression.kernels.vectorized`)."""
    depth = codebook.max_length
    size = 1 << depth
    symbols_table = np.zeros(size, dtype=np.uint16)
    lengths_table = np.zeros(size, dtype=np.uint8)
    for symbol in np.flatnonzero(codebook.lengths > 0):
        length = int(codebook.lengths[symbol])
        code = int(codebook.codes[symbol])
        base = code << (depth - length)
        span = 1 << (depth - length)
        symbols_table[base : base + span] = symbol
        lengths_table[base : base + span] = length
    return symbols_table, lengths_table


def _decode_table(
    data: bytes, nbits: int, count: int, codebook: Codebook
) -> np.ndarray:
    """Dense-table decoder for shallow codebooks."""
    depth = codebook.max_length
    size = 1 << depth
    symbols_table, lengths_table = dense_decode_tables(codebook)
    sym_list = symbols_table.tolist()
    len_list = lengths_table.tolist()

    out = np.empty(count, dtype=np.uint16)
    buffer = 0
    buffered = 0
    pos = 0
    consumed = 0
    mask = size - 1
    n = len(data)
    for i in range(count):
        while buffered < depth and pos < n:
            buffer = (buffer << 8) | data[pos]
            pos += 1
            buffered += 8
        if buffered >= depth:
            prefix = (buffer >> (buffered - depth)) & mask
        else:
            prefix = (buffer << (depth - buffered)) & mask
        length = len_list[prefix]
        if length == 0 or length > buffered:
            raise ValueError("corrupt Huffman stream")
        out[i] = sym_list[prefix]
        buffered -= length
        buffer &= (1 << buffered) - 1
        consumed += length
    if consumed != nbits:
        raise ValueError(
            f"decoded {consumed} bits but stream declared {nbits}"
        )
    return out


def _canonical_decode_tables(codebook: Codebook):
    """Per-length (start_index, limit_code, first_code) decode tables.

    ``first_code[L]`` is ``None`` when no code of length ``L`` exists;
    otherwise ``(start_index, limit, first)`` where codes ``first..limit-1``
    of length ``L`` map to ``order[start_index + (code - first)]``.
    """
    lengths = codebook.lengths
    order = sorted(
        (int(s) for s in np.flatnonzero(lengths > 0)),
        key=lambda s: (int(lengths[s]), s),
    )
    order_arr = np.array(order, dtype=np.uint16) if order else np.zeros(
        0, dtype=np.uint16
    )
    max_len = codebook.max_length
    first_code: list[tuple[int, int, int] | None] = [None] * (max_len + 1)
    idx = 0
    code = 0
    prev_len = 0
    while idx < len(order):
        length = int(lengths[order[idx]])
        code <<= length - prev_len
        start_idx = idx
        first = code
        while idx < len(order) and int(lengths[order[idx]]) == length:
            idx += 1
            code += 1
        first_code[length] = (start_idx, code, first)
        prev_len = length
    return first_code, order_arr


def codebook_to_bytes(codebook: Codebook) -> bytes:
    """Serialize a canonical codebook (just the length vector)."""
    header = np.uint32(codebook.num_symbols).tobytes()
    return header + codebook.lengths.tobytes()


def codebook_from_bytes(blob: bytes) -> Codebook:
    """Deserialize a codebook produced by :func:`codebook_to_bytes`."""
    num = int(np.frombuffer(blob[:4], dtype=np.uint32)[0])
    lengths = np.frombuffer(blob[4 : 4 + num], dtype=np.uint8).copy()
    return Codebook(lengths=lengths, codes=_canonical_codes(lengths))


def estimate_encoded_bits(
    histogram: np.ndarray, codebook: Codebook
) -> tuple[int, int]:
    """Bit cost of coding ``histogram`` with ``codebook``.

    Returns ``(bits, escapes)`` where ``escapes`` counts occurrences of
    symbols the codebook cannot encode (these become outliers at the SZ
    layer and pay the outlier cost instead).  Used by the ratio model and
    the shared-tree degradation analysis (Figure 6).
    """
    hist = np.asarray(histogram, dtype=np.int64)
    coded = codebook.lengths.astype(np.int64)
    n = min(hist.size, coded.size)
    bits = int(np.sum(hist[:n] * coded[:n]))
    escapes = int(np.sum(hist[:n][coded[:n] == 0]))
    if hist.size > n:
        escapes += int(hist[n:].sum())
    return bits, escapes
