"""Huffman codec kernel backends (the decode hot path).

Two interchangeable implementations of the same bit format:

* ``pure`` — the per-symbol reference loop (``huffman.decode``);
* ``numpy`` — chunk-parallel dense-table decoding (the default), enabled
  by the per-chunk bit offsets the v2 block format records.

Selection order: an explicit ``SZCompressor(backend=...)`` argument, then
the ``REPRO_CODEC_BACKEND`` environment variable, then ``numpy``.  Both
backends produce bit-identical streams and decoded symbols; the choice
only moves the throughput/compatibility trade-off.
"""

from __future__ import annotations

import os

from .base import (
    DEFAULT_CHUNK_SIZE,
    CodecBackend,
    EncodedStream,
    encode_chunked,
)
from .pure import PureBackend
from .vectorized import NumpyBackend

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "CodecBackend",
    "EncodedStream",
    "encode_chunked",
    "PureBackend",
    "NumpyBackend",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "available_backends",
    "get_backend",
    "resolve_backend",
]

BACKEND_ENV_VAR = "REPRO_CODEC_BACKEND"
DEFAULT_BACKEND = "numpy"

_BACKEND_TYPES: dict[str, type[CodecBackend]] = {
    PureBackend.name: PureBackend,
    NumpyBackend.name: NumpyBackend,
}
_INSTANCES: dict[str, CodecBackend] = {}


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKEND_TYPES))


def get_backend(name: str) -> CodecBackend:
    """The (shared, stateless) backend instance registered as ``name``."""
    try:
        backend_type = _BACKEND_TYPES[name]
    except KeyError:
        known = ", ".join(available_backends())
        raise ValueError(
            f"unknown codec backend {name!r} (available: {known})"
        ) from None
    if name not in _INSTANCES:
        _INSTANCES[name] = backend_type()
    return _INSTANCES[name]


def resolve_backend(
    backend: str | CodecBackend | None = None,
) -> CodecBackend:
    """Resolve a backend spec: instance > name > $REPRO_CODEC_BACKEND >
    the ``numpy`` default."""
    if isinstance(backend, CodecBackend):
        return backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    return get_backend(backend)
