"""Codec kernel backends (the encode/decode hot path).

Four interchangeable implementations behind one contract:

* ``pure`` — per-symbol reference loops (``huffman.encode_reference`` /
  ``huffman.decode``), the behavioural baseline;
* ``numpy`` — slab-vectorized encode + chunk-parallel dense-table decode
  (the default), enabled by the per-chunk bit offsets the v2+ block
  format records;
* ``deflate`` — distance-1 LZ77 run tokens + embedded canonical-Huffman
  book (own stream format, no external codebook, no shared tree);
* ``zlib`` — narrowed symbol bytes through zlib level 1 (no tree work at
  all, the fastest encode).

``pure`` and ``numpy`` share one bit format and produce bit-identical
streams; ``deflate`` and ``zlib`` define their own self-contained
formats, recorded per block via :data:`FORMAT_DEFLATE` /
:data:`FORMAT_ZLIB` in the v3 header so any compressor instance decodes
any block (:func:`backend_for_format`).

Selection order: an explicit ``SZCompressor(backend=...)`` argument, then
the ``REPRO_CODEC_BACKEND`` environment variable, then ``numpy``.
"""

from __future__ import annotations

import os

from .base import (
    DEFAULT_CHUNK_SIZE,
    FORMAT_DEFLATE,
    FORMAT_HUFFMAN,
    FORMAT_ZLIB,
    KNOWN_FORMATS,
    CodecBackend,
    EncodedStream,
    encode_chunked,
)
from .deflate import DeflateBackend
from .pure import PureBackend
from .vectorized import NumpyBackend
from .zlibfast import ZlibBackend

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "FORMAT_HUFFMAN",
    "FORMAT_DEFLATE",
    "FORMAT_ZLIB",
    "KNOWN_FORMATS",
    "CodecBackend",
    "EncodedStream",
    "encode_chunked",
    "PureBackend",
    "NumpyBackend",
    "DeflateBackend",
    "ZlibBackend",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "backend_for_format",
]

BACKEND_ENV_VAR = "REPRO_CODEC_BACKEND"
DEFAULT_BACKEND = "numpy"

_BACKEND_TYPES: dict[str, type[CodecBackend]] = {}
_INSTANCES: dict[str, CodecBackend] = {}

#: Preferred decoder per stream format (any same-format backend works —
#: formats are backend-independent — so the fastest is registered here).
_FORMAT_DEFAULTS: dict[int, str] = {}


def register_backend(
    backend_type: type[CodecBackend], format_default: bool = False
) -> type[CodecBackend]:
    """Register a backend class under its ``name``.

    ``format_default`` marks it the preferred decoder for its
    ``format_id`` (what :func:`backend_for_format` returns).
    """
    name = backend_type.name
    existing = _BACKEND_TYPES.get(name)
    if existing is not None and existing is not backend_type:
        raise ValueError(
            f"codec backend name {name!r} is already registered "
            f"by {existing.__name__}"
        )
    _BACKEND_TYPES[name] = backend_type
    if format_default or backend_type.format_id not in _FORMAT_DEFAULTS:
        _FORMAT_DEFAULTS[backend_type.format_id] = name
    return backend_type


register_backend(PureBackend)
register_backend(NumpyBackend, format_default=True)
register_backend(DeflateBackend, format_default=True)
register_backend(ZlibBackend, format_default=True)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKEND_TYPES))


def get_backend(name: str) -> CodecBackend:
    """The (shared, stateless) backend instance registered as ``name``."""
    try:
        backend_type = _BACKEND_TYPES[name]
    except KeyError:
        known = ", ".join(available_backends())
        raise ValueError(
            f"unknown codec backend {name!r} (available: {known})"
        ) from None
    if name not in _INSTANCES:
        _INSTANCES[name] = backend_type()
    return _INSTANCES[name]


def resolve_backend(
    backend: str | CodecBackend | None = None,
) -> CodecBackend:
    """Resolve a backend spec: instance > name > $REPRO_CODEC_BACKEND >
    the ``numpy`` default."""
    if isinstance(backend, CodecBackend):
        return backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    return get_backend(backend)


def backend_for_format(format_id: int) -> CodecBackend:
    """The preferred decoder for a block's recorded stream format."""
    try:
        return get_backend(_FORMAT_DEFAULTS[format_id])
    except KeyError:
        known = ", ".join(str(f) for f in sorted(_FORMAT_DEFAULTS))
        raise ValueError(
            f"corrupt compressed block: unknown codec format "
            f"{format_id} (known: {known})"
        ) from None
