"""Backend contract for the Huffman codec kernels.

A backend turns quantization-code symbol streams into packed Huffman bits
and back.  Encoding is shared (it was already numpy-vectorized); what the
backends differ on is *decoding*: the ``pure`` backend is the per-symbol
reference loop, the ``numpy`` backend decodes all chunks of a block in
lockstep with dense-table gathers (see :mod:`.vectorized`).

To make batch decoding possible at all, the encoder splits the symbol
stream into fixed-size chunks and records each chunk's start *bit* offset;
the offsets ride in the v2 block header (`docs/formats.md`).  A chunk
boundary never splits a code word, so each chunk is independently
decodable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from .. import huffman

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "EncodedStream",
    "CodecBackend",
    "encode_chunked",
    "expected_num_chunks",
]

#: Symbols per chunk.  256 keeps the vectorized decoder's Python-level
#: step count low (steps == chunk size) while the per-chunk cost — one
#: uint32 bit offset in the header — stays at 0.125 bits/symbol.
DEFAULT_CHUNK_SIZE = 256


@dataclass(frozen=True)
class EncodedStream:
    """A chunked Huffman bit stream plus the offsets that index it."""

    data: bytes
    nbits: int
    chunk_size: int
    #: uint64 start bit of each chunk; ``chunk_offsets[0] == 0``.
    chunk_offsets: np.ndarray

    @property
    def num_chunks(self) -> int:
        return int(self.chunk_offsets.size)


def encode_chunked(
    symbols: np.ndarray,
    codebook: huffman.Codebook,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> EncodedStream:
    """Encode ``symbols`` and record per-chunk bit offsets.

    The bit stream is identical to :func:`repro.compression.huffman.encode`
    output — chunking only adds the offset index, never padding.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    flat = symbols.reshape(-1)
    data, nbits = huffman.encode(flat, codebook)
    if flat.size == 0:
        offsets = np.zeros(0, dtype=np.uint64)
    else:
        lens = codebook.lengths[flat].astype(np.int64)
        starts = np.concatenate(([0], np.cumsum(lens)))
        offsets = starts[np.arange(0, flat.size, chunk_size)].astype(
            np.uint64
        )
    return EncodedStream(
        data=data, nbits=nbits, chunk_size=chunk_size, chunk_offsets=offsets
    )


def expected_num_chunks(
    count: int, chunk_size: int, chunk_offsets: np.ndarray
) -> int:
    """Validate a chunk index against the declared symbol count."""
    if chunk_size < 1:
        raise ValueError("corrupt Huffman stream: chunk size must be >= 1")
    want = -(-count // chunk_size) if count else 0
    if chunk_offsets.size != want:
        raise ValueError(
            f"corrupt Huffman stream: {chunk_offsets.size} chunk offsets "
            f"for {count} symbols at chunk size {chunk_size} "
            f"(expected {want})"
        )
    if want and int(chunk_offsets[0]) != 0:
        raise ValueError(
            "corrupt Huffman stream: first chunk offset must be 0"
        )
    return want


class CodecBackend(abc.ABC):
    """One Huffman encode/decode implementation."""

    #: Registry key and telemetry label.
    name: str = "abstract"
    #: Deepest code length the backend's fast decode path handles; deeper
    #: codebooks fall back to the reference canonical walk.
    decode_max_length: int = 64
    #: Code-length limit handed to ``build_codebook`` so blocks written
    #: with this backend always decode on every backend's fast path.
    build_max_length: int = huffman.TABLE_DECODE_MAX_LEN

    def encode(
        self,
        symbols: np.ndarray,
        codebook: huffman.Codebook,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> EncodedStream:
        return encode_chunked(symbols, codebook, chunk_size)

    @abc.abstractmethod
    def decode(
        self,
        data: bytes,
        nbits: int,
        count: int,
        codebook: huffman.Codebook,
        chunk_size: int = 0,
        chunk_offsets: np.ndarray | None = None,
    ) -> np.ndarray:
        """Decode ``count`` symbols; chunk metadata may be absent (v1)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CodecBackend {self.name}>"
