"""Backend contract for the codec kernels.

A backend turns quantization-code symbol streams into a packed byte
stream and back.  The two Huffman backends share one bit format and
differ only in implementation — ``pure`` is the per-symbol reference
loop, ``numpy`` the slab/lockstep vectorized path — while the ``deflate``
and ``zlib`` backends define their own self-contained stream formats
(each stream format has a :attr:`CodecBackend.format_id`; the block
header records which one a block's payload uses, so any compressor can
decode any block).

To make batch Huffman decoding possible at all, the encoder splits the
symbol stream into fixed-size chunks and records each chunk's start
*bit* offset; the offsets ride in the v2+ block header
(``docs/formats.md``).  A chunk boundary never splits a code word, so
each chunk is independently decodable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from .. import huffman

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "FORMAT_HUFFMAN",
    "FORMAT_DEFLATE",
    "FORMAT_ZLIB",
    "KNOWN_FORMATS",
    "EncodedStream",
    "CodecBackend",
    "encode_chunked",
    "expected_num_chunks",
]

#: Symbols per chunk.  256 keeps the vectorized decoder's Python-level
#: step count low (steps == chunk size) while the per-chunk cost — one
#: uint32 bit offset in the header — stays at 0.125 bits/symbol.
DEFAULT_CHUNK_SIZE = 256

#: Stream-format identifiers recorded in the v3 block header.  Backends
#: sharing a format id produce interchangeable (bit-identical) streams.
FORMAT_HUFFMAN = 0  # chunked canonical-Huffman bits (pure/numpy)
FORMAT_DEFLATE = 1  # LZ77 run tokens + embedded Huffman book (RLZ1)
FORMAT_ZLIB = 2  # raw symbol bytes through zlib (RZL1)
KNOWN_FORMATS = (FORMAT_HUFFMAN, FORMAT_DEFLATE, FORMAT_ZLIB)


@dataclass(frozen=True)
class EncodedStream:
    """A packed symbol stream plus the chunk index (when the format has
    one — the non-Huffman formats are self-contained and carry empty
    chunk metadata)."""

    data: bytes
    nbits: int
    chunk_size: int
    #: uint64 start bit of each chunk; ``chunk_offsets[0] == 0``.
    chunk_offsets: np.ndarray

    @property
    def num_chunks(self) -> int:
        return int(self.chunk_offsets.size)


def encode_chunked(
    symbols: np.ndarray,
    codebook: huffman.Codebook,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> EncodedStream:
    """Encode ``symbols`` and record per-chunk bit offsets.

    The bit stream is identical to :func:`repro.compression.huffman.encode`
    output — chunking only adds the offset index, never padding.  Both
    the stream and the offsets come out of the slab encoder, so working
    memory stays bounded regardless of the symbol count.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    data, nbits, offsets = huffman.encode_with_offsets(
        symbols.reshape(-1), codebook, chunk_size
    )
    return EncodedStream(
        data=data, nbits=nbits, chunk_size=chunk_size, chunk_offsets=offsets
    )


def expected_num_chunks(
    count: int, chunk_size: int, chunk_offsets: np.ndarray
) -> int:
    """Validate a chunk index against the declared symbol count."""
    if chunk_size < 1:
        raise ValueError("corrupt Huffman stream: chunk size must be >= 1")
    want = -(-count // chunk_size) if count else 0
    if chunk_offsets.size != want:
        raise ValueError(
            f"corrupt Huffman stream: {chunk_offsets.size} chunk offsets "
            f"for {count} symbols at chunk size {chunk_size} "
            f"(expected {want})"
        )
    if want and int(chunk_offsets[0]) != 0:
        raise ValueError(
            "corrupt Huffman stream: first chunk offset must be 0"
        )
    return want


class CodecBackend(abc.ABC):
    """One lossless-coding implementation for quantization-code streams.

    Beyond encode/decode, a backend declares the cost-model inputs the
    scheduler needs (:attr:`ratio_entropy_factor`,
    :attr:`throughput_factor`, :attr:`fixed_overhead_bytes`) so the
    RatioModel and CompressionThroughputModel price each backend's
    genuinely different ratio/speed operating point.
    """

    #: Registry key and telemetry label.
    name: str = "abstract"
    #: Stream format this backend reads and writes (block header field).
    format_id: int = FORMAT_HUFFMAN
    #: Whether blocks need an external canonical codebook (native blob or
    #: shared tree).  Formats that embed their own entropy coding
    #: (deflate) or none (zlib) set this False and skip tree building.
    uses_codebook: bool = True
    #: Deepest code length the backend's fast decode path handles; deeper
    #: codebooks fall back to the reference canonical walk.
    decode_max_length: int = 64
    #: Code-length limit handed to ``build_codebook`` so blocks written
    #: with this backend always decode on every backend's fast path.
    build_max_length: int = huffman.TABLE_DECODE_MAX_LEN
    #: RatioModel: predicted code bits per symbol ≈ entropy × this factor
    #: (coding inefficiency; deflate usually lands *below* entropy on
    #: smooth fields because runs collapse).
    ratio_entropy_factor: float = 1.03
    #: Per-block serialization overhead beyond the coded symbols
    #: (headers, embedded books), for the RatioModel.
    fixed_overhead_bytes: int = 96
    #: CompressionThroughputModel: relative end-to-end compression speed
    #: versus the Huffman baseline (1.0).
    throughput_factor: float = 1.0
    #: Whether compression builds a per-block Huffman tree (the
    #: throughput model's ``tree_build_s`` term).
    builds_tree: bool = True

    def encode(
        self,
        symbols: np.ndarray,
        codebook: huffman.Codebook | None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> EncodedStream:
        if codebook is None:
            raise ValueError(
                f"backend {self.name!r} encodes against a codebook"
            )
        return encode_chunked(symbols, codebook, chunk_size)

    @abc.abstractmethod
    def decode(
        self,
        data: bytes,
        nbits: int,
        count: int,
        codebook: huffman.Codebook | None,
        chunk_size: int = 0,
        chunk_offsets: np.ndarray | None = None,
    ) -> np.ndarray:
        """Decode ``count`` symbols; chunk metadata may be absent (v1)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CodecBackend {self.name}>"
