"""Deflate-style backend: distance-1 LZ77 run tokens + canonical Huffman.

Quantization-code streams from smooth fields are dominated by *runs* of
the zero-delta symbol.  This backend factors those runs out before
entropy coding, deflate-style: the stream becomes literal tokens (one
per symbol) interleaved with match tokens (*copy the previous symbol*
``n`` *times*, i.e. LZ77 restricted to distance 1 — the only distance
worth having on a unit-stride delta stream), then the token stream is
canonical-Huffman coded with a per-block book embedded in the stream.
Match lengths are bucketed exactly like deflate's length codes: a small
token alphabet of geometric buckets, each followed by plain extra bits.

On long-run fields this lands *below* the per-symbol entropy bound that
caps the plain Huffman backends; on run-free fields it degrades to plain
Huffman plus a few header bytes.  The stream (format ``RLZ1``) is
self-contained — no external codebook, so shared-tree scheduling does
not apply — and rides in the v3 block payload under
``format_id = FORMAT_DEFLATE``.

Everything is vectorized: run detection via ``np.diff``, bucket lookup
via ``searchsorted``, token coding through the slab Huffman encoder, and
decode through the chunk-lockstep numpy backend plus a windowed
extra-bits gather.  Only multi-piece matches (runs past ~66 k symbols)
touch a Python loop.
"""

from __future__ import annotations

import struct

import numpy as np

from .. import huffman
from .base import (
    CodecBackend,
    EncodedStream,
    FORMAT_DEFLATE,
)
from .vectorized import NumpyBackend

__all__ = ["DeflateBackend"]

_MAGIC = b"RLZ1"
_HEADER_FMT = "<4sIIIII"  # magic, tokens, token bits, extra bits,
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)  # book len, num chunks
_TOKEN_CHUNK = 256

#: A match replaces at least this many symbols (1 literal + match >= 3).
_MIN_RUN = 4

#: Match-length buckets, deflate-style: ``_LEN_BASE[b]`` is bucket ``b``'s
#: smallest plain length; ``_LEN_EXTRA[b]`` plain extra bits follow the
#: token to pick the exact length.  Last bucket spans up to 66562.
_LEN_BASE = np.array(
    [3, 4, 5, 6, 7, 8, 9, 10,
     11, 15, 19, 27, 35, 51, 67, 99, 131, 195, 259, 387, 515, 771, 1027],
    dtype=np.int64,
)
_LEN_EXTRA = np.array(
    [0, 0, 0, 0, 0, 0, 0, 0,
     2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 16],
    dtype=np.int64,
)
_NUM_LEN_TOKENS = int(_LEN_BASE.size)
_MAX_MATCH = int(_LEN_BASE[-1] + (1 << _LEN_EXTRA[-1]) - 1)


def _tokenize(flat: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    """Turn a symbol stream into (tokens, extra values, num_literals).

    ``tokens[i] < S`` is a literal; ``tokens[i] = S + b`` a match in
    length bucket ``b`` whose exact length is ``_LEN_BASE[b] +
    extras[i]``.  ``extras`` is aligned with ``tokens`` (0 for literals).
    """
    n = flat.size
    num_symbols = int(flat.max()) + 1
    change = np.flatnonzero(np.diff(flat.astype(np.int64)) != 0) + 1
    run_starts = np.concatenate(([0], change))
    run_lens = np.diff(np.concatenate((run_starts, [n])))

    big = run_lens >= _MIN_RUN
    big_starts = run_starts[big]
    big_lens = run_lens[big]

    # Literals: every symbol not covered by a match — i.e. everything
    # except positions 1.. of each big run.
    covered_delta = np.zeros(n + 1, dtype=np.int64)
    np.add.at(covered_delta, big_starts + 1, 1)
    np.add.at(covered_delta, big_starts + big_lens, -1)
    keep = np.cumsum(covered_delta[:-1]) == 0
    lit_pos = np.flatnonzero(keep)
    lit_tok = flat[lit_pos].astype(np.int64)

    # Matches: one piece per big run in the overwhelmingly common case.
    single = big_lens - 1 <= _MAX_MATCH
    match_pos_list = [big_starts[single] + 1]
    match_len_list = [big_lens[single] - 1]
    for start, run in zip(
        big_starts[~single].tolist(), big_lens[~single].tolist()
    ):
        rem = run - 1
        anchor = start + 1
        while rem:
            piece = min(rem, _MAX_MATCH)
            if 0 < rem - piece < _LEN_BASE[0]:
                piece = rem - int(_LEN_BASE[0])
            match_pos_list.append(np.array([anchor], dtype=np.int64))
            match_len_list.append(np.array([piece], dtype=np.int64))
            anchor += piece
            rem -= piece
    match_pos = np.concatenate(match_pos_list)
    match_len = np.concatenate(match_len_list)
    bucket = np.searchsorted(_LEN_BASE, match_len, side="right") - 1
    match_tok = num_symbols + bucket
    match_extra = match_len - _LEN_BASE[bucket]

    # Interleave literals and matches back into stream order.  Every
    # match anchor position is covered, so positions are all distinct.
    order = np.argsort(
        np.concatenate((lit_pos, match_pos)), kind="stable"
    )
    tokens = np.concatenate((lit_tok, match_tok))[order]
    extras = np.concatenate(
        (np.zeros(lit_tok.size, dtype=np.int64), match_extra)
    )[order]
    return tokens, extras, num_symbols


class DeflateBackend(CodecBackend):
    """Run-collapsing LZ77+Huffman codec with an embedded token book."""

    name = "deflate"
    format_id = FORMAT_DEFLATE
    uses_codebook = False
    # Token alphabets stay small (symbols + 23 length buckets), so the
    # embedded book is length-limited for the lockstep decoder too.
    #: Measured on the Nyx-like bench fields: runs collapse the token
    #: count well below the symbol count, landing bits/symbol under the
    #: per-symbol entropy bound.
    ratio_entropy_factor = 0.85
    fixed_overhead_bytes = 160  # block header + RLZ1 header + RCB2 book
    throughput_factor = 0.8  # tokenize + token coding vs plain Huffman
    builds_tree = True  # per-block token tree

    def encode(
        self,
        symbols: np.ndarray,
        codebook: huffman.Codebook | None = None,
        chunk_size: int = 0,
    ) -> EncodedStream:
        # ``codebook``/``chunk_size`` are part of the backend contract but
        # unused: the stream embeds its own token book and chunk index.
        flat = np.ascontiguousarray(symbols).reshape(-1)
        if flat.size == 0:
            stream = _MAGIC + struct.pack("<IIIII", 0, 0, 0, 0, 0)
            return EncodedStream(
                data=stream,
                nbits=8 * len(stream),
                chunk_size=0,
                chunk_offsets=np.zeros(0, dtype=np.uint64),
            )
        if np.any(flat < 0):
            raise ValueError("deflate backend encodes unsigned symbols")
        tokens, extras, num_symbols = _tokenize(flat)
        num_tokens = int(tokens.size)
        if num_symbols + _NUM_LEN_TOKENS > np.iinfo(np.uint16).max + 1:
            raise ValueError(
                f"deflate backend supports symbol alphabets up to "
                f"{np.iinfo(np.uint16).max + 1 - _NUM_LEN_TOKENS}, "
                f"got {num_symbols}"
            )
        hist = np.bincount(
            tokens, minlength=num_symbols + _NUM_LEN_TOKENS
        )
        max_length = (
            huffman.TABLE_DECODE_MAX_LEN
            if hist.size <= 1 << huffman.TABLE_DECODE_MAX_LEN
            else NumpyBackend.decode_max_length
        )
        book = huffman.build_codebook(hist, max_length=max_length)
        book_blob = huffman.codebook_to_bytes(book)
        token_bytes, token_nbits, offsets = huffman.encode_with_offsets(
            tokens, book, _TOKEN_CHUNK
        )
        match = tokens >= num_symbols
        widths = np.where(
            match, _LEN_EXTRA[np.where(match, tokens - num_symbols, 0)], 0
        )
        extra_bytes, extra_nbits = huffman.pack_bits(
            extras[widths > 0], widths[widths > 0]
        )
        stream = (
            struct.pack(
                _HEADER_FMT,
                _MAGIC,
                num_tokens,
                token_nbits,
                extra_nbits,
                len(book_blob),
                offsets.size,
            )
            + book_blob
            + offsets.astype(np.uint32).tobytes()
            + token_bytes
            + extra_bytes
        )
        return EncodedStream(
            data=stream,
            nbits=8 * len(stream),
            chunk_size=0,
            chunk_offsets=np.zeros(0, dtype=np.uint64),
        )

    def decode(
        self,
        data: bytes,
        nbits: int,
        count: int,
        codebook: huffman.Codebook | None = None,
        chunk_size: int = 0,
        chunk_offsets: np.ndarray | None = None,
    ) -> np.ndarray:
        if len(data) < _HEADER_SIZE:
            raise ValueError(
                f"truncated deflate stream: {len(data)} bytes cannot "
                "hold the header"
            )
        (
            magic,
            num_tokens,
            token_nbits,
            extra_nbits,
            book_len,
            num_chunks,
        ) = struct.unpack(_HEADER_FMT, data[:_HEADER_SIZE])
        if magic != _MAGIC:
            raise ValueError("corrupt deflate stream: bad magic")
        if num_tokens == 0:
            if count != 0:
                raise ValueError(
                    "corrupt deflate stream: no tokens but "
                    f"{count} symbols are declared"
                )
            return np.zeros(0, dtype=np.uint16)

        def take(offset: int, nbytes: int, what: str) -> bytes:
            if len(data) < offset + nbytes:
                raise ValueError(
                    f"truncated deflate stream: {what} needs bytes "
                    f"{offset}..{offset + nbytes} but the stream has "
                    f"only {len(data)}"
                )
            return data[offset : offset + nbytes]

        offset = _HEADER_SIZE
        book = huffman.codebook_from_bytes(
            take(offset, book_len, "token codebook")
        )
        offset += book_len
        offsets = np.frombuffer(
            take(offset, 4 * num_chunks, "token chunk offsets"),
            dtype=np.uint32,
        ).astype(np.int64)
        offset += 4 * num_chunks
        token_bytes = take(
            offset, (token_nbits + 7) // 8, "token bits"
        )
        offset += (token_nbits + 7) // 8
        extra_bytes = take(
            offset, (extra_nbits + 7) // 8, "match extra bits"
        )

        num_symbols = book.num_symbols - _NUM_LEN_TOKENS
        if num_symbols < 1:
            raise ValueError(
                "corrupt deflate stream: token codebook smaller than "
                "the length-token alphabet"
            )
        tokens = (
            NumpyBackend()
            .decode(
                token_bytes,
                token_nbits,
                num_tokens,
                book,
                _TOKEN_CHUNK,
                offsets,
            )
            .astype(np.int64)
        )
        literal = tokens < num_symbols
        # Decoded tokens never exceed the book, so match buckets are in
        # range by construction; clamp literals' negatives for indexing.
        buckets = np.where(literal, 0, tokens - num_symbols)
        widths = np.where(literal, 0, _LEN_EXTRA[buckets])
        extras = np.zeros(tokens.size, dtype=np.int64)
        has_extra = widths > 0
        picked = huffman.unpack_bits(extra_bytes, widths[has_extra])
        if int(widths[has_extra].sum()) != extra_nbits:
            raise ValueError(
                "corrupt deflate stream: extra bits disagree with the "
                "decoded match tokens"
            )
        extras[has_extra] = picked

        # A match copies the nearest preceding literal's value.
        src = np.where(literal, np.arange(tokens.size), -1)
        np.maximum.accumulate(src, out=src)
        if int(src[0]) < 0:
            raise ValueError(
                "corrupt deflate stream: match token with no preceding "
                "literal"
            )
        counts = np.where(literal, 1, _LEN_BASE[buckets] + extras)
        total = int(counts.sum())
        if total != count:
            raise ValueError(
                f"corrupt deflate stream: tokens expand to {total} "
                f"symbols but {count} are declared"
            )
        values = tokens[src]
        return np.repeat(values, counts).astype(np.uint16)
