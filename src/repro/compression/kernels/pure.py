"""Reference backend: the per-symbol Python encode/decode loops.

This is the behavioural baseline the vectorized backend is tested
against — bit-for-bit identical output on every valid stream, the same
``ValueError`` on every corrupt one.  It ignores the chunk index (the
stream is one contiguous bit sequence) apart from sanity-checking it,
and its encoder is the per-symbol bit-accumulator loop the slab
encoder's speedup is benchmarked against (``codec.encode.*``).
"""

from __future__ import annotations

import numpy as np

from .. import huffman
from .base import (
    DEFAULT_CHUNK_SIZE,
    CodecBackend,
    EncodedStream,
    expected_num_chunks,
)

__all__ = ["PureBackend"]


class PureBackend(CodecBackend):
    """Sequential canonical/table codec (no numpy in the hot loops)."""

    name = "pure"

    def encode(
        self,
        symbols: np.ndarray,
        codebook: huffman.Codebook | None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> EncodedStream:
        if codebook is None:
            raise ValueError(
                f"backend {self.name!r} encodes against a codebook"
            )
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        flat = symbols.reshape(-1)
        data, nbits = huffman.encode_reference(flat, codebook)
        offsets = huffman._offsets_reference(flat, codebook, chunk_size)
        return EncodedStream(
            data=data,
            nbits=nbits,
            chunk_size=chunk_size,
            chunk_offsets=offsets,
        )

    def decode(
        self,
        data: bytes,
        nbits: int,
        count: int,
        codebook: huffman.Codebook | None,
        chunk_size: int = 0,
        chunk_offsets: np.ndarray | None = None,
    ) -> np.ndarray:
        if codebook is None:
            raise ValueError(
                f"backend {self.name!r} decodes against a codebook"
            )
        if chunk_offsets is not None:
            expected_num_chunks(count, chunk_size, chunk_offsets)
        return huffman.decode(data, nbits, count, codebook)
