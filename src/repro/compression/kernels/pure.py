"""Reference backend: the per-symbol Python decode loop.

This is the behavioural baseline the vectorized backend is tested
against — bit-for-bit identical output on every valid stream, the same
``ValueError`` on every corrupt one.  It ignores the chunk index (the
stream is one contiguous bit sequence) apart from sanity-checking it.
"""

from __future__ import annotations

import numpy as np

from .. import huffman
from .base import CodecBackend, expected_num_chunks

__all__ = ["PureBackend"]


class PureBackend(CodecBackend):
    """Sequential canonical/table decoder (no numpy in the hot loop)."""

    name = "pure"

    def decode(
        self,
        data: bytes,
        nbits: int,
        count: int,
        codebook: huffman.Codebook,
        chunk_size: int = 0,
        chunk_offsets: np.ndarray | None = None,
    ) -> np.ndarray:
        if chunk_offsets is not None:
            expected_num_chunks(count, chunk_size, chunk_offsets)
        return huffman.decode(data, nbits, count, codebook)
