"""Numpy-vectorized batch Huffman codec.

Encoding comes from the slab encoder in :mod:`repro.compression.huffman`
(inherited through :meth:`CodecBackend.encode` → ``encode_chunked``):
per-slab length gathers, a cumulative-sum bit placement that ORs each
code's bits into a preallocated buffer, and chunk offsets read straight
off the slab-local cumsums.  Working memory is bounded by the slab size
no matter how long the stream is, and the output is bit-identical to the
``pure`` backend's per-symbol loop.

The per-symbol decode loop is inherently sequential *within* a bit
stream: a symbol's start position is only known once the previous symbol's
length is.  The chunk index recorded at encode time breaks exactly that
dependency — every chunk's start bit is in the v2 block header, so the
decoder advances all chunks in lockstep: step ``i`` decodes symbol ``i``
of *every* chunk with dense-table gathers.  The Python-level loop runs
``chunk_size`` times instead of ``count`` times; everything inside it is
numpy over ``num_chunks``-wide arrays.

Bit windows are read through a precomputed 24-bit sliding-word array
(``w24[i]`` holds bytes ``i..i+2`` big-endian), so fetching the next
``max_length`` bits at any bit position is a single gather plus a shift —
no ``np.unpackbits`` blow-up of the whole stream into one byte per bit.
This caps the fast path at 16-bit codes (24 window bits minus up to 7
alignment bits); deeper codebooks — which the SZ layer never produces,
its books are length-limited to 12 — fall back to the reference walk.
"""

from __future__ import annotations

import numpy as np

from .. import huffman
from .base import CodecBackend, expected_num_chunks

__all__ = ["NumpyBackend"]

_WINDOW_BITS = 24


class NumpyBackend(CodecBackend):
    """Chunk-parallel dense-table decoder."""

    name = "numpy"
    decode_max_length = _WINDOW_BITS - 8  # 16: window minus bit alignment

    def decode(
        self,
        data: bytes,
        nbits: int,
        count: int,
        codebook: huffman.Codebook | None,
        chunk_size: int = 0,
        chunk_offsets: np.ndarray | None = None,
    ) -> np.ndarray:
        if codebook is None:
            raise ValueError(
                f"backend {self.name!r} decodes against a codebook"
            )
        if count == 0:
            return np.zeros(0, dtype=np.uint16)
        depth = codebook.max_length
        if depth == 0:
            raise ValueError(
                "corrupt Huffman stream: codebook has no codes but "
                f"{count} symbols are declared"
            )
        if chunk_offsets is None or depth > self.decode_max_length:
            # v1 blobs carry no chunk index; pathological codebooks
            # exceed the 24-bit window.  Both take the reference path.
            return huffman.decode(data, nbits, count, codebook)
        num_chunks = expected_num_chunks(count, chunk_size, chunk_offsets)
        if 8 * len(data) < nbits:
            raise ValueError(
                f"corrupt Huffman stream: {len(data)} bytes cannot hold "
                f"the declared {nbits} bits"
            )

        symbols_table, lengths_table = huffman.dense_decode_tables(codebook)
        lengths_table = lengths_table.astype(np.int64)

        # w24[i] = bytes i..i+2, big-endian; 3 zero bytes of padding keep
        # the windows of the final bit positions in bounds.
        raw = np.frombuffer(data, dtype=np.uint8)
        padded = np.concatenate(
            [raw, np.zeros(3, dtype=np.uint8)]
        ).astype(np.uint32)
        w24 = (padded[:-2] << 8 | padded[1:-1]) << 8 | padded[2:]

        pos = chunk_offsets.astype(np.int64)
        ends = np.concatenate(
            [pos[1:], np.array([nbits], dtype=np.int64)]
        )
        if np.any(pos > ends):
            raise ValueError(
                "corrupt Huffman stream: chunk offsets not increasing"
            )
        last_count = count - (num_chunks - 1) * chunk_size

        out = np.zeros((num_chunks, chunk_size), dtype=np.uint16)
        base_shift = _WINDOW_BITS - depth
        mask = (1 << depth) - 1
        # Lockstep walk.  No per-step validity checks: an invalid prefix
        # has table length 0, so a corrupt chunk's cursor stalls (or,
        # clamped at ``nbits``, overshoots its range) and the final
        # offset comparison below rejects the stream.  Clamping keeps
        # every gather in bounds without branching.
        active = pos
        for step in range(chunk_size):
            if step == last_count:
                # Only the (possibly short) final chunk goes idle early;
                # freeze it by shrinking the working view once.
                active = pos[:-1]
            prefix = (
                w24[active >> 3] >> (base_shift - (active & 7))
            ) & mask
            out[: active.size, step] = symbols_table[prefix]
            np.minimum(
                active + lengths_table[prefix], nbits, out=active
            )
        if not np.array_equal(pos, ends):
            raise ValueError(
                "corrupt Huffman stream: decoded bits disagree with the "
                "declared chunk offsets"
            )
        return out.reshape(-1)[:count]
