"""Zlib-only fast-path backend.

No per-block Huffman tree at all: quantization codes are cast to their
narrowest byte width and handed to zlib level 1 (which brings its own
static-ish deflate coding).  Compression skips histogramming, tree
construction, and codebook serialization entirely — the cheapest encode
in the registry, at a modest ratio cost versus a tuned canonical book.
The stream (format ``RZL1``) is self-contained and rides in the v3
block payload under ``format_id = FORMAT_ZLIB``.

Note the SZ layer's outer lossless pass (also zlib) sees this stream as
incompressible and stores it essentially as-is, so the double wrap costs
bytes only in the per-pass headers.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from .. import huffman
from .base import CodecBackend, EncodedStream, FORMAT_ZLIB

__all__ = ["ZlibBackend"]

_MAGIC = b"RZL1"
_HEADER_FMT = "<4sBQ"  # magic, byte width, symbol count
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)


class ZlibBackend(CodecBackend):
    """Tree-free codec: narrowed symbol bytes through zlib level 1."""

    name = "zlib"
    format_id = FORMAT_ZLIB
    uses_codebook = False
    #: zlib's fixed-ish coding is looser than a tuned canonical book.
    ratio_entropy_factor = 1.15
    fixed_overhead_bytes = 32  # block header + RZL1 header + zlib wrapper
    throughput_factor = 2.0  # no histogram/tree/codebook work at all
    builds_tree = False

    def encode(
        self,
        symbols: np.ndarray,
        codebook: huffman.Codebook | None = None,
        chunk_size: int = 0,
    ) -> EncodedStream:
        flat = np.ascontiguousarray(symbols).reshape(-1)
        if flat.size and np.any(flat < 0):
            raise ValueError("zlib backend encodes unsigned symbols")
        width = 1 if (flat.size == 0 or int(flat.max()) < 256) else 2
        raw = flat.astype(np.uint8 if width == 1 else np.dtype("<u2"))
        stream = (
            struct.pack(_HEADER_FMT, _MAGIC, width, flat.size)
            + zlib.compress(raw.tobytes(), 1)
        )
        return EncodedStream(
            data=stream,
            nbits=8 * len(stream),
            chunk_size=0,
            chunk_offsets=np.zeros(0, dtype=np.uint64),
        )

    def decode(
        self,
        data: bytes,
        nbits: int,
        count: int,
        codebook: huffman.Codebook | None = None,
        chunk_size: int = 0,
        chunk_offsets: np.ndarray | None = None,
    ) -> np.ndarray:
        if len(data) < _HEADER_SIZE:
            raise ValueError(
                f"truncated zlib stream: {len(data)} bytes cannot hold "
                "the header"
            )
        magic, width, declared = struct.unpack(
            _HEADER_FMT, data[:_HEADER_SIZE]
        )
        if magic != _MAGIC:
            raise ValueError("corrupt zlib stream: bad magic")
        if width not in (1, 2):
            raise ValueError(
                f"corrupt zlib stream: unsupported symbol width {width}"
            )
        if declared != count:
            raise ValueError(
                f"corrupt zlib stream: {declared} symbols stored but "
                f"{count} are declared by the block"
            )
        try:
            raw = zlib.decompress(data[_HEADER_SIZE:])
        except zlib.error as exc:
            raise ValueError(
                f"corrupt zlib stream: inflate failed ({exc})"
            ) from None
        if len(raw) != width * count:
            raise ValueError(
                f"corrupt zlib stream: {len(raw)} payload bytes for "
                f"{count} symbols of width {width}"
            )
        dtype = np.uint8 if width == 1 else np.dtype("<u2")
        return np.frombuffer(raw, dtype=dtype).astype(np.uint16)
