"""Final lossless stage (SZ applies a general-purpose lossless pass last).

zlib stands in for SZ3's zstd stage: it removes the residual redundancy the
Huffman stage leaves (long zero runs in the packed stream, the outlier
arrays).  Level 1 is used — the stage exists for ratio fidelity, not to
dominate runtime.
"""

from __future__ import annotations

import zlib

__all__ = ["lossless_compress", "lossless_decompress"]

_LEVEL = 1


def lossless_compress(payload: bytes) -> bytes:
    """Apply the final lossless stage to an encoded payload."""
    return zlib.compress(payload, _LEVEL)


def lossless_decompress(payload: bytes) -> bytes:
    """Invert :func:`lossless_compress`."""
    return zlib.decompress(payload)
