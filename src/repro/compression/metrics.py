"""Quality and size metrics for lossy compression (Section 2.2).

The two metric families the paper uses: compression ratio / bit-rate, and
distortion (PSNR over the value range, as is standard for scientific data).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["compression_ratio", "bit_rate", "psnr", "max_abs_error", "nrmse"]


def compression_ratio(original_bytes: int, compressed_bytes: int) -> float:
    """Original size over compressed size; ``inf`` for empty output."""
    if original_bytes < 0 or compressed_bytes < 0:
        raise ValueError("sizes must be non-negative")
    if compressed_bytes == 0:
        return math.inf if original_bytes > 0 else 1.0
    return original_bytes / compressed_bytes


def bit_rate(original_count: int, compressed_bytes: int) -> float:
    """Average bits stored per original value."""
    if original_count == 0:
        return 0.0
    return 8.0 * compressed_bytes / original_count


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Point-wise maximum absolute error (the bound SZ guarantees)."""
    if original.size == 0:
        return 0.0
    return float(
        np.max(np.abs(original.astype(np.float64) - reconstructed))
    )


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio over the data's value range, in dB."""
    orig = original.astype(np.float64)
    value_range = float(orig.max() - orig.min()) if orig.size else 0.0
    mse = float(np.mean((orig - reconstructed) ** 2)) if orig.size else 0.0
    if mse == 0.0:
        return math.inf
    if value_range == 0.0:
        return -math.inf
    return 20.0 * math.log10(value_range) - 10.0 * math.log10(mse)


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root-mean-square error normalised by the value range."""
    orig = original.astype(np.float64)
    if orig.size == 0:
        return 0.0
    value_range = float(orig.max() - orig.min())
    rmse = math.sqrt(float(np.mean((orig - reconstructed) ** 2)))
    if value_range == 0.0:
        return 0.0 if rmse == 0.0 else math.inf
    return rmse / value_range
