"""Lorenzo prediction on prequantized integers (the cuSZ "dual-quant" form).

Classic SZ predicts each value from previously *decoded* neighbours, which
serializes the scan.  The GPU formulation used by cuSZ — from the same
research group as this paper — first quantizes every value onto the
error-bound grid ("prequantization"), then applies the first-order Lorenzo
transform *to the resulting integers*.  Integer Lorenzo is exactly
invertible, so the error bound established by prequantization survives the
round trip, and both directions vectorize:

* forward:  repeated ``np.diff`` (with a zero prepended) along each axis;
* inverse:  repeated ``np.cumsum`` along each axis, in reverse order.

The transform concentrates smooth fields' integer values near zero, which
is what makes the subsequent Huffman stage effective.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lorenzo_forward", "lorenzo_inverse"]


def lorenzo_forward(quantized: np.ndarray) -> np.ndarray:
    """First-order Lorenzo deltas of an integer array (any rank >= 1)."""
    if quantized.ndim < 1:
        raise ValueError("lorenzo_forward requires at least rank 1")
    deltas = quantized
    for axis in range(quantized.ndim):
        deltas = np.diff(deltas, axis=axis, prepend=_zero_slab(deltas, axis))
    return deltas


def lorenzo_inverse(deltas: np.ndarray) -> np.ndarray:
    """Exact inverse of :func:`lorenzo_forward`."""
    if deltas.ndim < 1:
        raise ValueError("lorenzo_inverse requires at least rank 1")
    values = deltas
    for axis in reversed(range(deltas.ndim)):
        values = np.cumsum(values, axis=axis)
    return values


def _zero_slab(array: np.ndarray, axis: int) -> np.ndarray:
    shape = list(array.shape)
    shape[axis] = 1
    return np.zeros(shape, dtype=array.dtype)
