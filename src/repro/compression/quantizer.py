"""Error-bounded prequantization and quantization-code mapping.

Two responsibilities, mirroring the predictor/quantizer split of SZ:

1. **Prequantization** maps floats onto the absolute-error-bound grid:
   ``q = round(x / (2 * eb))`` so that ``|x - 2 * eb * q| <= eb``.
2. **Code mapping** clips Lorenzo deltas into a fixed alphabet of
   ``2 * radius`` quantization codes centred on zero; deltas outside the
   radius become *outliers* stored verbatim (Section 4.3 relies on this
   outlier channel to make a shared Huffman tree safe: any value the
   shared tree cannot code is simply routed to the outlier list).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantizedDeltas", "prequantize", "dequantize", "encode_codes", "decode_codes"]

#: Default half-width of the quantization-code alphabet.  256 symbols keep
#: Huffman code words short and decode tables small.
DEFAULT_RADIUS = 128


@dataclass
class QuantizedDeltas:
    """Lorenzo deltas split into in-range codes and outliers.

    Attributes:
        codes: uint16 array, same shape as the input; in-range deltas are
            stored as ``delta + radius``; outlier positions hold the
            sentinel code ``2 * radius``.
        radius: alphabet half-width used for the mapping.
        outlier_positions: flat indices of out-of-range deltas.
        outlier_values: their original int64 delta values.
    """

    codes: np.ndarray
    radius: int
    outlier_positions: np.ndarray
    outlier_values: np.ndarray

    @property
    def num_symbols(self) -> int:
        """Alphabet size including the outlier sentinel."""
        return 2 * self.radius + 1

    @property
    def outlier_fraction(self) -> float:
        if self.codes.size == 0:
            return 0.0
        return self.outlier_positions.size / self.codes.size


def prequantize(values: np.ndarray, error_bound: float) -> np.ndarray:
    """Snap ``values`` to the ``2 * error_bound`` grid, returning int64.

    Guarantees ``|values - dequantize(result)| <= error_bound`` (up to
    float rounding of the reconstruction itself).
    """
    if error_bound <= 0:
        raise ValueError("error_bound must be positive")
    with np.errstate(over="ignore", invalid="ignore"):
        grid = np.rint(values / (2.0 * error_bound))
    # int64 wraps silently on cast, turning a huge value / tiny bound
    # into garbage that violates the error bound without any error.
    # (2**63 - 1 is not float64-representable; the nearest exact power
    # 2**63 is the first magnitude that would overflow.)
    limit = float(2**63)
    bad = ~np.isfinite(grid) | (np.abs(grid) >= limit)
    if np.any(bad):
        worst = np.asarray(values).reshape(-1)[
            int(np.flatnonzero(bad.reshape(-1))[0])
        ]
        raise ValueError(
            f"value {worst!r} overflows the int64 quantization grid at "
            f"error bound {error_bound:g}; use a larger bound or scale "
            "the data"
        )
    return grid.astype(np.int64)


def dequantize(quantized: np.ndarray, error_bound: float) -> np.ndarray:
    """Reconstruct floats from grid indices."""
    return quantized.astype(np.float64) * (2.0 * error_bound)


def encode_codes(
    deltas: np.ndarray, radius: int = DEFAULT_RADIUS
) -> QuantizedDeltas:
    """Map integer deltas to the bounded code alphabet, extracting outliers."""
    if radius < 1:
        raise ValueError("radius must be at least 1")
    flat = deltas.reshape(-1)
    # The alphabet covers deltas in [-radius, radius): code 0 encodes
    # exactly -radius (|delta| < radius would wrongly route it to the
    # outlier channel and leave code 0 of the 2*radius+1 alphabet unused).
    in_range = (flat >= -radius) & (flat < radius)
    codes = np.empty(flat.shape, dtype=np.uint16)
    codes[in_range] = (flat[in_range] + radius).astype(np.uint16)
    codes[~in_range] = 2 * radius  # outlier sentinel
    positions = np.flatnonzero(~in_range)
    return QuantizedDeltas(
        codes=codes.reshape(deltas.shape),
        radius=radius,
        outlier_positions=positions,
        outlier_values=flat[positions].copy(),
    )


def decode_codes(quantized: QuantizedDeltas) -> np.ndarray:
    """Invert :func:`encode_codes`, reinserting outliers."""
    codes = quantized.codes.reshape(-1)
    deltas = codes.astype(np.int64) - quantized.radius
    deltas[quantized.outlier_positions] = quantized.outlier_values
    return deltas.reshape(quantized.codes.shape)
