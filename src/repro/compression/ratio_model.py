"""Pre-compression prediction of ratio and compression time (Section 4.4).

The framework must know, *before* compressing, (a) each block's compressed
size — to reserve its offset in the shared file and to balance I/O — and
(b) each compression task's duration — to schedule it.  The paper uses the
ratio-quality model of Jin et al. (ICDE '22) and the throughput model of
Jin et al. (SC '22); we reproduce their structure:

* **ratio**: quantize a strided sample of the block, take the histogram,
  and price it either with the shared tree's actual code lengths or with
  its Shannon entropy (a tight proxy for an optimal per-block tree), plus
  outlier and header costs and a calibrated lossless-stage factor;
* **time**: a throughput constant plus a per-block setup cost, with the
  Huffman-tree build added when no shared tree is used — this constant
  term is exactly why tiny blocks hurt without the shared tree (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import huffman
from .sz import SZCompressor

__all__ = ["RatioEstimate", "RatioModel", "CompressionThroughputModel"]

#: Bits charged per outlier (flat index + raw delta in the outlier arrays).
OUTLIER_BITS = 128.0


@dataclass(frozen=True)
class RatioEstimate:
    """Predicted compression outcome for one block."""

    ratio: float
    compressed_nbytes: int
    bits_per_value: float
    outlier_fraction: float


class RatioModel:
    """Sample-based compression-ratio estimator."""

    def __init__(
        self,
        compressor: SZCompressor,
        sample_limit: int = 65536,
        lossless_factor: float = 0.9,
        header_bytes: int | None = None,
        safety_factor: float = 1.10,
    ) -> None:
        # header_bytes overrides the per-block overhead estimate; by
        # default it comes from the backend (its fixed_overhead_bytes)
        # plus the actual serialized size of the codebook the sample
        # histogram yields — the run-length books v3 blocks embed are a
        # few dozen bytes, not the ~260 B the flat layout cost.
        self.compressor = compressor
        self.sample_limit = sample_limit
        self.lossless_factor = lossless_factor
        self.header_bytes = header_bytes
        # Reservations use a small safety margin so overflow stays the
        # "rare occurrence" Section 4.4 describes; the cost is slack in
        # the shared file, not coordination.
        self.safety_factor = safety_factor

    def _sample(self, values: np.ndarray) -> np.ndarray:
        """A contiguous-chunk sample preserving Lorenzo delta statistics."""
        if values.size <= self.sample_limit:
            return values
        # Take evenly spaced slabs along axis 0 so in-slab neighbour
        # relationships (which drive the delta histogram) are intact.
        rows = values.shape[0] if values.ndim > 1 else values.size
        row_values = values.size // rows
        want_rows = max(1, self.sample_limit // max(1, row_values))
        stride = max(1, rows // want_rows)
        if values.ndim == 1:
            return values[: self.sample_limit]
        return values[::stride][:want_rows]

    def predict(
        self,
        values: np.ndarray,
        error_bound: float,
        shared_codebook: huffman.Codebook | None = None,
    ) -> RatioEstimate:
        """Estimate the compressed size of ``values`` without compressing."""
        sample = np.ascontiguousarray(self._sample(values))
        hist = self.compressor.histogram(sample, error_bound)
        total = int(hist.sum())
        if total == 0:
            return RatioEstimate(1.0, values.nbytes, 8.0 * values.itemsize, 0.0)

        backend = self.compressor.backend
        sentinel = self.compressor.sentinel
        outliers = int(hist[sentinel])
        codebook_bytes = 0
        if shared_codebook is not None and backend.uses_codebook:
            # Escaped symbols are rerouted to the sentinel, so each pays
            # the sentinel's code length *and* the outlier channel.
            bits, escapes = huffman.estimate_encoded_bits(
                hist, shared_codebook, sentinel=sentinel
            )
            outliers += escapes
            coded_bits = float(bits)
        elif backend.uses_codebook:
            # Native tree: price the sample histogram with the codebook
            # it would actually get, and the codebook blob at the size
            # it actually serializes to.
            codebook = huffman.build_codebook(
                hist,
                force_symbols=(sentinel,),
                max_length=backend.build_max_length,
            )
            bits, _ = huffman.estimate_encoded_bits(hist, codebook)
            # The full block's histogram drifts from the sample's, and
            # its (slightly different) codebook prices it a bit worse
            # than the sample's codebook prices the sample.
            coded_bits = float(bits) * 1.03
            codebook_bytes = len(huffman.codebook_to_bytes(codebook))
        else:
            # Self-coding formats: entropy scaled by the backend's
            # measured coding efficiency (deflate lands under the
            # per-symbol bound on runs; zlib's coding is looser).
            probs = hist[hist > 0] / total
            entropy = float(-(probs * np.log2(probs)).sum())
            coded_bits = (
                max(entropy, 1.0) * total * backend.ratio_entropy_factor
            )

        payload_bits = coded_bits + outliers * OUTLIER_BITS
        payload_bytes = payload_bits / 8.0 * self.lossless_factor
        bits_per_value = payload_bits / total

        original = values.nbytes
        # Huffman blocks carry one uint32 bit offset per chunk in the
        # header; self-contained formats carry no chunk index.
        chunk_bytes = (
            4 * -(-values.size // self.compressor.chunk_size)
            if backend.uses_codebook
            else 0
        )
        overhead = (
            self.header_bytes
            if self.header_bytes is not None
            else backend.fixed_overhead_bytes + codebook_bytes
        )
        predicted = int(
            (
                original * (payload_bytes / (total * values.itemsize))
            )
            * self.safety_factor
            + overhead
            + chunk_bytes
        )
        predicted = max(predicted, overhead)
        ratio = original / predicted if predicted else 1.0
        return RatioEstimate(
            ratio=ratio,
            compressed_nbytes=predicted,
            bits_per_value=bits_per_value,
            outlier_fraction=outliers / total,
        )


@dataclass(frozen=True)
class CompressionThroughputModel:
    """Calibrated duration model for compression tasks.

    The defaults approximate SZ3 on one POWER9 core (the paper compresses
    on CPU cores while GPUs compute): ~250 MB/s steady-state throughput, a
    fixed per-block setup cost, and a constant Huffman-tree build cost
    paid only when no shared tree is available (Section 4.3 observes the
    build time is nearly independent of block size because the alphabet is
    fixed).
    """

    throughput_bytes_per_s: float = 250e6
    setup_s: float = 0.0005
    tree_build_s: float = 0.004

    @classmethod
    def for_backend(
        cls,
        backend,
        throughput_bytes_per_s: float = 250e6,
        setup_s: float = 0.0005,
        tree_build_s: float = 0.004,
    ) -> "CompressionThroughputModel":
        """Scale the baseline constants by a codec backend's declared
        characteristics: relative throughput, and whether compression
        builds a per-block tree at all (the zlib fast path never pays
        ``tree_build_s``, shared tree or not)."""
        return cls(
            throughput_bytes_per_s=(
                throughput_bytes_per_s * backend.throughput_factor
            ),
            setup_s=setup_s,
            tree_build_s=tree_build_s if backend.builds_tree else 0.0,
        )

    def compression_time(
        self, nbytes: int, shared_tree: bool = True
    ) -> float:
        """Predicted duration of compressing ``nbytes`` of raw data."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        t = self.setup_s + nbytes / self.throughput_bytes_per_s
        if not shared_tree:
            t += self.tree_build_s
        return t
