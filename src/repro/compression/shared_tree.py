"""Shared Huffman tree across blocks and iterations (Section 4.3).

Building a Huffman tree costs roughly constant time regardless of block
size (the alphabet is fixed), so for small fine-grained blocks the build
dominates compression.  The fix: build one tree per process from the
*previous* iteration's quantization-code histogram and reuse it for every
block of the current iteration.  Values the shared tree cannot code fall
back to the outlier channel, so correctness never depends on tree
freshness — only the compression ratio degrades as the data drifts
(Figure 6 quantifies this).

:class:`SharedTreeManager` owns the lifecycle: accumulate histograms while
an iteration compresses, then :meth:`end_iteration` rebuilds the tree for
the next one (or keeps it, per the configured rebuild period).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import huffman
from .kernels import CodecBackend, resolve_backend

__all__ = ["SharedTreeManager", "degradation_ratio"]


@dataclass
class _TreeState:
    codebook: huffman.Codebook
    built_at_iteration: int


class SharedTreeManager:
    """Per-process lifecycle manager for the shared Huffman tree.

    Args:
        num_symbols: alphabet size (``2 * radius + 1`` including the
            outlier sentinel).
        sentinel: the outlier-escape symbol; always granted a code so any
            block can be encoded with any tree generation.
        rebuild_period: rebuild the tree from fresh histograms every this
            many iterations (1 = rebuild each iteration from the previous
            one, the paper's recommended trade-off).
        backend: codec kernel backend (name, instance, or None for the
            ``REPRO_CODEC_BACKEND``/default resolution); shared trees are
            length-limited to the backend's fast decode-table depth so
            every block they code stays on the vectorized path.
    """

    def __init__(
        self,
        num_symbols: int,
        sentinel: int,
        rebuild_period: int = 1,
        backend: str | CodecBackend | None = None,
    ) -> None:
        if rebuild_period < 1:
            raise ValueError("rebuild_period must be >= 1")
        self.num_symbols = num_symbols
        self.sentinel = sentinel
        self.rebuild_period = rebuild_period
        self.backend = resolve_backend(backend)
        self._pending = np.zeros(num_symbols, dtype=np.int64)
        self._state: _TreeState | None = None
        self._iteration = 0

    @property
    def codebook(self) -> huffman.Codebook | None:
        """The current shared tree, or None before any data was seen."""
        return self._state.codebook if self._state else None

    @property
    def tree_age(self) -> int:
        """Iterations elapsed since the current tree was built."""
        if self._state is None:
            return 0
        return self._iteration - self._state.built_at_iteration

    def observe(self, histogram: np.ndarray) -> None:
        """Record one block's quantization-code histogram."""
        hist = np.asarray(histogram, dtype=np.int64)
        if hist.size != self.num_symbols:
            raise ValueError(
                f"histogram has {hist.size} bins, expected {self.num_symbols}"
            )
        self._pending += hist

    def end_iteration(self) -> bool:
        """Close the current iteration; maybe rebuild.  Returns True if
        the tree was rebuilt."""
        self._iteration += 1
        if not self.backend.uses_codebook:
            # Self-coding backends (deflate/zlib) never consume a shared
            # tree — building one would be pure waste.
            return False
        due = (
            self._state is None
            or self.tree_age >= self.rebuild_period
        )
        rebuilt = False
        if due and self._pending.sum() > 0:
            self._state = _TreeState(
                codebook=huffman.build_codebook(
                    self._pending,
                    force_symbols=(self.sentinel,),
                    max_length=self.backend.build_max_length,
                ),
                built_at_iteration=self._iteration,
            )
            rebuilt = True
        if rebuilt:
            self._pending[:] = 0
        return rebuilt


def degradation_ratio(
    histogram: np.ndarray,
    shared: huffman.Codebook,
    outlier_bits: float = 128.0,
) -> float:
    """Compression-ratio factor of coding ``histogram`` with ``shared``
    instead of a tree built from ``histogram`` itself.

    Returns ``native_bits / shared_bits`` (1.0 = no degradation, smaller =
    worse).  Symbols the shared tree cannot code pay ``outlier_bits`` each
    (position + value in the outlier channel).  This is the quantity
    Figure 6 plots across iterations.
    """
    native = huffman.build_codebook(histogram)
    native_bits, _ = huffman.estimate_encoded_bits(histogram, native)
    shared_bits, escapes = huffman.estimate_encoded_bits(histogram, shared)
    shared_total = shared_bits + escapes * outlier_bits
    if shared_total <= 0:
        return 1.0
    if native_bits <= 0:
        return 1.0
    return native_bits / shared_total
