"""SZ-style prediction-based error-bounded lossy compressor (facade).

Pipeline (Section 2.2, in the vectorizable cuSZ formulation):

1. prequantize values onto the ``2 * eb`` grid (absolute error bound);
2. first-order Lorenzo transform on the grid integers;
3. map deltas to a bounded quantization-code alphabet, overflow and
   shared-tree-unseen symbols routed to the outlier channel;
4. canonical Huffman coding — with a per-block ("native") tree or a
   caller-supplied shared tree (Section 4.3);
5. zlib lossless pass over the Huffman stream and outlier arrays.

Blocks round-trip exactly within the error bound; :class:`CompressedBlock`
serializes to bytes for the shared-file container.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..durability.checksum import crc32c
from ..telemetry import NULL_TRACER, NullTracer
from . import huffman
from .kernels import (
    CodecBackend,
    backend_for_format,
    resolve_backend,
)
from .kernels.base import (
    DEFAULT_CHUNK_SIZE,
    FORMAT_HUFFMAN,
    KNOWN_FORMATS,
)
from .lossless import lossless_compress, lossless_decompress
from .predictors import lorenzo_forward, lorenzo_inverse
from .quantizer import (
    DEFAULT_RADIUS,
    QuantizedDeltas,
    decode_codes,
    dequantize,
    encode_codes,
    prequantize,
)

__all__ = ["CompressedBlock", "SZCompressor", "DEFAULT_RADIUS"]

_MAGIC = b"RSZ1"
_HEADER_FMT = "<4sBBBdIQQQI"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
_DTYPES = {0: np.float32, 1: np.float64}
_DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}

#: ``codebook_kind`` for blocks whose codec embeds its own entropy
#: coding (or none) — there is no external codebook blob to describe.
CODEBOOK_KIND_NONE = 255
_KNOWN_KINDS = (
    huffman.CODEBOOK_KIND_RAW,
    huffman.CODEBOOK_KIND_RLE,
    CODEBOOK_KIND_NONE,
)


def _infer_codebook_kind(codebook_blob: bytes) -> int:
    """Codebook kind for pre-v3 blocks (and directly-built ones)."""
    if not codebook_blob:
        return CODEBOOK_KIND_NONE
    return huffman.codebook_blob_kind(codebook_blob)


@dataclass
class CompressedBlock:
    """One compressed data block plus everything needed to restore it."""

    payload: bytes  # zlib(huffman bytes + outlier arrays)
    shape: tuple[int, ...]
    dtype: np.dtype
    error_bound: float
    radius: int
    nbits: int
    num_outliers: int
    codebook_blob: bytes  # empty when a shared tree was used
    used_shared_tree: bool
    #: Chunk index (None for v1 blocks, which predate chunking): the
    #: Huffman stream is split into ``chunk_size``-symbol chunks and
    #: ``chunk_offsets[c]`` is chunk ``c``'s start bit — what lets the
    #: vectorized backend decode all chunks in lockstep.  Self-contained
    #: stream formats (deflate/zlib) carry an empty index.
    chunk_size: int = 0
    chunk_offsets: tuple[int, ...] | None = None
    #: Stream format of the payload's coded section (v3 header field);
    #: any compressor decodes it via ``backend_for_format``.
    codec: int = FORMAT_HUFFMAN
    #: Serialized layout of ``codebook_blob`` (``CODEBOOK_KIND_*``;
    #: ``None`` infers it from the blob itself).
    codebook_kind: int | None = None

    def __post_init__(self) -> None:
        if self.codebook_kind is None:
            self.codebook_kind = _infer_codebook_kind(self.codebook_blob)

    @property
    def original_nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize

    @property
    def compressed_nbytes(self) -> int:
        return len(self.to_bytes())

    @property
    def compression_ratio(self) -> float:
        compressed = self.compressed_nbytes
        return self.original_nbytes / compressed if compressed else 1.0

    def to_bytes(self) -> bytes:
        """Serialize for storage in the shared-file container.

        Current blocks serialize as format v3 (codec + codebook-kind
        fields, then the chunk index); a plain-Huffman block without a
        chunk index (``chunk_offsets is None``) falls back to the v1
        layout, byte-identical to what pre-chunking versions wrote.
        """
        dtype_code = _DTYPE_CODES[self.dtype]
        version = (
            1
            if self.chunk_offsets is None and self.codec == FORMAT_HUFFMAN
            else 3
        )
        header = struct.pack(
            _HEADER_FMT,
            _MAGIC,
            version,
            dtype_code,
            len(self.shape),
            self.error_bound,
            self.radius,
            self.nbits,
            self.num_outliers,
            len(self.payload),
            len(self.codebook_blob),
        )
        dims = struct.pack(f"<{len(self.shape)}Q", *self.shape)
        flags = struct.pack("<B", 1 if self.used_shared_tree else 0)
        if version == 1:
            return header + dims + flags + self.codebook_blob + self.payload
        offsets = self.chunk_offsets or ()
        if offsets and self.nbits >= 2**32:
            raise ValueError(
                "block too large: chunk offsets are stored as uint32 "
                f"bit positions but the stream has {self.nbits} bits"
            )
        codec_info = struct.pack("<BB", self.codec, self.codebook_kind)
        chunks = struct.pack(
            "<II", self.chunk_size, len(offsets)
        ) + np.asarray(offsets, dtype=np.uint32).tobytes()
        return (
            header
            + dims
            + flags
            + codec_info
            + chunks
            + self.codebook_blob
            + self.payload
        )

    def checksum(self) -> int:
        """CRC32C of the serialized block — computed at compression
        time by the snapshot writer, carried through the write path, and
        handed back to :meth:`from_bytes` on load for end-to-end
        integrity."""
        return crc32c(self.to_bytes())

    @classmethod
    def from_bytes(
        cls, blob: bytes, expected_crc32c: int | None = None
    ) -> "CompressedBlock":
        if expected_crc32c is not None:
            actual = crc32c(blob)
            if actual != expected_crc32c:
                raise ValueError(
                    f"compressed block failed its end-to-end checksum "
                    f"(declared {expected_crc32c:#010x} at compression "
                    f"time, read {actual:#010x})"
                )

        def take(offset: int, nbytes: int, what: str) -> bytes:
            if len(blob) < offset + nbytes:
                raise ValueError(
                    f"truncated compressed block: {what} needs bytes "
                    f"{offset}..{offset + nbytes} but the blob has only "
                    f"{len(blob)}"
                )
            return blob[offset : offset + nbytes]

        (
            magic,
            version,
            dtype_code,
            ndim,
            error_bound,
            radius,
            nbits,
            num_outliers,
            payload_len,
            codebook_len,
        ) = struct.unpack(_HEADER_FMT, take(0, _HEADER_SIZE, "header"))
        if magic != _MAGIC:
            raise ValueError("not a compressed block")
        if version not in (1, 2, 3):
            raise ValueError(
                f"not a compressed block: unknown format version {version}"
            )
        if dtype_code not in _DTYPES:
            raise ValueError(
                f"corrupt compressed block: unknown dtype code {dtype_code}"
            )
        offset = _HEADER_SIZE
        shape = struct.unpack(
            f"<{ndim}Q", take(offset, 8 * ndim, "shape dims")
        )
        offset += 8 * ndim
        (shared_flag,) = struct.unpack("<B", take(offset, 1, "flags"))
        offset += 1
        codec = FORMAT_HUFFMAN
        codebook_kind: int | None = None  # pre-v3: infer from the blob
        if version == 3:
            codec, codebook_kind = struct.unpack(
                "<BB", take(offset, 2, "codec info")
            )
            offset += 2
            if codec not in KNOWN_FORMATS:
                known = ", ".join(str(f) for f in KNOWN_FORMATS)
                raise ValueError(
                    f"corrupt compressed block: unknown codec format "
                    f"{codec} (known: {known})"
                )
            if codebook_kind not in _KNOWN_KINDS:
                raise ValueError(
                    f"corrupt compressed block: unknown codebook kind "
                    f"{codebook_kind}"
                )
        chunk_size = 0
        chunk_offsets: tuple[int, ...] | None = None
        if version >= 2:
            chunk_size, num_chunks = struct.unpack(
                "<II", take(offset, 8, "chunk header")
            )
            offset += 8
            chunk_offsets = tuple(
                np.frombuffer(
                    take(offset, 4 * num_chunks, "chunk offsets"),
                    dtype=np.uint32,
                ).tolist()
            )
            offset += 4 * num_chunks
        codebook_blob = take(offset, codebook_len, "codebook blob")
        offset += codebook_len
        payload = take(offset, payload_len, "payload")
        return cls(
            payload=payload,
            shape=tuple(int(d) for d in shape),
            dtype=np.dtype(_DTYPES[dtype_code]),
            error_bound=error_bound,
            radius=radius,
            nbits=nbits,
            num_outliers=num_outliers,
            codebook_blob=codebook_blob,
            used_shared_tree=bool(shared_flag),
            chunk_size=chunk_size,
            chunk_offsets=chunk_offsets,
            codec=codec,
            codebook_kind=codebook_kind,
        )


class SZCompressor:
    """Error-bounded lossy compressor with optional shared Huffman tree.

    ``backend`` selects the codec kernel — ``"pure"``/``"numpy"`` (one
    shared canonical-Huffman bit format, bit-identical blocks),
    ``"deflate"`` (run-collapsing LZ77+Huffman), or ``"zlib"`` (tree-free
    fast path); ``None`` defers to the ``REPRO_CODEC_BACKEND``
    environment variable, then the ``numpy`` default.  Every block
    records its stream format, so blocks decode under any configured
    backend.
    """

    def __init__(
        self,
        radius: int = DEFAULT_RADIUS,
        tracer: NullTracer = NULL_TRACER,
        backend: str | CodecBackend | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if radius < 1:
            raise ValueError("radius must be at least 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.radius = radius
        self.tracer = tracer
        self.backend = resolve_backend(backend)
        self.chunk_size = chunk_size

    @property
    def sentinel(self) -> int:
        """The outlier-escape symbol; always present in any codebook."""
        return 2 * self.radius

    def quantize(
        self, values: np.ndarray, error_bound: float
    ) -> QuantizedDeltas:
        """Stages 1-3: grid quantization, Lorenzo, code mapping."""
        grid = prequantize(values, error_bound)
        deltas = lorenzo_forward(grid)
        return encode_codes(deltas, self.radius)

    def histogram(
        self, values: np.ndarray, error_bound: float
    ) -> np.ndarray:
        """Quantization-code histogram (the shared-tree training input)."""
        quantized = self.quantize(values, error_bound)
        return np.bincount(
            quantized.codes.reshape(-1), minlength=2 * self.radius + 1
        )

    def resolve_bound(
        self, values: np.ndarray, error_bound: float, mode: str = "abs"
    ) -> float:
        """Turn a bound specification into an absolute bound.

        ``"abs"`` uses ``error_bound`` directly; ``"rel"`` (SZ's
        value-range-relative mode) multiplies it by the block's value
        range, so ``1e-3`` means "0.1 % of the range".
        """
        if mode == "abs":
            return error_bound
        if mode == "rel":
            value_range = (
                float(np.ptp(values)) if values.size else 0.0
            )
            # Constant (zero-range) data needs a floor that keeps the
            # grid indices within int64: a few ulps of the magnitude.
            magnitude = float(np.abs(values).max()) if values.size else 1.0
            floor = max(magnitude, 1.0) * np.finfo(np.float64).eps
            return max(error_bound * value_range, floor)
        raise ValueError(f"unknown error-bound mode {mode!r}")

    def compress(
        self,
        values: np.ndarray,
        error_bound: float,
        shared_codebook: huffman.Codebook | None = None,
        mode: str = "abs",
    ) -> CompressedBlock:
        """Compress one block within ``error_bound``.

        ``mode="abs"`` (default) treats the bound as absolute;
        ``mode="rel"`` as a fraction of the block's value range.
        """
        if values.dtype not in (np.float32, np.float64):
            raise TypeError(
                f"unsupported dtype {values.dtype}; use float32/float64"
            )
        error_bound = self.resolve_bound(values, error_bound, mode)
        with self.tracer.timed("codec.quantize", nbytes=values.nbytes):
            quantized = self.quantize(values, error_bound)
        codes = quantized.codes.reshape(-1)
        outlier_positions = quantized.outlier_positions
        outlier_values = quantized.outlier_values

        if not self.backend.uses_codebook:
            # Self-contained formats (deflate embeds its own token book;
            # zlib has none): no tree work, and a shared tree — whose
            # whole point is skipping per-block codebooks — does not
            # apply, so a passed one is ignored.
            codebook = None
            codebook_blob = b""
            used_shared = False
        elif shared_codebook is None:
            hist = np.bincount(codes, minlength=2 * self.radius + 1)
            # Length-limited codes keep the decoder on its dense-table
            # fast path at a negligible (<0.1 %) ratio cost.
            codebook = huffman.build_codebook(
                hist,
                force_symbols=(self.sentinel,),
                max_length=self.backend.build_max_length,
            )
            codebook_blob = huffman.codebook_to_bytes(codebook)
            used_shared = False
        else:
            codebook = shared_codebook
            codebook_blob = b""
            used_shared = True
            # Symbols the shared tree has no code for become outliers
            # (Section 4.3: "outliers ... allow us to include values that
            # defy coding by this shared Huffman tree").
            uncodable = ~codebook.can_encode(codes)
            uncodable[outlier_positions] = False  # already sentinel-coded
            if np.any(uncodable):
                extra = np.flatnonzero(uncodable)
                extra_values = codes[extra].astype(np.int64) - self.radius
                codes = codes.copy()
                codes[extra] = self.sentinel
                outlier_positions = np.concatenate(
                    [outlier_positions, extra]
                )
                outlier_values = np.concatenate(
                    [outlier_values, extra_values]
                )
                order = np.argsort(outlier_positions)
                outlier_positions = outlier_positions[order]
                outlier_values = outlier_values[order]

        with self.tracer.timed(
            "codec.encode",
            shared_tree=used_shared,
            backend=self.backend.name,
        ):
            stream = self.backend.encode(
                codes, codebook, chunk_size=self.chunk_size
            )
        body = (
            stream.data
            + outlier_positions.astype(np.int64).tobytes()
            + outlier_values.astype(np.int64).tobytes()
        )
        with self.tracer.timed("codec.lossless", nbytes=len(body)):
            payload = lossless_compress(body)
        return CompressedBlock(
            payload=payload,
            shape=values.shape,
            dtype=values.dtype,
            error_bound=error_bound,
            radius=self.radius,
            nbits=stream.nbits,
            num_outliers=int(outlier_positions.size),
            codebook_blob=codebook_blob,
            used_shared_tree=used_shared,
            chunk_size=stream.chunk_size,
            chunk_offsets=tuple(
                int(o) for o in stream.chunk_offsets
            ),
            codec=self.backend.format_id,
        )

    def decompress(
        self,
        block: CompressedBlock,
        shared_codebook: huffman.Codebook | None = None,
    ) -> np.ndarray:
        """Restore a block; needs the shared codebook if one was used.

        The block header records which stream format the payload uses,
        so any compressor decodes any block: the configured backend is
        used when it speaks the block's format, otherwise the preferred
        decoder for that format is looked up in the registry.
        """
        backend = (
            self.backend
            if self.backend.format_id == block.codec
            else backend_for_format(block.codec)
        )
        if not backend.uses_codebook:
            codebook = None
        elif block.used_shared_tree:
            if shared_codebook is None:
                raise ValueError(
                    "block was compressed with a shared tree; pass it"
                )
            codebook = shared_codebook
        else:
            codebook = huffman.codebook_from_bytes(block.codebook_blob)

        body = lossless_decompress(block.payload)
        count = int(np.prod(block.shape, dtype=np.int64))
        encoded_len = (block.nbits + 7) // 8
        encoded = body[:encoded_len]
        rest = body[encoded_len:]
        outlier_positions = np.frombuffer(
            rest[: 8 * block.num_outliers], dtype=np.int64
        )
        outlier_values = np.frombuffer(
            rest[8 * block.num_outliers : 16 * block.num_outliers],
            dtype=np.int64,
        )
        chunk_offsets = (
            None
            if block.chunk_offsets is None
            else np.asarray(block.chunk_offsets, dtype=np.int64)
        )
        with self.tracer.timed(
            "codec.decode",
            backend=backend.name,
            nbytes=encoded_len,
            chunked=chunk_offsets is not None,
        ):
            codes = backend.decode(
                encoded,
                block.nbits,
                count,
                codebook,
                block.chunk_size,
                chunk_offsets,
            )
        quantized = QuantizedDeltas(
            codes=codes.reshape(block.shape),
            radius=block.radius,
            outlier_positions=outlier_positions,
            outlier_values=outlier_values,
        )
        deltas = decode_codes(quantized)
        grid = lorenzo_inverse(deltas)
        return dequantize(grid, block.error_bound).astype(block.dtype)
