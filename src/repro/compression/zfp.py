"""ZFP-style fixed-rate transform codec (the paper's other compressor).

Section 2.2 positions ZFP (Lindstrom 2014) alongside SZ as the other
major error-controlled compressor family for scientific floating-point
data: instead of prediction + quantization it uses *transform coding* —
independent 4^d blocks, block-floating-point fixed-point conversion, an
integer decorrelating transform, and embedded bit-plane coding truncated
to a fixed rate.  This module implements that pipeline (not bit-exactly
zfp's stream format, but the same algorithmic structure):

1. pad the array to whole 4^d blocks;
2. per block: common exponent, scale to 27-bit fixed point;
3. exactly invertible integer lifting transform (two Haar-lifting levels
   per axis) to concentrate energy in low-sequency coefficients;
4. negabinary mapping (sign-free, MSB-first significance);
5. keep exactly ``rate_bits`` bits per value, taken bit-plane by
   bit-plane from the most significant plane down.

Fixed rate means guaranteed compressed size (what makes zfp attractive
for random access) and an error that shrinks exponentially with the
rate; the round trip is exact once the rate covers every occupied plane.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ZFPBlockStream", "ZFPCompressor"]

_BLOCK = 4
_PRECISION = 27  # fixed-point bits; lifting grows magnitudes <= 8x, so
#                  coefficients stay within the 32-bit negabinary range
_PLANES = 32  # transported planes (int32 negabinary)
_NEGABINARY_MASK = np.uint32(0xAAAAAAAA)


_ZFP_MAGIC = b"RZF1"
_ZFP_DTYPES = {0: np.float32, 1: np.float64}
_ZFP_DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}


@dataclass
class ZFPBlockStream:
    """A fixed-rate compressed array."""

    payload: bytes
    shape: tuple[int, ...]
    dtype: np.dtype
    rate_bits: int
    exponents: bytes  # one int8 per block

    @property
    def compressed_nbytes(self) -> int:
        return len(self.payload) + len(self.exponents)

    @property
    def compression_ratio(self) -> float:
        original = int(np.prod(self.shape)) * self.dtype.itemsize
        return original / max(1, self.compressed_nbytes)

    def to_bytes(self) -> bytes:
        """Serialize for storage (same role as CompressedBlock.to_bytes)."""
        import struct

        header = struct.pack(
            "<4sBBBQQ",
            _ZFP_MAGIC,
            _ZFP_DTYPE_CODES[self.dtype],
            len(self.shape),
            self.rate_bits,
            len(self.exponents),
            len(self.payload),
        )
        dims = struct.pack(f"<{len(self.shape)}Q", *self.shape)
        return header + dims + self.exponents + self.payload

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ZFPBlockStream":
        import struct

        head = struct.calcsize("<4sBBBQQ")
        magic, dtype_code, ndim, rate, n_exp, n_payload = struct.unpack(
            "<4sBBBQQ", blob[:head]
        )
        if magic != _ZFP_MAGIC:
            raise ValueError("not a ZFP stream")
        offset = head
        shape = struct.unpack_from(f"<{ndim}Q", blob, offset)
        offset += 8 * ndim
        exponents = blob[offset : offset + n_exp]
        offset += n_exp
        payload = blob[offset : offset + n_payload]
        return cls(
            payload=payload,
            shape=tuple(int(d) for d in shape),
            dtype=np.dtype(_ZFP_DTYPES[dtype_code]),
            rate_bits=rate,
            exponents=exponents,
        )


class ZFPCompressor:
    """Fixed-rate compressor for 1-3D float arrays.

    Args:
        rate_bits: bits stored per value (1..32).  8 bits on smooth data
            typically gives relative errors around 1e-4; 32 bits makes
            the fixed-point stage the only loss.
    """

    def __init__(self, rate_bits: int = 8) -> None:
        if not 1 <= rate_bits <= _PLANES:
            raise ValueError(f"rate_bits must be in 1..{_PLANES}")
        self.rate_bits = rate_bits

    # ------------------------------------------------------------------
    def compress(self, values: np.ndarray) -> ZFPBlockStream:
        if values.ndim not in (1, 2, 3):
            raise ValueError("ZFP codec supports 1-3D arrays")
        if values.dtype not in (np.float32, np.float64):
            raise TypeError("ZFP codec supports float32/float64")
        blocks = _blockify(values.astype(np.float64))
        n_blocks, block_size = blocks.shape

        # Block-floating-point: common exponent per block.
        max_abs = np.abs(blocks).max(axis=1)
        exponents = np.zeros(n_blocks, dtype=np.int8)
        nonzero = max_abs > 0
        exponents[nonzero] = np.ceil(
            np.log2(max_abs[nonzero])
        ).astype(np.int8)
        scale = np.exp2(_PRECISION - exponents.astype(np.float64))
        fixed = np.rint(blocks * scale[:, None]).astype(np.int64)
        fixed = np.clip(fixed, -(2**31) + 1, 2**31 - 1).astype(np.int32)

        transformed = _lift_forward(fixed, values.ndim)
        nega = _to_negabinary(transformed)

        # Embedded coding: MSB plane first, truncated at rate_bits.
        planes = np.empty(
            (self.rate_bits, n_blocks, block_size), dtype=np.uint8
        )
        for p in range(self.rate_bits):
            shift = np.uint32(_PLANES - 1 - p)
            planes[p] = ((nega >> shift) & np.uint32(1)).astype(np.uint8)
        payload = np.packbits(planes.reshape(-1)).tobytes()
        return ZFPBlockStream(
            payload=payload,
            shape=values.shape,
            dtype=values.dtype,
            rate_bits=self.rate_bits,
            exponents=exponents.tobytes(),
        )

    # ------------------------------------------------------------------
    def decompress(self, stream: ZFPBlockStream) -> np.ndarray:
        ndim = len(stream.shape)
        padded_shape = tuple(
            -(-s // _BLOCK) * _BLOCK for s in stream.shape
        )
        block_size = _BLOCK**ndim
        n_blocks = int(np.prod(padded_shape)) // block_size

        bits = np.unpackbits(
            np.frombuffer(stream.payload, dtype=np.uint8),
            count=stream.rate_bits * n_blocks * block_size,
        )
        planes = bits.reshape(stream.rate_bits, n_blocks, block_size)
        nega = np.zeros((n_blocks, block_size), dtype=np.uint32)
        for p in range(stream.rate_bits):
            shift = np.uint32(_PLANES - 1 - p)
            nega |= planes[p].astype(np.uint32) << shift

        transformed = _from_negabinary(nega)
        fixed = _lift_inverse(transformed, ndim)
        exponents = np.frombuffer(stream.exponents, dtype=np.int8)
        scale = np.exp2(exponents.astype(np.float64) - _PRECISION)
        blocks = fixed.astype(np.float64) * scale[:, None]
        return _unblockify(blocks, stream.shape).astype(stream.dtype)


# ----------------------------------------------------------------------
# blocking
# ----------------------------------------------------------------------
def _blockify(values: np.ndarray) -> np.ndarray:
    """Pad to whole 4^d blocks and reshape to (n_blocks, 4^d)."""
    ndim = values.ndim
    pad = [
        (0, (-values.shape[d]) % _BLOCK) for d in range(ndim)
    ]
    padded = np.pad(values, pad, mode="edge")
    counts = [s // _BLOCK for s in padded.shape]
    # Split each axis into (block index, within-block index).
    new_shape = []
    for c in counts:
        new_shape += [c, _BLOCK]
    arr = padded.reshape(new_shape)
    # Move all block indices first, all within-block indices last.
    order = list(range(0, 2 * ndim, 2)) + list(range(1, 2 * ndim, 2))
    arr = arr.transpose(order)
    return arr.reshape(int(np.prod(counts)), _BLOCK**ndim)


def _unblockify(
    blocks: np.ndarray, shape: tuple[int, ...]
) -> np.ndarray:
    ndim = len(shape)
    padded_shape = tuple(-(-s // _BLOCK) * _BLOCK for s in shape)
    counts = [s // _BLOCK for s in padded_shape]
    arr = blocks.reshape(counts + [_BLOCK] * ndim)
    order = []
    for d in range(ndim):
        order += [d, ndim + d]
    arr = arr.transpose(order).reshape(padded_shape)
    return arr[tuple(slice(0, s) for s in shape)]


# ----------------------------------------------------------------------
# integer lifting transform (exactly invertible)
# ----------------------------------------------------------------------
def _lift_forward(blocks: np.ndarray, ndim: int) -> np.ndarray:
    """Two Haar-lifting levels along each axis of every 4^d block."""
    n = blocks.shape[0]
    arr = blocks.reshape((n,) + (_BLOCK,) * ndim).astype(np.int64)
    for axis in range(1, ndim + 1):
        arr = np.moveaxis(arr, axis, -1)
        a0, a1, a2, a3 = (
            arr[..., 0].copy(),
            arr[..., 1].copy(),
            arr[..., 2].copy(),
            arr[..., 3].copy(),
        )
        # Level 1 on pairs (a0,a1) and (a2,a3): s = a + (d >> 1), d = b-a.
        d0 = a1 - a0
        s0 = a0 + (d0 >> 1)
        d1 = a3 - a2
        s1 = a2 + (d1 >> 1)
        # Level 2 on the two smooth coefficients.
        d2 = s1 - s0
        s2 = s0 + (d2 >> 1)
        arr[..., 0] = s2
        arr[..., 1] = d2
        arr[..., 2] = d0
        arr[..., 3] = d1
        arr = np.moveaxis(arr, -1, axis)
    return arr.reshape(n, _BLOCK**ndim)


def _lift_inverse(blocks: np.ndarray, ndim: int) -> np.ndarray:
    n = blocks.shape[0]
    arr = blocks.reshape((n,) + (_BLOCK,) * ndim).astype(np.int64)
    for axis in range(ndim, 0, -1):
        arr = np.moveaxis(arr, axis, -1)
        s2 = arr[..., 0].copy()
        d2 = arr[..., 1].copy()
        d0 = arr[..., 2].copy()
        d1 = arr[..., 3].copy()
        s0 = s2 - (d2 >> 1)
        s1 = d2 + s0
        a0 = s0 - (d0 >> 1)
        a1 = d0 + a0
        a2 = s1 - (d1 >> 1)
        a3 = d1 + a2
        arr[..., 0] = a0
        arr[..., 1] = a1
        arr[..., 2] = a2
        arr[..., 3] = a3
        arr = np.moveaxis(arr, -1, axis)
    return arr.reshape(n, _BLOCK**ndim)


# ----------------------------------------------------------------------
# negabinary mapping (sign-free embedded significance)
# ----------------------------------------------------------------------
def _to_negabinary(values: np.ndarray) -> np.ndarray:
    u = values.astype(np.int64).astype(np.uint64) & np.uint64(0xFFFFFFFF)
    mask = np.uint64(0xAAAAAAAA)
    return ((u + mask) ^ mask).astype(np.uint32)


def _from_negabinary(nega: np.ndarray) -> np.ndarray:
    mask = np.uint64(0xAAAAAAAA)
    u = (nega.astype(np.uint64) ^ mask) - mask
    return u.astype(np.uint32).astype(np.int32).astype(np.int64)
