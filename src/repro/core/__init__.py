"""Task scheduling for concealing compression and I/O inside computation.

This package is the paper's primary contribution (Section 3): a
two-machine flow-shop scheduler with deterministic unavailability
intervals and non-resumable jobs, six heuristics, the exact ILP, and the
intra-node I/O workload balancer.
"""

from .analysis import ScheduleStats, lower_bound, schedule_stats
from .balancing import BalanceResult, IoTaskRef, balance_io_workloads
from .bruteforce import exhaustive_schedule
from .executor import schedule_orders
from .greedy import one_list_greedy, two_lists_greedy
from .ilp import IlpResult, ilp_schedule
from .johnson import ext_johnson, ext_johnson_backfill, johnson_order
from .list_scheduling import (
    generation_list_schedule,
    generation_list_schedule_backfill,
)
from .local_search import local_search_schedule
from .model import (
    EPSILON,
    Interval,
    Job,
    ProblemInstance,
    Schedule,
    ScheduledTask,
    ScheduleError,
)
from .predictor import IterationHistory, IterationRecord
from .resumable import (
    ResumableSchedule,
    preemption_cost,
    resumable_schedule,
)
from .executor import trace_schedule
from .registry import (
    ALGORITHMS,
    REGISTRY,
    AlgorithmInfo,
    DEFAULT_ALGORITHM,
    get_algorithm,
    get_algorithm_info,
    list_algorithms,
    register_algorithm,
    unregister_algorithm,
)
from .solve import SolveResult, solve
from .serialization import (
    instance_fingerprint,
    instance_from_json,
    instance_json_dict,
    instance_to_json,
    schedule_from_json,
    schedule_to_json,
)
from .timeline import MachineTimeline

__all__ = [
    "EPSILON",
    "Interval",
    "Job",
    "ProblemInstance",
    "Schedule",
    "ScheduledTask",
    "ScheduleError",
    "MachineTimeline",
    "ScheduleStats",
    "lower_bound",
    "schedule_stats",
    "schedule_orders",
    "exhaustive_schedule",
    "johnson_order",
    "ext_johnson",
    "ext_johnson_backfill",
    "generation_list_schedule",
    "generation_list_schedule_backfill",
    "one_list_greedy",
    "two_lists_greedy",
    "local_search_schedule",
    "ResumableSchedule",
    "resumable_schedule",
    "preemption_cost",
    "instance_json_dict",
    "instance_to_json",
    "instance_from_json",
    "instance_fingerprint",
    "schedule_to_json",
    "schedule_from_json",
    "ilp_schedule",
    "IlpResult",
    "balance_io_workloads",
    "BalanceResult",
    "IoTaskRef",
    "IterationHistory",
    "IterationRecord",
    "ALGORITHMS",
    "REGISTRY",
    "AlgorithmInfo",
    "DEFAULT_ALGORITHM",
    "get_algorithm",
    "get_algorithm_info",
    "list_algorithms",
    "register_algorithm",
    "unregister_algorithm",
    "SolveResult",
    "solve",
    "trace_schedule",
]
