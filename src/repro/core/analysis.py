"""Schedule analysis: lower bounds and quality statistics.

Used three ways: property tests sanity-check every heuristic against the
bounds; reports quantify how much of the compression/I/O work a schedule
actually concealed inside the iteration; and the playground example shows
optimality gaps when the ILP is unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import EPSILON, Interval, ProblemInstance, Schedule
from .timeline import MachineTimeline

__all__ = ["ScheduleStats", "lower_bound", "schedule_stats"]


def lower_bound(instance: ProblemInstance) -> float:
    """A valid lower bound on the I/O makespan of *any* schedule.

    The maximum of three bounds:

    1. **job chain** — for every job, its compression placed at the
       earliest obstacle-respecting slot, then its I/O at the earliest
       slot after that: no schedule can finish that job sooner;
    2. **background load** — all I/O must run on the background thread:
       earliest-any-I/O-start plus the total I/O time minus obstacle-free
       capacity is unbeatable (computed by greedily packing the total I/O
       volume into the background thread from the earliest ready time);
    3. **main load** — the last compression cannot finish before the
       total compression volume has been packed around the main-thread
       obstacles, and some I/O must follow it.
    """
    if instance.num_jobs == 0:
        return 0.0
    begin = instance.begin

    # Bound 1: per-job chains.
    chain = 0.0
    for job in instance.jobs:
        main = MachineTimeline(begin, instance.main_obstacles)
        comp_start = main.earliest_fit(job.compression_time, begin)
        comp_end = comp_start + job.compression_time
        background = MachineTimeline(begin, instance.background_obstacles)
        io_ready = max(comp_end, begin + job.io_release)
        io_start = background.earliest_fit(job.io_time, io_ready)
        chain = max(chain, io_start + job.io_time - begin)

    # Bound 2: total I/O packed from the earliest any job could be ready.
    min_ready = min(
        MachineTimeline(begin, instance.main_obstacles).earliest_fit(
            job.compression_time, begin
        )
        + job.compression_time
        for job in instance.jobs
    )
    # Sub-epsilon tasks are instantaneous and slide into obstacles, so
    # only strictly placeable durations count toward machine loads.
    io_volume = sum(
        j.io_time for j in instance.jobs if j.io_time > EPSILON
    )
    io_end = _pack_volume(
        instance.background_obstacles,
        begin,
        min_ready,
        io_volume,
    )
    load_bound = io_end - begin

    # Bound 3: total compression packed on the main thread, then the
    # shortest I/O task after it.
    comp_volume = sum(
        j.compression_time
        for j in instance.jobs
        if j.compression_time > EPSILON
    )
    comp_end = _pack_volume(
        instance.main_obstacles,
        begin,
        begin,
        comp_volume,
    )
    min_io = min(job.io_time for job in instance.jobs)
    main_bound = comp_end + min_io - begin

    return max(chain, load_bound, main_bound)


def _pack_volume(
    obstacles: tuple[Interval, ...],
    begin: float,
    ready: float,
    volume: float,
) -> float:
    """Earliest completion of ``volume`` work (preemptively) packed into
    the machine's free time from ``ready`` onward — a relaxation of the
    non-preemptive problem, hence a valid bound.

    Volumes at or below EPSILON are instantaneous under the placement
    semantics (they never collide with obstacles), so they pack for free.
    """
    if volume <= EPSILON:
        return ready
    cursor = max(begin, ready)
    remaining = volume
    for obs in obstacles:
        if obs.end <= cursor:
            continue
        gap = max(0.0, obs.start - cursor)
        if gap >= remaining:
            return cursor + remaining
        remaining -= gap
        cursor = max(cursor, obs.end)
    return cursor + remaining


@dataclass(frozen=True)
class ScheduleStats:
    """How well a schedule conceals the dump inside the iteration."""

    io_makespan: float
    lower_bound: float
    concealed_fraction: float  # task time placed within [begin, end]
    spill: float  # task time past the iteration end
    main_idle_used: float  # fraction of main-thread idle time used
    background_idle_used: float

    @property
    def optimality_gap(self) -> float:
        """(makespan / lower bound) - 1; 0.0 means provably optimal."""
        if self.lower_bound <= 0:
            return 0.0
        return max(0.0, self.io_makespan / self.lower_bound - 1.0)


def schedule_stats(schedule: Schedule) -> ScheduleStats:
    """Compute concealment statistics for a (valid) schedule."""
    inst = schedule.instance
    window = Interval(inst.begin, inst.end)
    tasks = list(schedule.compression.values()) + list(
        schedule.io.values()
    )
    total = sum(t.duration for t in tasks)
    inside = sum(_overlap(t, window) for t in tasks)
    spill = total - inside

    main_idle = inst.length - sum(
        o.duration for o in inst.main_obstacles
    )
    bg_idle = inst.length - sum(
        o.duration for o in inst.background_obstacles
    )
    main_used = sum(
        _overlap(t, window) for t in schedule.compression.values()
    )
    bg_used = sum(_overlap(t, window) for t in schedule.io.values())

    return ScheduleStats(
        io_makespan=schedule.io_makespan,
        lower_bound=lower_bound(inst),
        concealed_fraction=inside / total if total > 0 else 1.0,
        spill=spill,
        main_idle_used=main_used / main_idle if main_idle > 0 else 0.0,
        background_idle_used=bg_used / bg_idle if bg_idle > 0 else 0.0,
    )


def _overlap(a: Interval, b: Interval) -> float:
    return max(0.0, min(a.end, b.end) - max(a.start, b.start))
