"""Intra-node I/O workload balancing (Section 3.4).

Compressed sizes — and therefore I/O times — vary across the processes of
a node because data compressibility varies across partitions, while raw
sizes (and compression times) do not.  The paper balances only the I/O
side, and only within a node (inter-node moves would pay communication
costs), using the previous iteration's per-process I/O totals as the guide:

    while the largest workload exceeds twice the smallest, reassign the
    *first* I/O task of the most-loaded process to run as the *last* I/O
    task of the least-loaded process.

This module implements that loop with two safeguards the paper leaves
implicit: a donor keeps at least one task, and a move that does not shrink
the max-min spread stops the loop (otherwise a single huge task could
bounce between two processes forever).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["IoTaskRef", "BalanceResult", "balance_io_workloads"]


@dataclass(frozen=True)
class IoTaskRef:
    """One I/O task eligible for reassignment.

    Attributes:
        owner: rank of the process whose data this task writes.
        job_index: the job index within the owner's instance.
        duration: predicted I/O time (from the previous iteration's
            compressed size and the I/O throughput model).
    """

    owner: int
    job_index: int
    duration: float


@dataclass
class BalanceResult:
    """Assignment produced by :func:`balance_io_workloads`."""

    assignments: list[list[IoTaskRef]]
    workloads_before: list[float]
    workloads_after: list[float]
    moves: int = 0

    @property
    def imbalance_before(self) -> float:
        return _imbalance(self.workloads_before)

    @property
    def imbalance_after(self) -> float:
        return _imbalance(self.workloads_after)


def _imbalance(workloads: list[float]) -> float:
    """Max/min workload ratio (inf when some process has zero work)."""
    lo = min(workloads)
    hi = max(workloads)
    if lo <= 0.0:
        return float("inf") if hi > 0.0 else 1.0
    return hi / lo


def balance_io_workloads(
    tasks_per_process: list[list[IoTaskRef]],
    threshold: float = 2.0,
) -> BalanceResult:
    """Redistribute I/O tasks within a node.

    Args:
        tasks_per_process: for each process of the node, its I/O tasks in
            execution order (typically from the previous iteration).
        threshold: the loop runs while ``max > threshold * min`` (the paper
            uses 2).

    Returns:
        The new per-process task lists.  Moved tasks keep their ``owner``
        field so the runtime knows whose buffer to write from.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must exceed 1.0")

    queues = [deque(tasks) for tasks in tasks_per_process]
    before = [sum(t.duration for t in tasks) for tasks in tasks_per_process]
    workloads = list(before)
    moves = 0

    # Upper bound on useful moves: each task moves at most once per spread
    # reduction; total tasks squared is a safe, cheap cap.
    total_tasks = sum(len(q) for q in queues)
    max_moves = max(1, total_tasks * total_tasks)

    while moves < max_moves and len(queues) > 1:
        hi = max(range(len(queues)), key=lambda p: workloads[p])
        lo = min(range(len(queues)), key=lambda p: workloads[p])
        if workloads[lo] > 0 and workloads[hi] <= threshold * workloads[lo]:
            break
        if len(queues[hi]) <= 1:
            break
        task = queues[hi][0]
        spread = workloads[hi] - workloads[lo]
        new_spread_hi = workloads[hi] - task.duration
        new_spread_lo = workloads[lo] + task.duration
        if max(new_spread_hi, new_spread_lo) - min(
            new_spread_hi, new_spread_lo
        ) >= spread:
            break
        queues[hi].popleft()
        queues[lo].append(task)
        workloads[hi] = new_spread_hi
        workloads[lo] = new_spread_lo
        moves += 1

    return BalanceResult(
        assignments=[list(q) for q in queues],
        workloads_before=before,
        workloads_after=workloads,
        moves=moves,
    )
