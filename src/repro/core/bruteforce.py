"""Exhaustive list-schedule search for tiny instances.

For a handful of jobs, trying every (compression order, I/O order) pair
under the no-backfill placement rule is tractable — ``(m!)^2`` placements
— and yields the optimal *list-schedulable* makespan.  It slots between
the heuristics and the ILP: unlike the ILP it cannot shift tasks off the
earliest-fit grid, so ``ILP optimum <= exhaustive <= any heuristic``;
tests use it as an oracle, and it answers "was the heuristic's gap caused
by its order or by list scheduling itself?" on small cases.
"""

from __future__ import annotations

import itertools

from .executor import schedule_orders
from .model import ProblemInstance, Schedule

__all__ = ["exhaustive_schedule"]

#: (m!)^2 grows brutally; 6 jobs = 518400 placements is already seconds.
_MAX_JOBS = 6


def exhaustive_schedule(
    instance: ProblemInstance, same_order: bool = False
) -> Schedule:
    """The optimal no-backfill list schedule, by exhaustive search.

    Args:
        instance: at most ``6`` jobs (the search is ``(m!)^2``).
        same_order: restrict both task types to one shared order (the
            OneListGreedy search space) instead of independent orders
            (the TwoListsGreedy space).
    """
    if instance.num_jobs > _MAX_JOBS:
        raise ValueError(
            f"exhaustive search is limited to {_MAX_JOBS} jobs "
            f"(got {instance.num_jobs})"
        )
    indices = list(range(instance.num_jobs))
    best: Schedule | None = None
    for comp_order in itertools.permutations(indices):
        io_orders = (
            (comp_order,)
            if same_order
            else itertools.permutations(indices)
        )
        for io_order in io_orders:
            candidate = schedule_orders(
                instance,
                list(comp_order),
                list(io_order),
                backfill=False,
                algorithm="Exhaustive",
            )
            if best is None or candidate.io_makespan < best.io_makespan:
                best = candidate
    if best is None:  # zero jobs
        best = Schedule(instance=instance, algorithm="Exhaustive")
    return best
