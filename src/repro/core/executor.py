"""Turn ordered task lists into concrete schedules.

Every algorithm in Section 3.3 ultimately produces *ordered lists* — one
order for compression tasks and one for I/O tasks (the two may coincide) —
plus a *rule of the game*: place each task as early as possible either
after all previously placed tasks (no backfilling) or in the earliest idle
gap (backfilling).  This module implements that common execution step so
the algorithms themselves stay small.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..telemetry import NULL_TRACER, NullTracer
from .model import Interval, ProblemInstance, Schedule
from .timeline import MachineTimeline

__all__ = ["schedule_orders", "trace_schedule"]


def trace_schedule(
    tracer: NullTracer,
    schedule: Schedule,
    suffix: str = "planned",
    **attrs,
) -> None:
    """Emit one span per obstacle and per scheduled task.

    Obstacles emit as ``compute`` (main) / ``core`` (background) spans;
    tasks as ``compress.<suffix>`` / ``write.<suffix>`` so planned
    placements and replayed executions stay distinguishable in one trace.
    """
    if not tracer.enabled:
        return
    inst = schedule.instance
    for obs in inst.main_obstacles:
        tracer.span("compute", "main", None, obs.start, obs.end, **attrs)
    for obs in inst.background_obstacles:
        tracer.span(
            "core", "background", None, obs.start, obs.end, **attrs
        )
    for job, iv in schedule.compression.items():
        tracer.span(
            f"compress.{suffix}", "main", job, iv.start, iv.end, **attrs
        )
    for job, iv in schedule.io.items():
        tracer.span(
            f"write.{suffix}", "background", job, iv.start, iv.end,
            **attrs,
        )


def schedule_orders(
    instance: ProblemInstance,
    compression_order: Sequence[int],
    io_order: Sequence[int],
    backfill: bool,
    algorithm: str = "",
    require_complete: bool = True,
    tracer: NullTracer = NULL_TRACER,
) -> Schedule:
    """Build a schedule from explicit task orders.

    Args:
        instance: the iteration's scheduling instance.
        compression_order: job indices in the order their compression tasks
            are considered for placement on the main thread.
        io_order: job indices in the order their I/O tasks are considered
            for placement on the background thread.
        backfill: when True, a task may slide into an earlier idle gap as
            long as it fits (this can never delay an already-placed task);
            when False, each task starts no earlier than the completion of
            every previously placed task on its machine.
        algorithm: name recorded on the returned schedule.
        require_complete: when True (the default) the orders must each be a
            permutation of all job indices.  The insertion greedies pass
            False to evaluate partial orders while they are being built.
        tracer: when recording, the placed schedule's tasks are emitted
            as ``compress.planned``/``write.planned`` spans.

    The R -> B dependency is enforced by giving each I/O task a ready time
    equal to its compression task's completion.
    """
    _check_orders(instance, compression_order, io_order, require_complete)

    main = MachineTimeline(instance.begin, instance.main_obstacles)
    background = MachineTimeline(
        instance.begin, instance.background_obstacles
    )
    jobs = instance.jobs

    compression: dict[int, Interval] = {}
    for job_index in compression_order:
        compression[job_index] = main.place_earliest(
            jobs[job_index].compression_time, instance.begin, backfill
        )

    io: dict[int, Interval] = {}
    for job_index in io_order:
        ready = max(
            compression[job_index].end,
            instance.begin + jobs[job_index].io_release,
        )
        io[job_index] = background.place_earliest(
            jobs[job_index].io_time, ready, backfill
        )

    schedule = Schedule(
        instance=instance,
        compression=compression,
        io=io,
        algorithm=algorithm,
    )
    if tracer.enabled:
        trace_schedule(tracer, schedule, algorithm=algorithm)
    return schedule


def _check_orders(
    instance: ProblemInstance,
    compression_order: Sequence[int],
    io_order: Sequence[int],
    require_complete: bool,
) -> None:
    comp = list(compression_order)
    io = list(io_order)
    if require_complete:
        expected = list(range(instance.num_jobs))
        if sorted(comp) != expected or sorted(io) != expected:
            raise ValueError(
                "orders must each be a permutation of "
                f"0..{instance.num_jobs - 1}"
            )
        return
    for what, order in (("compression", comp), ("io", io)):
        if len(set(order)) != len(order):
            raise ValueError(f"{what} order contains duplicates")
        if any(i < 0 or i >= instance.num_jobs for i in order):
            raise ValueError(f"{what} order contains invalid job indices")
    if set(io) != set(comp):
        raise ValueError("partial orders must cover the same job set")
