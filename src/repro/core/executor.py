"""Turn ordered task lists into concrete schedules.

Every algorithm in Section 3.3 ultimately produces *ordered lists* — one
order for compression tasks and one for I/O tasks (the two may coincide) —
plus a *rule of the game*: place each task as early as possible either
after all previously placed tasks (no backfilling) or in the earliest idle
gap (backfilling).  This module implements that common execution step so
the algorithms themselves stay small.
"""

from __future__ import annotations

from collections.abc import Sequence

from .model import Interval, ProblemInstance, Schedule
from .timeline import MachineTimeline

__all__ = ["schedule_orders"]


def schedule_orders(
    instance: ProblemInstance,
    compression_order: Sequence[int],
    io_order: Sequence[int],
    backfill: bool,
    algorithm: str = "",
    require_complete: bool = True,
) -> Schedule:
    """Build a schedule from explicit task orders.

    Args:
        instance: the iteration's scheduling instance.
        compression_order: job indices in the order their compression tasks
            are considered for placement on the main thread.
        io_order: job indices in the order their I/O tasks are considered
            for placement on the background thread.
        backfill: when True, a task may slide into an earlier idle gap as
            long as it fits (this can never delay an already-placed task);
            when False, each task starts no earlier than the completion of
            every previously placed task on its machine.
        algorithm: name recorded on the returned schedule.
        require_complete: when True (the default) the orders must each be a
            permutation of all job indices.  The insertion greedies pass
            False to evaluate partial orders while they are being built.

    The R -> B dependency is enforced by giving each I/O task a ready time
    equal to its compression task's completion.
    """
    _check_orders(instance, compression_order, io_order, require_complete)

    main = MachineTimeline(instance.begin, instance.main_obstacles)
    background = MachineTimeline(
        instance.begin, instance.background_obstacles
    )
    jobs = instance.jobs

    compression: dict[int, Interval] = {}
    for job_index in compression_order:
        compression[job_index] = main.place_earliest(
            jobs[job_index].compression_time, instance.begin, backfill
        )

    io: dict[int, Interval] = {}
    for job_index in io_order:
        ready = max(
            compression[job_index].end,
            instance.begin + jobs[job_index].io_release,
        )
        io[job_index] = background.place_earliest(
            jobs[job_index].io_time, ready, backfill
        )

    return Schedule(
        instance=instance,
        compression=compression,
        io=io,
        algorithm=algorithm,
    )


def _check_orders(
    instance: ProblemInstance,
    compression_order: Sequence[int],
    io_order: Sequence[int],
    require_complete: bool,
) -> None:
    comp = list(compression_order)
    io = list(io_order)
    if require_complete:
        expected = list(range(instance.num_jobs))
        if sorted(comp) != expected or sorted(io) != expected:
            raise ValueError(
                "orders must each be a permutation of "
                f"0..{instance.num_jobs - 1}"
            )
        return
    for what, order in (("compression", comp), ("io", io)):
        if len(set(order)) != len(order):
            raise ValueError(f"{what} order contains duplicates")
        if any(i < 0 or i >= instance.num_jobs for i in order):
            raise ValueError(f"{what} order contains invalid job indices")
    if set(io) != set(comp):
        raise ValueError("partial orders must cover the same job set")
