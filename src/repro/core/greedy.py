"""Insertion-based greedy algorithms (Section 3.3.3).

Both algorithms build the task order incrementally.  Jobs are considered in
generation order; when job ``r+1`` arrives it is *tried at every position*
of the partial order, each attempt is evaluated by greedily re-scheduling
the whole partial instance, and the best attempt (smallest I/O makespan,
ties broken by last compression completion) is kept.  Unlike backfilling,
an insertion may delay previously ordered tasks — the evaluation re-derives
all start times from scratch.

* :func:`one_list_greedy` keeps a single order shared by compression and
  I/O tasks: ``O(K^2)`` attempts overall.
* :func:`two_lists_greedy` maintains independent orders for the two task
  types and tries all ``(r+1)^2`` position pairs: ``O(K^3)`` overall.
"""

from __future__ import annotations

from .executor import schedule_orders
from .model import ProblemInstance, Schedule

__all__ = ["one_list_greedy", "two_lists_greedy"]


def _attempt_cost(schedule: Schedule) -> tuple[float, float]:
    """Rank attempts: primary I/O makespan, then last compression end.

    The secondary key keeps the main thread as free as possible for later
    insertions, which matters while the order is still partial.
    """
    last_compression = (
        max(iv.end for iv in schedule.compression.values())
        - schedule.instance.begin
        if schedule.compression
        else 0.0
    )
    return (schedule.io_makespan, last_compression)


def one_list_greedy(instance: ProblemInstance) -> Schedule:
    """Insertion greedy with one shared order for both task types."""
    order: list[int] = []
    for job_index in range(instance.num_jobs):
        best_order: list[int] | None = None
        best_cost: tuple[float, float] | None = None
        for position in range(len(order) + 1):
            candidate = order[:position] + [job_index] + order[position:]
            schedule = schedule_orders(
                instance,
                candidate,
                candidate,
                backfill=False,
                require_complete=False,
            )
            cost = _attempt_cost(schedule)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_order = candidate
        assert best_order is not None
        order = best_order
    return schedule_orders(
        instance, order, order, backfill=False, algorithm="OneListGreedy"
    )


def two_lists_greedy(instance: ProblemInstance) -> Schedule:
    """Insertion greedy with independent compression and I/O orders."""
    comp_order: list[int] = []
    io_order: list[int] = []
    for job_index in range(instance.num_jobs):
        best: tuple[list[int], list[int]] | None = None
        best_cost: tuple[float, float] | None = None
        for cpos in range(len(comp_order) + 1):
            comp_candidate = (
                comp_order[:cpos] + [job_index] + comp_order[cpos:]
            )
            for ipos in range(len(io_order) + 1):
                io_candidate = (
                    io_order[:ipos] + [job_index] + io_order[ipos:]
                )
                schedule = schedule_orders(
                    instance,
                    comp_candidate,
                    io_candidate,
                    backfill=False,
                    require_complete=False,
                )
                cost = _attempt_cost(schedule)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best = (comp_candidate, io_candidate)
        assert best is not None
        comp_order, io_order = best
    return schedule_orders(
        instance,
        comp_order,
        io_order,
        backfill=False,
        algorithm="TwoListsGreedy",
    )
