"""Exact Integer Linear Program from Appendix A of the paper.

The ILP minimises the iteration completion time ``T_overall`` subject to:

* (1) ``T_overall >= t_end(B_i)`` for every I/O task;
* (2) an I/O task starts after its compression task completes;
* (5)/(6) disjunctive big-Z ordering constraints between every pair of
  tasks on the same machine, driven by binary ``first`` variables;
* (7)-(10) each task fits entirely inside one availability gap of its
  machine, selected by binary ``delta`` variables;
* (11)/(12) every task picks exactly one gap.

The paper reports that the ILP "was unable to find a solution for any of
the experiments we conducted" at realistic sizes; we reproduce that by
solving with HiGHS (``scipy.optimize.milp``) under a time limit — small
instances solve to optimality, Table-1-sized instances time out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from .list_scheduling import generation_list_schedule
from .model import Interval, ProblemInstance, Schedule

__all__ = ["IlpResult", "ilp_schedule"]


@dataclass
class IlpResult:
    """Outcome of an ILP solve attempt."""

    schedule: Schedule | None
    status: str  # "optimal", "timeout", or "infeasible"
    objective: float | None
    num_variables: int
    num_constraints: int


def _gaps(
    begin: float, obstacles: tuple[Interval, ...], horizon: float
) -> list[tuple[float, float]]:
    """Availability gaps ``[(start, end), ...]`` between obstacles."""
    gaps = []
    cursor = begin
    for obs in obstacles:
        if obs.start > cursor:
            gaps.append((cursor, obs.start))
        cursor = max(cursor, obs.end)
    gaps.append((cursor, horizon))
    return gaps


def ilp_schedule(
    instance: ProblemInstance, time_limit: float = 60.0
) -> IlpResult:
    """Solve the Appendix A ILP with HiGHS under ``time_limit`` seconds."""
    m = instance.num_jobs
    if m == 0:
        return IlpResult(
            schedule=Schedule(instance=instance, algorithm="ILP"),
            status="optimal",
            objective=0.0,
            num_variables=0,
            num_constraints=0,
        )

    # Big-Z: the makespan of a naive schedule strictly dominates the
    # optimum, so it is a valid disjunctive constant (Appendix A).
    naive = generation_list_schedule(instance)
    big_z = naive.io_makespan + instance.length + 1.0
    horizon = instance.begin + big_z

    comp_gaps = _gaps(instance.begin, instance.main_obstacles, horizon)
    io_gaps = _gaps(instance.begin, instance.background_obstacles, horizon)

    pairs = [(i, j) for i in range(m) for j in range(i + 1, m)]

    # Variable layout.
    n_t_overall = 1
    n_start = 2 * m  # t_start(R_i) then t_start(B_i)
    n_first = 2 * len(pairs)  # first^R then first^B
    n_delta = m * len(comp_gaps) + m * len(io_gaps)
    num_vars = n_t_overall + n_start + n_first + n_delta

    idx_overall = 0

    def idx_r(i: int) -> int:
        return 1 + i

    def idx_b(i: int) -> int:
        return 1 + m + i

    first_base = 1 + 2 * m
    pair_pos = {pair: p for p, pair in enumerate(pairs)}

    def idx_first(machine: str, i: int, j: int) -> int:
        offset = 0 if machine == "R" else len(pairs)
        return first_base + offset + pair_pos[(i, j)]

    delta_base = first_base + 2 * len(pairs)

    def idx_delta(machine: str, i: int, h: int) -> int:
        if machine == "R":
            return delta_base + i * len(comp_gaps) + h
        return delta_base + m * len(comp_gaps) + i * len(io_gaps) + h

    durations = {
        "R": [j.compression_time for j in instance.jobs],
        "B": [j.io_time for j in instance.jobs],
    }
    start_index = {"R": idx_r, "B": idx_b}
    gaps_of = {"R": comp_gaps, "B": io_gaps}

    rows: list[np.ndarray] = []
    lbs: list[float] = []
    ubs: list[float] = []

    def add_row(coeffs: dict[int, float], lb: float, ub: float) -> None:
        row = np.zeros(num_vars)
        for k, v in coeffs.items():
            row[k] = v
        rows.append(row)
        lbs.append(lb)
        ubs.append(ub)

    inf = np.inf
    for i in range(m):
        # (1) T_overall - t_start(B_i) >= c'_i
        add_row({idx_overall: 1.0, idx_b(i): -1.0}, durations["B"][i], inf)
        # (2) t_start(B_i) - t_start(R_i) >= c_i
        add_row({idx_b(i): 1.0, idx_r(i): -1.0}, durations["R"][i], inf)
        # io_release extension: t_start(B_i) >= begin + release.
        release = instance.jobs[i].io_release
        if release > 0:
            add_row({idx_b(i): 1.0}, instance.begin + release, inf)

    for machine in ("R", "B"):
        dur = durations[machine]
        sidx = start_index[machine]
        for i, j in pairs:
            f = idx_first(machine, i, j)
            # (5) t_start(X_j) >= t_end(X_i) - (1 - first) * Z
            #  => t_start(X_j) - t_start(X_i) + Z*(-first) >= c_i - Z
            add_row(
                {sidx(j): 1.0, sidx(i): -1.0, f: -big_z},
                dur[i] - big_z,
                inf,
            )
            # (6) t_start(X_i) >= t_end(X_j) - first * Z
            add_row(
                {sidx(i): 1.0, sidx(j): -1.0, f: big_z},
                dur[j],
                inf,
            )
        gaps = gaps_of[machine]
        for i in range(m):
            # (7)/(8) start after the chosen gap opens:
            #   t_start - sum_h delta_h * gap_start_h >= 0
            coeffs = {sidx(i): 1.0}
            for h, (gs, _) in enumerate(gaps):
                coeffs[idx_delta(machine, i, h)] = -gs
            add_row(coeffs, 0.0, inf)
            # (9)/(10) end before the chosen gap closes:
            #   sum_h delta_h * gap_end_h - t_start >= c_i
            coeffs = {sidx(i): -1.0}
            for h, (_, ge) in enumerate(gaps):
                coeffs[idx_delta(machine, i, h)] = ge
            add_row(coeffs, dur[i], inf)
            # (11)/(12) exactly one gap.
            coeffs = {
                idx_delta(machine, i, h): 1.0 for h in range(len(gaps))
            }
            add_row(coeffs, 1.0, 1.0)

    objective = np.zeros(num_vars)
    objective[idx_overall] = 1.0

    lower = np.zeros(num_vars)
    upper = np.full(num_vars, horizon)
    lower[0] = 0.0
    lower[1 : 1 + 2 * m] = instance.begin
    upper[first_base:] = 1.0
    lower[first_base:] = 0.0
    upper[idx_overall] = big_z

    integrality = np.zeros(num_vars)
    integrality[first_base:] = 1.0

    result = milp(
        c=objective,
        constraints=[LinearConstraint(np.vstack(rows), lbs, ubs)],
        integrality=integrality,
        bounds=Bounds(lower, upper),
        options={"time_limit": time_limit, "presolve": True},
    )

    if result.x is None:
        status = "timeout" if result.status == 1 else "infeasible"
        return IlpResult(
            schedule=None,
            status=status,
            objective=None,
            num_variables=num_vars,
            num_constraints=len(rows),
        )

    x = result.x
    compression = {
        i: Interval(x[idx_r(i)], x[idx_r(i)] + durations["R"][i])
        for i in range(m)
    }
    io = {
        i: Interval(x[idx_b(i)], x[idx_b(i)] + durations["B"][i])
        for i in range(m)
    }
    schedule = Schedule(
        instance=instance, compression=compression, io=io, algorithm="ILP"
    )
    return IlpResult(
        schedule=schedule,
        status="optimal" if result.status == 0 else "timeout",
        objective=float(result.fun),
        num_variables=num_vars,
        num_constraints=len(rows),
    )
