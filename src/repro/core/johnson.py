"""Johnson's rule and its two extensions to unavailability intervals.

Johnson's algorithm (1954) solves the two-machine flow shop optimally when
both machines are always available: jobs whose first-machine time is no
longer than their second-machine time (set ``M1``) run first, sorted by
non-decreasing first-machine time; the remaining jobs (``M2``) follow,
sorted by non-increasing second-machine time.

With obstacles the problem becomes NP-complete, so the paper keeps
Johnson's *order* and changes only the placement rule:

* :func:`ext_johnson` places tasks in Johnson order strictly after all
  previously placed tasks (list scheduling, no backfilling);
* :func:`ext_johnson_backfill` additionally lets a task slide into an
  earlier idle gap when it fits, which never delays a placed task.

The paper's evaluation (Table 1) finds ExtJohnson+BF the best trade-off of
schedule quality and scheduling overhead, and adopts it for the framework.
"""

from __future__ import annotations

from .executor import schedule_orders
from .model import Job, ProblemInstance, Schedule

__all__ = ["johnson_order", "ext_johnson", "ext_johnson_backfill"]


def johnson_order(jobs: tuple[Job, ...]) -> list[int]:
    """Job indices in Johnson's optimal no-obstacle order.

    Ties inside ``M1``/``M2`` are broken by generation index so the order
    is deterministic.
    """
    m1 = [j for j in jobs if j.compression_time <= j.io_time]
    m2 = [j for j in jobs if j.compression_time > j.io_time]
    m1.sort(key=lambda j: (j.compression_time, j.index))
    m2.sort(key=lambda j: (-j.io_time, j.index))
    return [j.index for j in m1 + m2]


def ext_johnson(instance: ProblemInstance) -> Schedule:
    """Johnson order, earliest placement after already-scheduled tasks."""
    order = johnson_order(instance.jobs)
    return schedule_orders(
        instance, order, order, backfill=False, algorithm="ExtJohnson"
    )


def ext_johnson_backfill(instance: ProblemInstance) -> Schedule:
    """Johnson order with backfilling into idle gaps (the adopted default)."""
    order = johnson_order(instance.jobs)
    return schedule_orders(
        instance, order, order, backfill=True, algorithm="ExtJohnson+BF"
    )
