"""List scheduling in block-generation order (Section 3.3.2).

``GenerationListSchedule`` keeps the jobs in the order the fine-grained
compression produced them (field by field, block by block) and places each
task as early as possible after the already-scheduled tasks.  The ``+BF``
variant allows a task to slot into an earlier idle gap when that does not
delay any already-placed task.

These two algorithms are the cheapest of the six; they serve as the
baseline orderings against which the Johnson-based and greedy orders are
compared in Table 1.
"""

from __future__ import annotations

from .executor import schedule_orders
from .model import ProblemInstance, Schedule

__all__ = ["generation_list_schedule", "generation_list_schedule_backfill"]


def generation_list_schedule(instance: ProblemInstance) -> Schedule:
    """Generation order, no backfilling."""
    order = list(range(instance.num_jobs))
    return schedule_orders(
        instance,
        order,
        order,
        backfill=False,
        algorithm="GenerationListSchedule",
    )


def generation_list_schedule_backfill(instance: ProblemInstance) -> Schedule:
    """Generation order with backfilling."""
    order = list(range(instance.num_jobs))
    return schedule_orders(
        instance,
        order,
        order,
        backfill=True,
        algorithm="GenerationListSchedule+BF",
    )
