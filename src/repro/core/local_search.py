"""Local-search scheduler: an anytime extension beyond the paper's six.

The paper's heuristics are one-shot constructions; the ILP is exact but
intractable.  This module fills the gap between them with a time-budgeted
hill climb over task orders (a natural "future work" point the Section
3.3 design invites):

* start from the best of ExtJohnson+BF's order and the generation order;
* neighbourhood: swap two positions or relocate one job in the shared
  order (evaluated with the same no-backfill greedy placement the
  insertion greedies use, so improvements carry the same semantics);
* first-improvement steps until the time budget or a full pass without
  improvement ("local optimum").

The result is never worse than its starting order and approaches the
greedies' quality at a fraction of TwoListsGreedy's cost for large m.
"""

from __future__ import annotations

import time

import numpy as np

from .executor import schedule_orders
from .johnson import johnson_order
from .model import ProblemInstance, Schedule

__all__ = ["local_search_schedule"]


def local_search_schedule(
    instance: ProblemInstance,
    time_budget_s: float = 0.25,
    seed: int = 0,
    backfill: bool = True,
) -> Schedule:
    """Hill-climb task orders within ``time_budget_s`` seconds.

    Args:
        instance: the iteration's scheduling instance.
        time_budget_s: wall-clock budget; the search is anytime and
            returns its best-so-far when it expires.
        seed: neighbourhood sampling seed (deterministic given budget
            only in the no-improvement path; results always validate).
        backfill: placement rule used when *materializing* the final
            schedule (the search itself evaluates without backfilling,
            like the insertion greedies).
    """
    m = instance.num_jobs
    if m == 0:
        return Schedule(instance=instance, algorithm="LocalSearch")

    candidates = [
        johnson_order(instance.jobs),
        list(range(m)),
    ]
    best_order = min(
        candidates,
        key=lambda order: schedule_orders(
            instance, order, order, backfill=False
        ).io_makespan,
    )
    best_value = schedule_orders(
        instance, best_order, best_order, backfill=False
    ).io_makespan

    rng = np.random.default_rng(seed)
    deadline = time.perf_counter() + time_budget_s
    stale_rounds = 0
    while time.perf_counter() < deadline and stale_rounds < 2 and m > 1:
        improved = False
        # One randomized pass over swap and relocate moves.
        for _ in range(2 * m):
            if time.perf_counter() >= deadline:
                break
            i, j = rng.integers(0, m, size=2)
            if i == j:
                continue
            candidate = list(best_order)
            if rng.random() < 0.5:
                candidate[i], candidate[j] = candidate[j], candidate[i]
            else:
                job = candidate.pop(int(i))
                candidate.insert(int(j), job)
            value = schedule_orders(
                instance, candidate, candidate, backfill=False
            ).io_makespan
            if value < best_value - 1e-12:
                best_order = candidate
                best_value = value
                improved = True
        stale_rounds = 0 if improved else stale_rounds + 1

    return schedule_orders(
        instance,
        best_order,
        best_order,
        backfill=backfill,
        algorithm="LocalSearch",
    )
