"""Problem model for the two-machine flow-shop scheduling problem.

This module defines the data model from Section 3.1 of the paper:

* An iteration occupies the window ``[begin, end]``.
* The *main thread* (machine 1) runs the application's computing tasks
  ``Y_{n,1..k}``; these are immovable **obstacles** for compression tasks.
* The *background thread* (machine 2) runs the application's core tasks
  ``G_{n,1..o}`` (communication or application I/O); these are immovable
  obstacles for the compressed-data I/O tasks.
* A **job** ``j`` is the pair of a compression task ``R_j`` (duration
  ``c_j``, runs on the main thread) and an I/O task ``B_j`` (duration
  ``c'_j``, runs on the background thread).  ``B_j`` may not start before
  ``R_j`` completes.  Neither task may be preempted or overlap an obstacle.

A :class:`Schedule` assigns a start time to every task.  The paper's
objective is to minimise the completion time of the last I/O task relative
to the iteration start (``io_makespan``); the iteration's overall length is
``max(T_n, io_makespan)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

__all__ = [
    "EPSILON",
    "Interval",
    "Job",
    "ProblemInstance",
    "ScheduledTask",
    "Schedule",
    "ScheduleError",
]

#: Numerical tolerance for interval comparisons (seconds).
EPSILON = 1e-9


class ScheduleError(ValueError):
    """Raised when a schedule violates a constraint from Section 3.1."""


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open time interval ``[start, end)``.

    Obstacles and scheduled tasks are both represented as intervals.  The
    half-open convention means an interval ending at ``t`` does not overlap
    one starting at ``t``, matching back-to-back task execution.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if not (self.end >= self.start):
            raise ValueError(
                f"interval end {self.end!r} precedes start {self.start!r}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share more than a boundary point."""
        return (
            self.start < other.end - EPSILON
            and other.start < self.end - EPSILON
        )

    def contains_point(self, t: float) -> bool:
        return self.start - EPSILON <= t <= self.end + EPSILON

    def shifted(self, delta: float) -> "Interval":
        return Interval(self.start + delta, self.end + delta)


@dataclass(frozen=True)
class Job:
    """A compression task paired with the I/O task writing its output.

    Attributes:
        index: position of the job in generation order (the order the
            fine-grained compression produced the blocks).
        compression_time: duration ``c_j`` of the compression task ``R_j``.
        io_time: duration ``c'_j`` of the I/O task ``B_j``.
        label: optional human-readable name (e.g. ``"temperature[3]"``).
        io_release: extra earliest-start constraint on the I/O task,
            relative to the iteration begin.  Zero for ordinary jobs; the
            I/O balancer (Section 3.4) uses it for moved-in tasks whose
            data is compressed by *another* process, so the local zero-
            length compression stub must not make the write eligible
            before the donor's predicted compression completes.
    """

    index: int
    compression_time: float
    io_time: float
    label: str = ""
    io_release: float = 0.0

    def __post_init__(self) -> None:
        if self.compression_time < 0 or self.io_time < 0:
            raise ValueError("task durations must be non-negative")
        if self.io_release < 0:
            raise ValueError("io_release must be non-negative")


@dataclass(frozen=True)
class ProblemInstance:
    """One iteration's scheduling instance.

    Attributes:
        begin: iteration start time ``beg_n``.
        end: iteration end time ``end_n`` (the window the paper tries to
            hide compression and I/O inside; tasks may spill past it, which
            is counted as overhead).
        jobs: the ``m`` jobs to schedule.
        main_obstacles: unavailability intervals on the main thread (the
            computing tasks ``Y``), within ``[begin, end]``.
        background_obstacles: unavailability intervals on the background
            thread (the core tasks ``G``), within ``[begin, end]``.
    """

    begin: float
    end: float
    jobs: tuple[Job, ...]
    main_obstacles: tuple[Interval, ...] = ()
    background_obstacles: tuple[Interval, ...] = ()

    def __post_init__(self) -> None:
        if self.end < self.begin:
            raise ValueError("iteration end precedes begin")
        object.__setattr__(self, "jobs", tuple(self.jobs))
        object.__setattr__(
            self, "main_obstacles", _normalized(self.main_obstacles)
        )
        object.__setattr__(
            self,
            "background_obstacles",
            _normalized(self.background_obstacles),
        )
        for name, obstacles in (
            ("main", self.main_obstacles),
            ("background", self.background_obstacles),
        ):
            for a, b in zip(obstacles, obstacles[1:]):
                if a.overlaps(b):
                    raise ValueError(f"{name} obstacles overlap: {a} and {b}")
        for i, job in enumerate(self.jobs):
            if job.index != i:
                raise ValueError(
                    f"job at position {i} has index {job.index}; "
                    "indices must match generation order"
                )

    @property
    def length(self) -> float:
        """The iteration length ``T_n``."""
        return self.end - self.begin

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    def total_compression_time(self) -> float:
        return sum(j.compression_time for j in self.jobs)

    def total_io_time(self) -> float:
        return sum(j.io_time for j in self.jobs)

    def with_jobs(self, jobs: tuple[Job, ...]) -> "ProblemInstance":
        """A copy of this instance with a different job set."""
        return replace(self, jobs=tuple(jobs))


@dataclass(frozen=True)
class ScheduledTask:
    """A task placed on a machine: which job, which half, and when."""

    job_index: int
    kind: str  # "compression" or "io"
    interval: Interval

    def __post_init__(self) -> None:
        if self.kind not in ("compression", "io"):
            raise ValueError(f"unknown task kind {self.kind!r}")


@dataclass
class Schedule:
    """A complete assignment of start times to all tasks of an instance.

    ``compression`` and ``io`` map job index to the task's interval.  The
    schedule records which algorithm produced it for reporting.
    """

    instance: ProblemInstance
    compression: dict[int, Interval] = field(default_factory=dict)
    io: dict[int, Interval] = field(default_factory=dict)
    algorithm: str = ""

    @property
    def io_makespan(self) -> float:
        """Completion time of the last I/O task, relative to ``begin``.

        This is the quantity every algorithm in Section 3.3 minimises.
        Returns 0.0 for an instance with no jobs.
        """
        if not self.io:
            return 0.0
        return max(iv.end for iv in self.io.values()) - self.instance.begin

    @property
    def overall_time(self) -> float:
        """Iteration length including any spill of I/O past ``end``."""
        return max(self.instance.length, self.io_makespan)

    @property
    def overhead(self) -> float:
        """Time added to the iteration by compression + I/O (>= 0)."""
        return self.overall_time - self.instance.length

    def tasks(self) -> list[ScheduledTask]:
        """All tasks, sorted by start time."""
        out = [
            ScheduledTask(j, "compression", iv)
            for j, iv in self.compression.items()
        ]
        out += [ScheduledTask(j, "io", iv) for j, iv in self.io.items()]
        out.sort(key=lambda t: (t.interval.start, t.kind, t.job_index))
        return out

    def validate(self) -> None:
        """Check every constraint from Section 3.1; raise on violation.

        Checks: completeness, duration fidelity, no start before ``begin``,
        no overlap among tasks on the same machine, no overlap with that
        machine's obstacles, and the R -> B dependency per job.
        """
        inst = self.instance
        expected = {job.index for job in inst.jobs}
        if set(self.compression) != expected or set(self.io) != expected:
            raise ScheduleError("schedule does not cover every job exactly once")

        for job in inst.jobs:
            r = self.compression[job.index]
            b = self.io[job.index]
            if not math.isclose(
                r.duration, job.compression_time, abs_tol=1e-6
            ):
                raise ScheduleError(
                    f"job {job.index}: compression interval {r} does not "
                    f"match duration {job.compression_time}"
                )
            if not math.isclose(b.duration, job.io_time, abs_tol=1e-6):
                raise ScheduleError(
                    f"job {job.index}: io interval {b} does not match "
                    f"duration {job.io_time}"
                )
            if r.start < inst.begin - EPSILON:
                raise ScheduleError(
                    f"job {job.index}: compression starts before iteration"
                )
            if b.start < r.end - EPSILON:
                raise ScheduleError(
                    f"job {job.index}: io starts at {b.start} before "
                    f"compression ends at {r.end}"
                )
            if b.start < inst.begin + job.io_release - EPSILON:
                raise ScheduleError(
                    f"job {job.index}: io starts at {b.start} before its "
                    f"release at {inst.begin + job.io_release}"
                )

        _check_machine(
            "main", list(self.compression.values()), inst.main_obstacles
        )
        _check_machine(
            "background", list(self.io.values()), inst.background_obstacles
        )

    def is_valid(self) -> bool:
        try:
            self.validate()
        except ScheduleError:
            return False
        return True


def _normalized(intervals) -> tuple[Interval, ...]:
    return tuple(sorted(intervals, key=lambda iv: (iv.start, iv.end)))


def _check_machine(
    name: str, tasks: list[Interval], obstacles: tuple[Interval, ...]
) -> None:
    nonzero = [iv for iv in tasks if iv.duration > EPSILON]
    nonzero.sort(key=lambda iv: iv.start)
    for a, b in zip(nonzero, nonzero[1:]):
        if a.overlaps(b):
            raise ScheduleError(f"{name}: tasks overlap: {a} and {b}")
    # Sub-epsilon obstacles occupy no schedulable time; the placement
    # machinery ignores them, so the validator must too.
    real_obstacles = [o for o in obstacles if o.duration > EPSILON]
    for task in nonzero:
        for obs in real_obstacles:
            if task.overlaps(obs):
                raise ScheduleError(
                    f"{name}: task {task} overlaps obstacle {obs}"
                )
