"""History-based prediction of the next iteration's scheduling inputs.

Section 3.1: "for scheduling the n-th iteration we will use the recorded
characteristics of the (n-1)-th iteration" — obstacle intervals and the
iteration length are assumed equal to the previous iteration's, while
compression durations are predicted from the data itself (ratio/throughput
models live in :mod:`repro.compression.ratio_model`).

All interval times recorded here are *relative to the iteration begin*, so
a prediction can be re-anchored at any future start time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .model import Interval, Job, ProblemInstance

__all__ = ["IterationRecord", "IterationHistory"]


@dataclass(frozen=True)
class IterationRecord:
    """Observed characteristics of one completed iteration.

    Intervals are relative to the iteration's begin time.
    """

    length: float
    main_obstacles: tuple[Interval, ...]
    background_obstacles: tuple[Interval, ...]
    io_durations: tuple[float, ...] = ()
    compression_ratios: tuple[float, ...] = ()


@dataclass
class IterationHistory:
    """Rolling record of recent iterations for one process.

    Only the most recent ``window`` records are kept; prediction uses the
    last record directly (the paper's neighbouring-iteration similarity
    assumption), while :meth:`average_ratio` smooths compression-ratio
    estimates over the window for offset reservation.
    """

    window: int = 4
    records: list[IterationRecord] = field(default_factory=list)

    def observe(self, record: IterationRecord) -> None:
        self.records.append(record)
        if len(self.records) > self.window:
            del self.records[0]

    @property
    def last(self) -> IterationRecord | None:
        return self.records[-1] if self.records else None

    def predict_instance(
        self, begin: float, jobs: tuple[Job, ...]
    ) -> ProblemInstance:
        """Predicted instance for the iteration starting at ``begin``.

        Obstacle intervals and length come from the previous iteration;
        ``jobs`` carry the (independently predicted) compression and I/O
        durations.  Raises when no history exists yet — the framework runs
        the first dumping iteration unscheduled to gather it.
        """
        last = self.last
        if last is None:
            raise LookupError("no iteration history recorded yet")
        return ProblemInstance(
            begin=begin,
            end=begin + last.length,
            jobs=jobs,
            main_obstacles=tuple(
                iv.shifted(begin) for iv in last.main_obstacles
            ),
            background_obstacles=tuple(
                iv.shifted(begin) for iv in last.background_obstacles
            ),
        )

    def predicted_ratio(self, job_index: int, default: float) -> float:
        """Previous iteration's compression ratio for a block, if known."""
        last = self.last
        if last is None or job_index >= len(last.compression_ratios):
            return default
        return last.compression_ratios[job_index]

    def predicted_io_durations(self) -> tuple[float, ...]:
        last = self.last
        return last.io_durations if last is not None else ()
