"""Registry of the six scheduling heuristics from Section 3.3.

The registry maps the paper's algorithm names to callables with the common
signature ``(ProblemInstance) -> Schedule`` so evaluation harnesses can
sweep all of them uniformly (as Table 1 does).  The exact ILP is exposed
separately through :mod:`repro.core.ilp` because it needs a time limit and
can fail.
"""

from __future__ import annotations

from collections.abc import Callable

from .greedy import one_list_greedy, two_lists_greedy
from .johnson import ext_johnson, ext_johnson_backfill
from .list_scheduling import (
    generation_list_schedule,
    generation_list_schedule_backfill,
)
from .model import ProblemInstance, Schedule

__all__ = ["ALGORITHMS", "DEFAULT_ALGORITHM", "get_algorithm", "list_algorithms"]

Scheduler = Callable[[ProblemInstance], Schedule]

ALGORITHMS: dict[str, Scheduler] = {
    "ExtJohnson": ext_johnson,
    "ExtJohnson+BF": ext_johnson_backfill,
    "GenerationListSchedule": generation_list_schedule,
    "GenerationListSchedule+BF": generation_list_schedule_backfill,
    "OneListGreedy": one_list_greedy,
    "TwoListsGreedy": two_lists_greedy,
}

#: The algorithm the paper adopts after Table 1.
DEFAULT_ALGORITHM = "ExtJohnson+BF"


def get_algorithm(name: str) -> Scheduler:
    """Look up a scheduler by its paper name; raises ``KeyError``."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None


def list_algorithms() -> list[str]:
    """All registered algorithm names, in the paper's presentation order."""
    return list(ALGORITHMS)
