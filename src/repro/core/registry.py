"""Registry of scheduling algorithms (Section 3.3 + the exact solvers).

Entries carry metadata — :class:`AlgorithmInfo` records the paper name,
whether the solver is exact, and whether it needs a time limit — so the
:func:`~repro.core.solve.solve` facade can dispatch any of them through
one call.  The historical surface is preserved: ``ALGORITHMS`` still maps
the six heuristic names to their bare callables, ``get_algorithm`` still
returns the callable itself, and ``list_algorithms()`` still returns the
six heuristics in the paper's presentation order.

The registry is safe under concurrent callers: the scheduling service
dispatches ``solve()`` from a worker pool while tests (or plugins)
register experimental algorithms, so every mutation and every read of
the shared tables happens under one lock, and the query functions return
snapshots rather than live views.  ``ALGORITHMS`` and ``REGISTRY``
remain importable module-level dicts for backward compatibility; mutate
them only through :func:`register_algorithm` /
:func:`unregister_algorithm`.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass

from .bruteforce import exhaustive_schedule
from .greedy import one_list_greedy, two_lists_greedy
from .ilp import ilp_schedule
from .johnson import ext_johnson, ext_johnson_backfill
from .list_scheduling import (
    generation_list_schedule,
    generation_list_schedule_backfill,
)
from .model import ProblemInstance, Schedule

__all__ = [
    "ALGORITHMS",
    "REGISTRY",
    "AlgorithmInfo",
    "DEFAULT_ALGORITHM",
    "get_algorithm",
    "get_algorithm_info",
    "list_algorithms",
    "register_algorithm",
    "unregister_algorithm",
]

Scheduler = Callable[[ProblemInstance], Schedule]


@dataclass(frozen=True)
class AlgorithmInfo:
    """One registry entry: the callable plus dispatch metadata.

    ``exact`` marks optimal solvers (the Appendix A ILP, the exhaustive
    list-schedule search) as opposed to the Section 3.3 heuristics;
    ``needs_time_limit`` marks solvers whose signature takes a
    ``time_limit`` keyword and whose result may be a non-schedule
    wrapper (the ILP's :class:`~repro.core.ilp.IlpResult`).
    """

    name: str
    func: Callable
    exact: bool = False
    needs_time_limit: bool = False


#: Guards every mutation and read of the shared registry tables.
_LOCK = threading.RLock()

#: Every registered algorithm, heuristics first in the paper's
#: presentation order, then the exact solvers.
REGISTRY: dict[str, AlgorithmInfo] = {
    info.name: info
    for info in (
        AlgorithmInfo("ExtJohnson", ext_johnson),
        AlgorithmInfo("ExtJohnson+BF", ext_johnson_backfill),
        AlgorithmInfo("GenerationListSchedule", generation_list_schedule),
        AlgorithmInfo(
            "GenerationListSchedule+BF", generation_list_schedule_backfill
        ),
        AlgorithmInfo("OneListGreedy", one_list_greedy),
        AlgorithmInfo("TwoListsGreedy", two_lists_greedy),
        AlgorithmInfo("Exhaustive", exhaustive_schedule, exact=True),
        AlgorithmInfo(
            "ILP", ilp_schedule, exact=True, needs_time_limit=True
        ),
    )
}

#: The six Section 3.3 heuristics as bare callables (legacy surface).
ALGORITHMS: dict[str, Scheduler] = {
    name: info.func
    for name, info in REGISTRY.items()
    if not info.exact
}

#: Names of the built-in (paper) algorithms, protected from removal.
_BUILTIN_NAMES = frozenset(REGISTRY)

#: The algorithm the paper adopts after Table 1.
DEFAULT_ALGORITHM = "ExtJohnson+BF"


def register_algorithm(
    info: AlgorithmInfo, *, replace: bool = False
) -> AlgorithmInfo:
    """Add an algorithm to the registry (thread-safe).

    Raises ``ValueError`` when the name is already taken, unless
    ``replace=True``; the paper's built-in entries can never be
    replaced.  Returns ``info`` so it can be used as a decorator
    helper's tail call.
    """
    if not isinstance(info, AlgorithmInfo):
        raise TypeError(
            f"register_algorithm takes an AlgorithmInfo, got {info!r}"
        )
    if not info.name:
        raise ValueError("AlgorithmInfo.name must be non-empty")
    with _LOCK:
        existing = REGISTRY.get(info.name)
        if existing is not None:
            if info.name in _BUILTIN_NAMES:
                raise ValueError(
                    f"algorithm {info.name!r} is a paper built-in and "
                    "cannot be replaced"
                )
            if not replace:
                raise ValueError(
                    f"algorithm {info.name!r} already registered; pass "
                    "replace=True to override"
                )
        REGISTRY[info.name] = info
        if not info.exact:
            ALGORITHMS[info.name] = info.func
        else:
            ALGORITHMS.pop(info.name, None)
    return info


def unregister_algorithm(name: str) -> None:
    """Remove a previously registered algorithm (thread-safe).

    Raises ``KeyError`` for unknown names and ``ValueError`` for the
    paper's built-in entries.
    """
    with _LOCK:
        if name in _BUILTIN_NAMES:
            raise ValueError(
                f"algorithm {name!r} is a paper built-in and cannot be "
                "unregistered"
            )
        if name not in REGISTRY:
            known = ", ".join(sorted(REGISTRY))
            raise KeyError(
                f"unknown algorithm {name!r}; known: {known}"
            )
        del REGISTRY[name]
        ALGORITHMS.pop(name, None)


def get_algorithm(name: str) -> Scheduler:
    """Look up a heuristic's callable by its paper name; raises
    ``KeyError`` (exact solvers are reachable via
    :func:`get_algorithm_info` or :func:`~repro.core.solve.solve`)."""
    with _LOCK:
        try:
            return ALGORITHMS[name]
        except KeyError:
            known = ", ".join(sorted(ALGORITHMS))
    raise KeyError(f"unknown algorithm {name!r}; known: {known}")


def get_algorithm_info(name: str) -> AlgorithmInfo:
    """Look up any registered algorithm's metadata entry by name."""
    with _LOCK:
        try:
            return REGISTRY[name]
        except KeyError:
            known = ", ".join(sorted(REGISTRY))
    raise KeyError(f"unknown algorithm {name!r}; known: {known}")


def list_algorithms(include_exact: bool = False) -> list[str]:
    """Registered algorithm names, in the paper's presentation order.

    By default only the six heuristics (the historical behaviour);
    ``include_exact=True`` appends the exact solvers.  Returns a
    snapshot: later registry mutations do not affect the list.
    """
    with _LOCK:
        if include_exact:
            return list(REGISTRY)
        return list(ALGORITHMS)
