"""Resumable (preemptive) scheduling — the Section 3.2 theory counterpart.

The paper's jobs are *non-resumable*: a task interrupted by an
unavailability interval must restart, so the scheduler never lets a task
straddle an obstacle.  Scheduling theory (Lee 1997) contrasts this with
*resumable* jobs, which pause at an obstacle and continue after it — a
strictly easier problem whose makespans lower-bound the non-resumable
ones.

This module schedules a given order under resumable semantics, which
serves two purposes:

* quantify the **cost of non-preemption** on an instance (how much of the
  heuristics' makespan is forced by the no-straddling rule vs. by the
  order);
* provide a tighter order-specific reference than the order-free bounds
  in :mod:`repro.core.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .johnson import johnson_order
from .model import EPSILON, Interval, ProblemInstance

__all__ = ["ResumableSchedule", "resumable_schedule", "preemption_cost"]


@dataclass(frozen=True)
class ResumableSchedule:
    """Piecewise task placements under resumable semantics."""

    compression: dict[int, tuple[Interval, ...]]
    io: dict[int, tuple[Interval, ...]]
    io_makespan: float


class _ResumableMachine:
    """Packs work into free time, splitting across obstacles."""

    def __init__(self, begin: float, obstacles: tuple[Interval, ...]):
        self._obstacles = [
            o for o in obstacles if o.duration > EPSILON
        ]
        self._cursor = begin

    def run(self, duration: float, ready: float) -> tuple[Interval, ...]:
        """Execute ``duration`` of work starting no earlier than
        ``ready``, pausing at obstacles; returns the executed pieces."""
        start = max(self._cursor, ready)
        remaining = duration
        pieces: list[Interval] = []
        if remaining <= EPSILON:
            self._cursor = start
            return (Interval(start, start),)
        for obs in self._obstacles:
            if obs.end <= start:
                continue
            gap = max(0.0, obs.start - start)
            if gap > EPSILON:
                piece = min(gap, remaining)
                pieces.append(Interval(start, start + piece))
                remaining -= piece
                if remaining <= EPSILON:
                    self._cursor = pieces[-1].end
                    return tuple(pieces)
            start = max(start, obs.end)
        pieces.append(Interval(start, start + remaining))
        self._cursor = pieces[-1].end
        return tuple(pieces)


def resumable_schedule(
    instance: ProblemInstance, order: list[int] | None = None
) -> ResumableSchedule:
    """Schedule ``order`` (default: Johnson's) with resumable tasks."""
    if order is None:
        order = johnson_order(instance.jobs)
    main = _ResumableMachine(instance.begin, instance.main_obstacles)
    background = _ResumableMachine(
        instance.begin, instance.background_obstacles
    )
    compression: dict[int, tuple[Interval, ...]] = {}
    io: dict[int, tuple[Interval, ...]] = {}
    for j in order:
        job = instance.jobs[j]
        compression[j] = main.run(job.compression_time, instance.begin)
    for j in order:
        job = instance.jobs[j]
        ready = max(
            compression[j][-1].end, instance.begin + job.io_release
        )
        io[j] = background.run(job.io_time, ready)
    makespan = (
        max((pieces[-1].end for pieces in io.values()), default=instance.begin)
        - instance.begin
    )
    return ResumableSchedule(
        compression=compression, io=io, io_makespan=makespan
    )


def preemption_cost(
    instance: ProblemInstance, non_resumable_makespan: float
) -> float:
    """Fraction of a makespan attributable to the no-straddling rule.

    ``(non_resumable - resumable) / resumable`` under Johnson's order;
    0.0 means preemption would not have helped this instance.
    """
    resumable = resumable_schedule(instance).io_makespan
    if resumable <= 0:
        return 0.0
    return max(0.0, (non_resumable_makespan - resumable) / resumable)
