"""JSON serialization and fingerprints for instances and schedules.

Lets schedules be exported for external timeline viewers, archived next
to experiment results, or shipped between a planner process and an
executor — a small but real interoperability surface, with exact
round-tripping (floats pass through ``json`` unmodified).

:func:`instance_fingerprint` is the canonical content identity of an
instance — the same canonical-JSON + CRC32C signature the write-ahead
journal stamps campaigns with (:mod:`repro.durability.fingerprint`) —
and is what the scheduling service's memo cache keys solutions by.
"""

from __future__ import annotations

import json

from ..durability.fingerprint import fingerprint_json
from .model import Interval, Job, ProblemInstance, Schedule

__all__ = [
    "instance_json_dict",
    "instance_to_json",
    "instance_from_json",
    "instance_fingerprint",
    "schedule_to_json",
    "schedule_from_json",
]


def _interval(iv: Interval) -> list[float]:
    return [iv.start, iv.end]


def instance_json_dict(instance: ProblemInstance) -> dict:
    """The JSON-safe dict form of a scheduling instance.

    This shape is shared by :func:`instance_to_json`, the service's
    ``/solve`` request body, and :func:`instance_fingerprint` — it *is*
    the instance's canonical serialized identity.
    """
    return {
        "begin": instance.begin,
        "end": instance.end,
        "jobs": [
            {
                "index": j.index,
                "compression_time": j.compression_time,
                "io_time": j.io_time,
                "label": j.label,
                "io_release": j.io_release,
            }
            for j in instance.jobs
        ],
        "main_obstacles": [
            _interval(o) for o in instance.main_obstacles
        ],
        "background_obstacles": [
            _interval(o) for o in instance.background_obstacles
        ],
    }


def instance_to_json(instance: ProblemInstance) -> str:
    """Serialize a scheduling instance to a JSON string."""
    return json.dumps(instance_json_dict(instance))


def instance_fingerprint(instance: ProblemInstance) -> str:
    """Canonical-JSON + CRC32C content fingerprint of an instance.

    Two instances fingerprint equal exactly when their serialized forms
    are byte-identical under canonical JSON, so job order, obstacle
    normalization, and float round-tripping are all accounted for.
    """
    return fingerprint_json(instance_json_dict(instance))


def instance_from_json(text: str) -> ProblemInstance:
    """Inverse of :func:`instance_to_json`."""
    raw = json.loads(text)
    return ProblemInstance(
        begin=raw["begin"],
        end=raw["end"],
        jobs=tuple(Job(**j) for j in raw["jobs"]),
        main_obstacles=tuple(
            Interval(a, b) for a, b in raw["main_obstacles"]
        ),
        background_obstacles=tuple(
            Interval(a, b) for a, b in raw["background_obstacles"]
        ),
    )


def schedule_to_json(schedule: Schedule) -> str:
    """Serialize a schedule (with its instance) to a JSON string."""
    return json.dumps(
        {
            "instance": json.loads(instance_to_json(schedule.instance)),
            "algorithm": schedule.algorithm,
            "compression": {
                str(j): _interval(iv)
                for j, iv in schedule.compression.items()
            },
            "io": {
                str(j): _interval(iv) for j, iv in schedule.io.items()
            },
        }
    )


def schedule_from_json(text: str) -> Schedule:
    """Inverse of :func:`schedule_to_json`; the result re-validates."""
    raw = json.loads(text)
    instance = instance_from_json(json.dumps(raw["instance"]))
    return Schedule(
        instance=instance,
        compression={
            int(j): Interval(a, b)
            for j, (a, b) in raw["compression"].items()
        },
        io={
            int(j): Interval(a, b) for j, (a, b) in raw["io"].items()
        },
        algorithm=raw["algorithm"],
    )
