"""Unified scheduling facade: one entry point for every solver.

``solve(instance, "ExtJohnson+BF")`` runs any registered algorithm — the
six Section 3.3 heuristics, the Appendix A ILP, or the exhaustive
list-schedule search — and returns a common :class:`SolveResult` carrying
the schedule, its I/O makespan, lazily computed concealment stats, and
the measured scheduling wall time (Table 1's "scheduling cost" column).
The direct callables remain available and produce byte-identical
schedules; the facade only adds timing, metadata dispatch, and optional
tracing on top.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..telemetry import NULL_TRACER, NullTracer
from .analysis import ScheduleStats, schedule_stats
from .executor import trace_schedule
from .ilp import IlpResult
from .model import ProblemInstance, Schedule
from .registry import DEFAULT_ALGORITHM, get_algorithm_info

__all__ = ["SolveResult", "solve"]

#: Default ILP budget when the caller gives none (matches the CLI).
_DEFAULT_TIME_LIMIT = 60.0


@dataclass
class SolveResult:
    """Outcome of one :func:`solve` call, uniform across solvers.

    ``schedule`` is ``None`` only when an exact solver fails (ILP timeout
    or infeasibility), in which case ``status`` says why.  ``makespan``
    is the schedule's I/O makespan — the objective every algorithm
    minimises.  ``stats`` (concealment statistics) are computed on first
    access so the facade adds no overhead to tight benchmarking loops.
    ``detail`` carries solver-specific extras (the ILP fills objective
    and problem size); it is empty for the heuristics.

    ``engine`` names the execution backend the schedule is destined for
    (see :func:`repro.engines.list_engines`); ``wall_time`` is real
    scheduling time on the clock while :attr:`modelled_time` is the
    schedule's simulated I/O makespan — the wall/modelled split every
    engine report makes.  ``telemetry`` is the tracer the solve ran
    under, so callers can pull the emitted spans without threading the
    handle separately.
    """

    schedule: Schedule | None
    makespan: float | None
    algorithm: str
    wall_time: float
    status: str = "ok"
    detail: dict = field(default_factory=dict)
    engine: str = "sim"
    telemetry: NullTracer = field(
        default=NULL_TRACER, repr=False, compare=False
    )
    _stats: ScheduleStats | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def stats(self) -> ScheduleStats | None:
        """Concealment statistics of the schedule (lazily computed)."""
        if self._stats is None and self.schedule is not None:
            self._stats = schedule_stats(self.schedule)
        return self._stats

    @property
    def modelled_time(self) -> float | None:
        """The schedule's modelled (simulated) I/O makespan."""
        return self.makespan


def solve(
    instance: ProblemInstance,
    algorithm: str = DEFAULT_ALGORITHM,
    *,
    tracer: NullTracer = NULL_TRACER,
    time_limit: float | None = None,
    engine: str = "sim",
) -> SolveResult:
    """Run ``algorithm`` on ``instance`` behind one uniform interface.

    Args:
        instance: the iteration's scheduling instance.
        algorithm: any :func:`~repro.core.registry.list_algorithms`
            name (``include_exact=True`` names included); raises
            ``KeyError`` for unknown names.
        tracer: when recording, the run emits one ``solve`` span (wall
            clock) plus the planned task layout as machine spans.
        time_limit: seconds budget for solvers that take one (the ILP);
            ignored by the heuristics.
        engine: execution backend the schedule targets (a
            :func:`repro.engines.list_engines` name); scheduling itself
            is backend-independent, but the result records the engine so
            downstream replay/runs know where it is headed.
    """
    if engine != "sim":
        # Lazy validation: repro.engines imports the framework, which
        # imports this module — only the non-default path pays for it.
        from ..engines import get_engine

        get_engine(engine)
    info = get_algorithm_info(algorithm)
    t0 = time.perf_counter()
    status = "ok"
    detail: dict = {}
    if info.needs_time_limit:
        limit = _DEFAULT_TIME_LIMIT if time_limit is None else time_limit
        outcome = info.func(instance, time_limit=limit)
        if isinstance(outcome, IlpResult):
            schedule, status = outcome.schedule, outcome.status
            detail = {
                "objective": outcome.objective,
                "num_variables": outcome.num_variables,
                "num_constraints": outcome.num_constraints,
            }
        else:  # pragma: no cover - future exact solvers
            schedule = outcome
    else:
        schedule = info.func(instance)
    wall_time = time.perf_counter() - t0

    makespan = None if schedule is None else schedule.io_makespan
    if tracer.enabled:
        if schedule is not None:
            trace_schedule(tracer, schedule, algorithm=algorithm)
        tracer.span(
            "solve",
            t0=t0,
            t1=t0 + wall_time,
            algorithm=algorithm,
            status=status,
            makespan=makespan,
            num_jobs=instance.num_jobs,
        )
    return SolveResult(
        schedule=schedule,
        makespan=makespan,
        algorithm=algorithm,
        wall_time=wall_time,
        status=status,
        detail=detail,
        engine=engine,
        telemetry=tracer,
    )
