"""Earliest-fit task placement around obstacles, with optional backfilling.

A :class:`MachineTimeline` tracks one machine (the main thread or the
background thread) of the flow-shop problem.  It holds the machine's fixed
obstacles plus the tasks placed so far, and answers two questions:

* *frontier placement* (no backfilling): the earliest feasible start that is
  also no earlier than the completion of every already-placed task — this is
  the list-scheduling rule of ExtJohnson and GenerationListSchedule;
* *gap placement* (backfilling): the earliest feasible start anywhere,
  sliding into idle gaps between existing reservations, which never delays
  an already-placed task because placed tasks have fixed start times.

Both placements respect half-open interval semantics: a task may start
exactly when an obstacle (or another task) ends.
"""

from __future__ import annotations

import bisect
import math

from .model import EPSILON, Interval

__all__ = ["MachineTimeline"]

_INF = math.inf


class MachineTimeline:
    """One machine's busy intervals: fixed obstacles plus placed tasks."""

    def __init__(
        self, begin: float, obstacles: tuple[Interval, ...] = ()
    ) -> None:
        self._begin = begin
        # Busy intervals kept sorted by start; obstacles never overlap each
        # other (enforced by ProblemInstance) and placements are validated.
        self._busy: list[Interval] = sorted(
            (iv for iv in obstacles if iv.duration > EPSILON),
            key=lambda iv: iv.start,
        )
        self._busy_starts: list[float] = [iv.start for iv in self._busy]
        self._frontier = begin

    @property
    def begin(self) -> float:
        return self._begin

    @property
    def frontier(self) -> float:
        """Completion time of the last placed task (or ``begin``)."""
        return self._frontier

    def earliest_fit(self, duration: float, not_before: float) -> float:
        """Earliest start ``t >= not_before`` with ``[t, t+duration)`` free.

        Zero-duration tasks fit at ``not_before`` directly.
        """
        t = max(not_before, self._begin)
        if duration <= EPSILON:
            return t
        # Scan gaps starting from the first busy interval that could clash.
        idx = bisect.bisect_left(self._busy_starts, t)
        # The previous interval may still cover t.
        if idx > 0 and self._busy[idx - 1].end > t + EPSILON:
            t = self._busy[idx - 1].end
        while idx < len(self._busy):
            nxt = self._busy[idx]
            if t + duration <= nxt.start + EPSILON:
                return t
            t = max(t, nxt.end)
            idx += 1
        return t

    def earliest_frontier_fit(
        self, duration: float, not_before: float
    ) -> float:
        """Earliest fit that also waits for all already-placed tasks."""
        return self.earliest_fit(duration, max(not_before, self._frontier))

    def place(self, duration: float, start: float) -> Interval:
        """Reserve ``[start, start+duration)``; must already be feasible.

        Sub-epsilon durations are stored as true zero-length intervals:
        they are instantaneous to the placement machinery, and keeping
        ``end - start`` exactly zero avoids float round-off promoting
        them back above the epsilon threshold downstream.
        """
        if duration <= EPSILON:
            interval = Interval(start, start)
            self._frontier = max(self._frontier, interval.end)
            return interval
        interval = Interval(start, start + duration)
        if duration > EPSILON:
            idx = bisect.bisect_left(self._busy_starts, interval.start)
            for neighbor in self._busy[max(0, idx - 1) : idx + 1]:
                if interval.overlaps(neighbor):
                    raise ValueError(
                        f"placement {interval} overlaps busy {neighbor}"
                    )
            self._busy.insert(idx, interval)
            self._busy_starts.insert(idx, interval.start)
        self._frontier = max(self._frontier, interval.end)
        return interval

    def place_earliest(
        self, duration: float, not_before: float, backfill: bool
    ) -> Interval:
        """Find and reserve the earliest feasible slot."""
        if backfill:
            start = self.earliest_fit(duration, not_before)
        else:
            start = self.earliest_frontier_fit(duration, not_before)
        return self.place(duration, start)

    def gaps(self, until: float) -> list[Interval]:
        """The machine's free intervals from ``begin`` to ``until``.

        Includes gaps between busy intervals (obstacles and placed
        tasks); useful for analysing how much idle capacity a schedule
        left unused.
        """
        free: list[Interval] = []
        cursor = self._begin
        for busy in self._busy:
            if busy.start >= until:
                break
            if busy.start > cursor + EPSILON:
                free.append(Interval(cursor, min(busy.start, until)))
            cursor = max(cursor, busy.end)
        if cursor < until - EPSILON:
            free.append(Interval(cursor, until))
        return free
