"""Crash-consistent durability: checksums, atomic commits, journaling.

The write path the paper conceals (compress on the fly, write from a
background thread) is also the write path a crash can tear at any
instant.  This package makes it crash-consistent and verifiable:

* :mod:`~repro.durability.checksum` — CRC32C computed at compression
  time and verified end to end on load;
* :mod:`~repro.durability.atomic` — :class:`DurableFile` temp + fsync +
  rename replacement so readers never observe a torn file;
* :mod:`~repro.durability.journal` — the write-ahead campaign journal
  behind ``repro campaign --journal/--resume``;
* :mod:`~repro.durability.fingerprint` — the shared canonical-JSON +
  CRC32C content fingerprint (journal identity stamps, the scheduling
  service's memo-cache keys);
* :mod:`~repro.durability.crashpoints` — named, seeded kill points for
  the chaos harness;
* :mod:`~repro.durability.verify` — the ``repro verify`` scrubber
  (imported lazily: it pulls in the compression and io stacks, which
  themselves checksum through this package).
"""

from .atomic import (
    DurableFile,
    atomic_write_bytes,
    atomic_write_text,
    find_stale_temps,
    fsync_dir,
    temp_path_for,
)
from .checksum import crc32c, crc32c_combine, crc32c_hex
from .fingerprint import fingerprint_json
from .crashpoints import (
    CRASH_EXIT_CODE,
    CRASH_POINTS,
    SERVICE_CRASH_POINTS,
    set_crash_handler,
    trigger_crash,
)
from .journal import (
    CampaignJournal,
    JournalError,
    canonical_json,
    decode_record,
    encode_record,
    read_journal,
)

__all__ = [
    "crc32c",
    "crc32c_combine",
    "crc32c_hex",
    "fingerprint_json",
    "DurableFile",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_dir",
    "find_stale_temps",
    "temp_path_for",
    "CRASH_POINTS",
    "SERVICE_CRASH_POINTS",
    "CRASH_EXIT_CODE",
    "set_crash_handler",
    "trigger_crash",
    "CampaignJournal",
    "JournalError",
    "canonical_json",
    "read_journal",
    "encode_record",
    "decode_record",
    # lazy (see __getattr__): the scrubber imports io + compression
    "VerifyReport",
    "verify_snapshot",
    "verify_journal",
    "verify_ledger",
    "verify_path",
]

_LAZY = {
    "VerifyReport",
    "verify_snapshot",
    "verify_journal",
    "verify_ledger",
    "verify_path",
}


def __getattr__(name: str):
    if name in _LAZY:
        from . import verify

        return getattr(verify, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
