"""Atomic, durable file replacement: temp file + fsync + rename.

Every artifact a crash must never tear — snapshots, campaign reports,
bench documents, subfiling indexes — goes through :class:`DurableFile`:
the content is written to a same-directory temp file, flushed and
fsynced, then :func:`os.replace`-d over the final name, and the parent
directory is fsynced so the rename itself is durable.  A reader at the
final path therefore sees either the previous complete file or the new
complete file, never a prefix.  A crash mid-write leaves only a stale
``*.tmp.*`` file, which :func:`find_stale_temps` surfaces and
``repro verify`` reports.
"""

from __future__ import annotations

import itertools
import os
from typing import Callable

__all__ = [
    "DurableFile",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_dir",
    "find_stale_temps",
    "temp_path_for",
]

_TEMP_MARKER = ".tmp."
_counter = itertools.count()


def temp_path_for(path: str | os.PathLike) -> str:
    """A unique same-directory temp name for an atomic replace of ``path``."""
    return f"{os.fspath(path)}{_TEMP_MARKER}{os.getpid()}.{next(_counter)}"


def fsync_dir(directory: str | os.PathLike) -> None:
    """fsync a directory so a completed rename survives power loss."""
    fd = os.open(os.fspath(directory) or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def find_stale_temps(directory: str | os.PathLike) -> list[str]:
    """Leftover ``*.tmp.*`` files from crashed writers in ``directory``."""
    directory = os.fspath(directory) or "."
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if _TEMP_MARKER in name
    )


class DurableFile:
    """Context manager writing ``path`` atomically and durably.

    ::

        with DurableFile("report.json") as fh:
            fh.write(payload)
        # report.json now exists, complete, and fsynced — or, on any
        # error/crash, does not exist (or still holds its old content).

    ``before_commit`` (when given) runs after the temp file is fully
    written and fsynced but before the rename — the window the chaos
    harness kills a process in to prove no torn final file can appear.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        mode: str = "wb",
        fsync: bool = True,
        encoding: str | None = None,
        before_commit: Callable[[], None] | None = None,
    ) -> None:
        if "r" in mode or "a" in mode or "+" in mode:
            raise ValueError(
                f"DurableFile only replaces whole files, got mode {mode!r}"
            )
        self._path = os.fspath(path)
        self._temp = temp_path_for(path)
        self._fsync = fsync
        self._before_commit = before_commit
        if encoding is None and "b" not in mode:
            encoding = "utf-8"
        self._file = open(self._temp, mode, encoding=encoding)

    @property
    def path(self) -> str:
        return self._path

    @property
    def temp_path(self) -> str:
        return self._temp

    def __enter__(self):
        return self._file

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._file.close()
            try:
                os.unlink(self._temp)
            except OSError:
                pass
            return
        self.commit()

    def commit(self) -> None:
        """Flush, fsync, and publish the temp file under the final name."""
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        self._file.close()
        if self._before_commit is not None:
            self._before_commit()
        os.replace(self._temp, self._path)
        if self._fsync:
            fsync_dir(os.path.dirname(self._path))


def atomic_write_bytes(
    path: str | os.PathLike, payload: bytes, fsync: bool = True
) -> None:
    """Atomically replace ``path`` with ``payload``."""
    with DurableFile(path, "wb", fsync=fsync) as fh:
        fh.write(payload)


def atomic_write_text(
    path: str | os.PathLike, text: str, fsync: bool = True
) -> None:
    """Atomically replace ``path`` with UTF-8 ``text``."""
    with DurableFile(path, "w", fsync=fsync) as fh:
        fh.write(text)
