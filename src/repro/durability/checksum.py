"""CRC32C (Castagnoli) checksums for end-to-end write-path integrity.

Every compressed block and snapshot section gets a CRC32C computed at
compression time and verified on load, so a bit flip anywhere between
the compressor's output buffer and a reader years later is detected and
named.  CRC32C is the polynomial used by iSCSI, ext4 metadata, and most
object stores — chosen here over zlib's CRC-32 so stored checksums are
directly comparable with external tooling (``crc32c`` on most systems).

Three entry points:

* :func:`crc32c` — checksum of a bytes-like object, chainable through a
  running ``value`` exactly like :func:`zlib.crc32`.
* :func:`crc32c_combine` — CRC of a concatenation from the CRCs of its
  parts (zlib's ``crc32_combine`` for the Castagnoli polynomial); lets
  the compressed-data buffer derive a write-unit checksum from its
  blocks' checksums without touching the payload bytes again.
* :func:`crc32c_hex` — fixed-width hex form used in journal records.

The implementation is pure Python + numpy: a table-driven bytewise
reference, and a fast path that splits large buffers into equal chunks,
advances all chunk CRC states in lockstep with vectorized table
gathers, then folds the per-chunk CRCs with a GF(2) zero-advance
operator.  Both paths are exact; the property tests drive one against
the other.
"""

from __future__ import annotations

import numpy as np

__all__ = ["crc32c", "crc32c_combine", "crc32c_hex"]

# Castagnoli polynomial, reflected representation.
_POLY = 0x82F63B78

# Fast-path tuning: buffers of at least _VECTOR_MIN bytes are split into
# _CHUNK-byte chunks whose CRC states advance in lockstep.
_CHUNK = 8192
_VECTOR_MIN = 3 * _CHUNK


def _build_table() -> list[int]:
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _build_table()
_TABLE_NP = np.array(_TABLE, dtype=np.uint32)


def _bytewise(data, state: int) -> int:
    """Advance the internal (pre-inverted) CRC state over ``data``."""
    table = _TABLE
    for byte in data:
        state = table[(state ^ byte) & 0xFF] ^ (state >> 8)
    return state


# ----------------------------------------------------------------------
# GF(2) zero-advance operators (the zlib crc32_combine construction).
# A CRC register advanced over k zero bits is a linear map of the
# register; composing the one-bit map gives the operator for any length.
# ----------------------------------------------------------------------
def _gf2_times(mat, vec: int) -> int:
    total = 0
    index = 0
    while vec:
        if vec & 1:
            total ^= mat[index]
        vec >>= 1
        index += 1
    return total


def _gf2_matmul(a, b) -> list[int]:
    return [_gf2_times(a, column) for column in b]


def _one_byte_operator() -> list[int]:
    # Operator for a single zero bit in the reflected domain …
    odd = [_POLY] + [1 << n for n in range(31)]
    # … squared three times: 1 -> 2 -> 4 -> 8 zero bits.
    for _ in range(3):
        odd = _gf2_matmul(odd, odd)
    return odd


_BYTE_OP = _one_byte_operator()
_IDENTITY = [1 << n for n in range(32)]
_ZERO_OPS: dict[int, list[int]] = {}


def _zero_operator(nbytes: int) -> list[int]:
    """Operator advancing a CRC over ``nbytes`` zero bytes (cached)."""
    cached = _ZERO_OPS.get(nbytes)
    if cached is not None:
        return cached
    result, base, n = _IDENTITY, _BYTE_OP, nbytes
    while n:
        if n & 1:
            result = _gf2_matmul(base, result)
        n >>= 1
        if n:
            base = _gf2_matmul(base, base)
    if len(_ZERO_OPS) > 64:  # unbounded lengths must not leak memory
        _ZERO_OPS.clear()
    _ZERO_OPS[nbytes] = result
    return result


def crc32c_combine(crc1: int, crc2: int, len2: int) -> int:
    """CRC32C of ``A + B`` given ``crc1 = crc32c(A)``, ``crc2 = crc32c(B)``.

    ``len2`` is ``len(B)`` in bytes.  O(log len2) after a cached
    operator build; never touches the data.
    """
    if len2 < 0:
        raise ValueError(f"len2 must be non-negative, got {len2}")
    if len2 == 0:
        return crc1 & 0xFFFFFFFF
    return _gf2_times(_zero_operator(len2), crc1 & 0xFFFFFFFF) ^ (
        crc2 & 0xFFFFFFFF
    )


def _vectorized(buf: memoryview, state: int) -> int:
    """Lockstep chunked CRC for large buffers.

    Splits ``buf`` into equal chunks, advances one CRC register per
    chunk simultaneously (a table gather per byte position across all
    chunks), and folds the per-chunk CRCs left to right with the
    zero-advance operator.  The first chunk's register is seeded with
    the caller's running state so chaining is exact.
    """
    arr = np.frombuffer(buf, dtype=np.uint8)
    num = arr.size // _CHUNK
    body = arr[: num * _CHUNK].reshape(num, _CHUNK).T.copy()
    states = np.full(num, 0xFFFFFFFF, dtype=np.uint32)
    states[0] = np.uint32(state)
    mask = np.uint32(0xFF)
    shift = np.uint32(8)
    for i in range(_CHUNK):
        states = _TABLE_NP[(states ^ body[i]) & mask] ^ (states >> shift)
    crcs = (states ^ np.uint32(0xFFFFFFFF)).tolist()
    op = _zero_operator(_CHUNK)
    total = crcs[0]
    for crc in crcs[1:]:
        total = _gf2_times(op, total) ^ crc
    # Trailing partial chunk continues bytewise from the folded CRC.
    return _bytewise(arr[num * _CHUNK :].tobytes(), total ^ 0xFFFFFFFF)


def crc32c(data, value: int = 0) -> int:
    """CRC32C of ``data``; pass a previous result as ``value`` to chain.

    Accepts any bytes-like object (``bytes``, ``bytearray``,
    ``memoryview``, contiguous numpy arrays).  ``crc32c(b"") == 0`` and
    ``crc32c(b, crc32c(a)) == crc32c(a + b)``, mirroring
    :func:`zlib.crc32`.
    """
    buf = memoryview(data)
    if buf.ndim != 1 or buf.itemsize != 1:
        buf = buf.cast("B")
    state = (value & 0xFFFFFFFF) ^ 0xFFFFFFFF
    if buf.nbytes >= _VECTOR_MIN:
        return _vectorized(buf, state) ^ 0xFFFFFFFF
    return _bytewise(buf.tobytes(), state) ^ 0xFFFFFFFF


def crc32c_hex(data, value: int = 0) -> str:
    """``crc32c`` as a fixed-width hex string (journal record form)."""
    return f"{crc32c(data, value):08x}"
