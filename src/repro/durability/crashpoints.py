"""Named crash points for fail-stop chaos testing.

The write-ahead journal's correctness argument is "whatever instant the
process dies, a resume converges to the uninterrupted run".  Rather than
kill at random instants (unreproducible), the chaos harness kills at the
*interesting* instants — the boundaries of the journal protocol — each
named here and armed through a seeded
:class:`~repro.resilience.faults.ProcessKillFault`:

``plan``
    after the iteration's intent record was appended, before execution;
``pre-commit``
    after the iteration executed, before its commit record;
``torn-commit``
    halfway through appending the commit record (a torn journal tail —
    the record must be discarded on resume, not trusted);
``post-commit``
    after the commit record was appended and fsynced;
``report``
    after the final report's temp file was written, before the rename
    publishing it.

The default handler exits hard with status 137 (the SIGKILL convention)
via :func:`os._exit` so no ``finally:`` blocks, ``atexit`` hooks, or
buffered writes soften the crash.  Tests swap the handler for an
exception via :func:`set_crash_handler`.
"""

from __future__ import annotations

import os
import sys
from typing import Callable

__all__ = [
    "CRASH_POINTS",
    "SERVICE_CRASH_POINTS",
    "CRASH_EXIT_CODE",
    "trigger_crash",
    "set_crash_handler",
]

CRASH_POINTS = ("plan", "pre-commit", "torn-commit", "post-commit", "report")

#: Request-ledger crash points of the scheduling service (see
#: :mod:`repro.service.recovery`): after a request's *open* record is
#: durable, while its work executes, and after the result exists but
#: before its *close* record — the three instants whose recovery
#: behaviour differs.
SERVICE_CRASH_POINTS = ("post-admission", "mid-dispatch", "pre-completion")

CRASH_EXIT_CODE = 137


def _default_handler(point: str, iteration: int) -> None:
    sys.stderr.write(
        f"chaos: killing process at crash point {point!r} "
        f"(iteration {iteration})\n"
    )
    sys.stderr.flush()
    os._exit(CRASH_EXIT_CODE)


_handler: Callable[[str, int], None] = _default_handler


def set_crash_handler(
    handler: Callable[[str, int], None] | None,
) -> Callable[[str, int], None]:
    """Replace the crash handler (None restores the hard-exit default).

    Returns the previous handler so tests can restore it.
    """
    global _handler
    previous = _handler
    _handler = handler if handler is not None else _default_handler
    return previous


def trigger_crash(point: str, iteration: int) -> None:
    """Fire the crash handler for ``point`` (does not return by default)."""
    if point not in CRASH_POINTS + SERVICE_CRASH_POINTS:
        raise ValueError(
            f"unknown crash point {point!r} "
            f"(valid: {', '.join(CRASH_POINTS + SERVICE_CRASH_POINTS)})"
        )
    _handler(point, iteration)
