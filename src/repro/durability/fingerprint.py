"""Content fingerprints: canonical JSON + CRC32C, defined once.

Several subsystems need a short, stable identity for a JSON-shaped
value: the write-ahead journal stamps each campaign with its spec's
fingerprint, the resume path cross-checks that stamp before re-executing
anything, and the scheduling service's memo cache keys solutions by the
fingerprint of the request that produced them.  They must all agree on
the same definition — *CRC32C of the canonical-JSON encoding* — or a
cache hit and a journal check could disagree about whether two values
are "the same".  This module is that single definition.
"""

from __future__ import annotations

from .checksum import crc32c_hex
from .journal import canonical_json

__all__ = ["fingerprint_json"]


def fingerprint_json(obj) -> str:
    """Fixed-width hex CRC32C of ``obj``'s canonical-JSON encoding.

    ``obj`` must be JSON-safe (dicts with string keys, lists, strings,
    numbers, bools, None).  Two objects fingerprint equal exactly when
    their canonical JSON is byte-identical, so dict ordering never
    matters but numeric types do (``1`` and ``1.0`` differ).
    """
    return crc32c_hex(canonical_json(obj).encode())
