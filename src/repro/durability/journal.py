"""Write-ahead campaign journal: crash-consistent, resumable runs.

The orchestrator appends one *plan* (intent) record before each
iteration runs and one *commit* record after it completes, each a single
canonical-JSON line carrying its own CRC32C.  Appends are flushed and
fsynced before execution proceeds, so at any crash instant the journal
holds every committed iteration plus at most one torn tail line.

Resume (``repro campaign --resume journal.jsonl``) exploits that the
whole campaign simulation is a pure function of its seeds: the fault
injector draws from key-addressed generators and the noise models replay
identically from scratch.  So a resumed run rebuilds the runner from the
journal header and **re-executes** the committed iterations in memory,
cross-checking every regenerated record byte-for-byte against the
journaled one (JSON floats round-trip exactly, so equality is exact) —
then switches to live mode at the first incomplete iteration and
continues appending.  A divergence means the journal, the code, or the
seeds changed; it is a hard error naming the iteration, never a silent
wrong continuation.

Tail handling: the final line may be torn (crash mid-append).  A torn
tail is *expected* damage — it is truncated away on resume.  A corrupt
record anywhere earlier is *unexpected* damage and raises
:class:`JournalError` naming the line.
"""

from __future__ import annotations

import json
import os

from ..telemetry import NULL_TRACER
from .atomic import fsync_dir
from .checksum import crc32c_hex
from .crashpoints import trigger_crash

__all__ = [
    "JournalError",
    "CampaignJournal",
    "canonical_json",
    "read_journal",
    "encode_record",
    "decode_record",
]

JOURNAL_VERSION = 1


class JournalError(ValueError):
    """A journal that cannot be trusted (corrupt or diverged)."""


def canonical_json(obj) -> str:
    """The byte-stable JSON form CRCs and comparisons are defined over."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def encode_record(seq: int, type: str, data: dict) -> bytes:
    """One journal line: canonical JSON with an embedded self-CRC."""
    record = {"seq": seq, "type": type, "data": data}
    record["crc"] = crc32c_hex(canonical_json(record).encode())
    return (canonical_json(record) + "\n").encode()


def decode_record(line: bytes, lineno: int) -> dict:
    """Parse and CRC-check one journal line; raises :class:`JournalError`."""
    try:
        record = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise JournalError(
            f"journal line {lineno}: not valid JSON: {exc}"
        ) from exc
    if not isinstance(record, dict):
        raise JournalError(
            f"journal line {lineno}: record must be an object, "
            f"got {type(record).__name__}"
        )
    for field in ("seq", "type", "data", "crc"):
        if field not in record:
            raise JournalError(
                f"journal line {lineno}: missing field {field!r}"
            )
    stored = record.pop("crc")
    actual = crc32c_hex(canonical_json(record).encode())
    if stored != actual:
        raise JournalError(
            f"journal line {lineno}: checksum mismatch "
            f"(stored {stored}, computed {actual})"
        )
    return record


def read_journal(path: str | os.PathLike) -> tuple[list[dict], int, bool]:
    """Read every trustworthy record of a journal.

    Returns ``(records, good_bytes, torn)`` where ``good_bytes`` is the
    file length up to and including the last valid line and ``torn``
    says whether a damaged tail line was discarded.  Damage anywhere
    before the final line raises :class:`JournalError`.
    """
    with open(path, "rb") as fh:
        blob = fh.read()
    lines = blob.split(b"\n")
    # A well-formed journal ends with "\n", so the final split element
    # is empty; anything else is an unterminated (torn) tail.
    tail = lines.pop()
    torn = bool(tail)
    records: list[dict] = []
    good_bytes = 0
    for index, line in enumerate(lines):
        try:
            record = decode_record(line, index + 1)
        except JournalError:
            if index == len(lines) - 1:
                torn = True  # fsync boundary: last line may be garbage
                break
            raise
        if record["seq"] != index:
            raise JournalError(
                f"journal line {index + 1}: sequence gap "
                f"(expected seq {index}, got {record['seq']!r})"
            )
        records.append(record)
        good_bytes += len(line) + 1
    return records, good_bytes, torn


def _validate_structure(records: list[dict], path) -> None:
    """Enforce the begin, (plan, commit)*, [plan,] [end] protocol shape."""
    if not records:
        raise JournalError(f"journal {path}: no intact records")
    if records[0]["type"] != "begin":
        raise JournalError(
            f"journal {path}: first record must be 'begin', "
            f"got {records[0]['type']!r}"
        )
    expected_iter = 0
    expect = "plan"
    for record in records[1:]:
        kind = record["type"]
        if kind == "end":
            if expect != "plan":
                raise JournalError(
                    f"journal {path}: 'end' record interrupts "
                    f"iteration {expected_iter}"
                )
            expect = "done"
            continue
        if expect == "done":
            raise JournalError(
                f"journal {path}: record after 'end' record"
            )
        if kind != expect:
            raise JournalError(
                f"journal {path}: expected a {expect!r} record for "
                f"iteration {expected_iter}, got {kind!r}"
            )
        iteration = record["data"].get("iteration")
        if iteration != expected_iter:
            raise JournalError(
                f"journal {path}: {kind!r} record out of order "
                f"(expected iteration {expected_iter}, got {iteration!r})"
            )
        if kind == "plan":
            expect = "commit"
        else:
            expect = "plan"
            expected_iter += 1


class CampaignJournal:
    """Append-only write-ahead log for one campaign run.

    Use :meth:`create` for a fresh run and :meth:`resume` to continue
    from an interrupted one.  The orchestrator calls
    :meth:`record_plan` / :meth:`record_commit` / :meth:`record_end`
    with plain-JSON payload dicts; in resume mode the calls covering
    already-committed iterations verify instead of append.  An armed
    fault injector (create mode only) makes :meth:`maybe_crash` and the
    torn-append path fire at the seeded crash points.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        fsync: bool = True,
        injector=None,
        tracer=NULL_TRACER,
    ) -> None:
        self.path = os.fspath(path)
        self._fsync = fsync
        self._injector = injector
        self._tracer = tracer
        self._fh = None
        self._seq = 0
        self._header: dict = {}
        self._replay_plans: dict[int, dict] = {}
        self._replay_commits: dict[int, dict] = {}
        self._replay_end: dict | None = None

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | os.PathLike,
        header: dict,
        *,
        fsync: bool = True,
        injector=None,
        tracer=NULL_TRACER,
    ) -> "CampaignJournal":
        """Start a fresh journal (truncating any previous file)."""
        journal = cls(path, fsync=fsync, injector=injector, tracer=tracer)
        journal._header = dict(header, journal_version=JOURNAL_VERSION)
        journal._fh = open(journal.path, "wb")
        if fsync:
            fsync_dir(os.path.dirname(journal.path))
        journal._append("begin", journal._header)
        return journal

    @classmethod
    def resume(
        cls,
        path: str | os.PathLike,
        *,
        fsync: bool = True,
        injector=None,
        tracer=NULL_TRACER,
    ) -> "CampaignJournal":
        """Open an interrupted journal: trusted prefix in, torn tail out."""
        journal = cls(path, fsync=fsync, injector=injector, tracer=tracer)
        records, good_bytes, torn = read_journal(path)
        _validate_structure(records, path)
        journal._header = records[0]["data"]
        for record in records[1:]:
            data = record["data"]
            if record["type"] == "plan":
                journal._replay_plans[data["iteration"]] = data
            elif record["type"] == "commit":
                journal._replay_commits[data["iteration"]] = data
            else:
                journal._replay_end = data
        journal._seq = len(records)
        journal._fh = open(path, "r+b")
        if torn:
            journal._fh.truncate(good_bytes)
        journal._fh.seek(good_bytes)
        return journal

    # ------------------------------------------------------------------
    @property
    def header(self) -> dict:
        return self._header

    @property
    def committed_iterations(self) -> int:
        """Count of fully committed iterations in the trusted prefix."""
        return len(self._replay_commits)

    @property
    def is_complete(self) -> bool:
        return self._replay_end is not None

    # ------------------------------------------------------------------
    def record_plan(self, iteration: int, data: dict) -> None:
        """Journal the intent to run ``iteration`` (write-ahead)."""
        data = dict(data, iteration=int(iteration))
        replayed = self._replay_plans.get(iteration)
        if replayed is not None:
            self._verify(iteration, "plan", data, replayed)
            return
        self._append("plan", data)
        self.maybe_crash("plan", iteration)

    def record_commit(self, iteration: int, data: dict) -> None:
        """Journal ``iteration``'s completion, durably, crash points live."""
        data = dict(data, iteration=int(iteration))
        replayed = self._replay_commits.get(iteration)
        if replayed is not None:
            self._verify(iteration, "commit", data, replayed)
            return
        self.maybe_crash("pre-commit", iteration)
        self._append("commit", data, torn_at_iteration=iteration)
        self.maybe_crash("post-commit", iteration)

    def record_end(self, data: dict) -> None:
        """Journal the campaign's aggregate metrics (final record)."""
        if self._replay_end is not None:
            self._verify(-1, "end", data, self._replay_end)
            return
        self._append("end", data)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def maybe_crash(self, point: str, iteration: int) -> None:
        """Fire the crash handler if the injector armed this point."""
        if self._injector is not None and self._injector.process_kill_fires(
            point, iteration
        ):
            trigger_crash(point, iteration)

    def _verify(
        self, iteration: int, kind: str, data: dict, replayed: dict
    ) -> None:
        """Re-executed state must match the journal byte for byte."""
        regenerated = canonical_json(data)
        journaled = canonical_json(replayed)
        if regenerated != journaled:
            raise JournalError(
                f"journal {self.path}: replay diverged at {kind} record "
                f"of iteration {iteration}: journaled {journaled} != "
                f"re-executed {regenerated}"
            )
        if self._tracer.enabled:
            self._tracer.counter("durability.journal.verified").inc()

    def _append(
        self, type: str, data: dict, torn_at_iteration: int | None = None
    ) -> None:
        if self._fh is None:
            raise JournalError(f"journal {self.path} is closed")
        line = encode_record(self._seq, type, data)
        if (
            torn_at_iteration is not None
            and self._injector is not None
            and self._injector.process_kill_fires(
                "torn-commit", torn_at_iteration
            )
        ):
            # Simulate dying mid-append: half the record reaches the
            # file (durably, worst case), then the process is gone.
            self._fh.write(line[: max(1, len(line) // 2)])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            trigger_crash("torn-commit", torn_at_iteration)
            return  # only reached when a test handler swallowed the kill
        self._fh.write(line)
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())
        self._seq += 1
        if self._tracer.enabled:
            self._tracer.event(
                "durability.journal.append", type=type, seq=self._seq - 1
            )
            self._tracer.counter("durability.journal.append").inc()
