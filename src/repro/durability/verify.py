"""Offline scrubbing: verify snapshots and journals without loading them.

``repro verify <path>`` walks every checksum a file carries — container
entry CRCs, per-block compression-time CRCs declared in the snapshot
manifest, journal record CRCs — plus structural invariants (manifest
coverage, record sequencing) and reports every problem found.  Exit
status: 0 clean, 1 corrupt.  The same functions back the
``durability.verify`` bench case so the integrity-check overhead is
tracked in ``BENCH_*.json``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from ..telemetry import NULL_TRACER
from .atomic import find_stale_temps
from .journal import JournalError, _validate_structure, decode_record

__all__ = [
    "VerifyReport",
    "verify_snapshot",
    "verify_journal",
    "verify_ledger",
    "verify_path",
]

_MANIFEST = "__manifest__"
_CODEBOOK = "__codebook__"


@dataclass
class VerifyReport:
    """Everything a scrub checked and everything it found."""

    path: str
    kind: str
    checked: int = 0
    issues: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def format(self) -> str:
        lines = [
            f"{self.kind} {self.path}: "
            f"{'clean' if self.ok else 'CORRUPT'} "
            f"({self.checked} items checked)"
        ]
        lines.extend(f"  issue: {issue}" for issue in self.issues)
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def _stale_temps_near(path: str) -> list[str]:
    """Leftover temp files belonging to ``path`` specifically."""
    directory = os.path.dirname(path) or "."
    marker = os.path.basename(path) + ".tmp."
    try:
        candidates = find_stale_temps(directory)
    except OSError:
        return []
    return [
        temp
        for temp in candidates
        if os.path.basename(temp).startswith(marker)
    ]


def verify_snapshot(
    path: str | os.PathLike, tracer=NULL_TRACER
) -> VerifyReport:
    """Scrub one snapshot: container CRCs, block CRCs, manifest shape."""
    from ..compression import CompressedBlock
    from ..io import SharedFileReader, SubfileReader

    path = os.fspath(path)
    report = VerifyReport(path=path, kind="snapshot")
    with tracer.timed("durability.verify", kind="snapshot", path=path):
        try:
            reader_cm = (
                SubfileReader(path)
                if os.path.isdir(path)
                else SharedFileReader(path)
            )
        except (OSError, ValueError, KeyError) as exc:
            report.issues.append(f"unreadable container: {exc}")
            return report
        with reader_cm as reader:
            payloads: dict[str, bytes] = {}
            for name in sorted(reader.entries):
                report.checked += 1
                try:
                    payloads[name] = reader.read(name)
                except (OSError, ValueError) as exc:
                    report.issues.append(str(exc))
            manifest = None
            if _MANIFEST in payloads:
                try:
                    manifest = json.loads(payloads[_MANIFEST].decode())
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    report.issues.append(f"manifest is not valid JSON: {exc}")
            elif _MANIFEST in reader.entries:
                pass  # unreadable: already an issue above
            else:
                report.notes.append("no snapshot manifest (bare container)")
            if manifest is not None:
                report.checked += 1
                for field_name, meta in manifest.items():
                    crcs = meta.get("block_crc32c")
                    for index in range(meta.get("num_blocks", 0)):
                        dataset = f"{field_name}/{index}"
                        if dataset not in reader.entries:
                            report.issues.append(
                                f"manifest names {dataset!r} but the "
                                f"container has no such entry"
                            )
                            continue
                        payload = payloads.get(dataset)
                        if payload is None:
                            continue  # read already failed above
                        report.checked += 1
                        expected = (
                            crcs[index]
                            if crcs is not None and index < len(crcs)
                            else None
                        )
                        try:
                            CompressedBlock.from_bytes(
                                payload, expected_crc32c=expected
                            )
                        except ValueError as exc:
                            report.issues.append(
                                f"field {field_name!r} block {index}: {exc}"
                            )
        for temp in _stale_temps_near(path):
            report.notes.append(f"stale temp file from a crashed writer: {temp}")
    return report


def verify_journal(
    path: str | os.PathLike, tracer=NULL_TRACER
) -> VerifyReport:
    """Scrub one journal: per-record CRCs, sequencing, protocol shape."""
    path = os.fspath(path)
    report = VerifyReport(path=path, kind="journal")
    with tracer.timed("durability.verify", kind="journal", path=path):
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError as exc:
            report.issues.append(f"unreadable: {exc}")
            return report
        lines = blob.split(b"\n")
        tail = lines.pop()
        if tail:
            report.notes.append(
                f"torn tail ({len(tail)} bytes past the last newline); "
                f"resume will discard it"
            )
        records = []
        for index, line in enumerate(lines):
            report.checked += 1
            try:
                record = decode_record(line, index + 1)
            except JournalError as exc:
                if index == len(lines) - 1:
                    report.notes.append(
                        f"torn tail (line {index + 1} fails its CRC); "
                        f"resume will discard it"
                    )
                else:
                    report.issues.append(str(exc))
                continue
            if record["seq"] != index:
                report.issues.append(
                    f"journal line {index + 1}: sequence gap (expected "
                    f"seq {index}, got {record['seq']!r})"
                )
            records.append(record)
        try:
            _validate_structure(records, path)
        except JournalError as exc:
            report.issues.append(str(exc))
        else:
            commits = sum(1 for r in records if r["type"] == "commit")
            ended = any(r["type"] == "end" for r in records)
            report.notes.append(
                f"{commits} committed iteration(s), "
                f"{'complete' if ended else 'resumable'}"
            )
        for temp in _stale_temps_near(path):
            report.notes.append(
                f"stale temp file from a crashed writer: {temp}"
            )
    return report


def _read_ledger_lines(path: str, report: VerifyReport) -> list[dict]:
    """CRC-check every line of a ledger file (shared tail handling)."""
    with open(path, "rb") as fh:
        blob = fh.read()
    lines = blob.split(b"\n")
    tail = lines.pop()
    if tail:
        report.notes.append(
            f"torn tail ({len(tail)} bytes past the last newline); "
            f"recovery will discard it"
        )
    records = []
    for index, line in enumerate(lines):
        report.checked += 1
        try:
            record = decode_record(line, index + 1)
        except JournalError as exc:
            if index == len(lines) - 1:
                report.notes.append(
                    f"torn tail (line {index + 1} fails its CRC); "
                    f"recovery will discard it"
                )
            else:
                report.issues.append(str(exc))
            continue
        if record["seq"] != index:
            report.issues.append(
                f"ledger line {index + 1}: sequence gap (expected "
                f"seq {index}, got {record['seq']!r})"
            )
        records.append(record)
    return records


def verify_ledger(
    path: str | os.PathLike, tracer=NULL_TRACER
) -> VerifyReport:
    """Scrub one service request ledger: record CRCs, open/close shape.

    The ledger protocol (see :mod:`repro.service.recovery`) is one
    ``begin`` record followed by interleaved ``open`` / ``close``
    records; every ``close`` must name a previously opened key and no
    key may be opened or closed twice.
    """
    path = os.fspath(path)
    report = VerifyReport(path=path, kind="ledger")
    with tracer.timed("durability.verify", kind="ledger", path=path):
        try:
            records = _read_ledger_lines(path, report)
        except OSError as exc:
            report.issues.append(f"unreadable: {exc}")
            return report
        if not records:
            report.issues.append(f"ledger {path}: no intact records")
            return report
        first = records[0]
        if first["type"] != "begin" or "ledger_version" not in first["data"]:
            report.issues.append(
                f"ledger {path}: first record must be a 'begin' record "
                f"carrying 'ledger_version', got {first['type']!r}"
            )
        opened: set = set()
        closed: set = set()
        for record in records[1:]:
            kind, data = record["type"], record["data"]
            key = data.get("key")
            if kind == "open":
                if not isinstance(key, str) or not key:
                    report.issues.append(
                        f"ledger {path} seq {record['seq']}: 'open' "
                        f"record without a key"
                    )
                elif key in opened:
                    report.issues.append(
                        f"ledger {path} seq {record['seq']}: key "
                        f"{key!r} opened twice"
                    )
                else:
                    opened.add(key)
            elif kind == "close":
                if key not in opened:
                    report.issues.append(
                        f"ledger {path} seq {record['seq']}: 'close' "
                        f"record for never-opened key {key!r}"
                    )
                elif key in closed:
                    report.issues.append(
                        f"ledger {path} seq {record['seq']}: key "
                        f"{key!r} closed twice"
                    )
                else:
                    closed.add(key)
            else:
                report.issues.append(
                    f"ledger {path} seq {record['seq']}: unknown record "
                    f"type {kind!r}"
                )
        incomplete = len(opened) - len(closed)
        report.notes.append(
            f"{len(opened)} request(s), {len(closed)} completed, "
            f"{incomplete} pending replay"
        )
        for temp in _stale_temps_near(path):
            report.notes.append(
                f"stale temp file from a crashed writer: {temp}"
            )
    return report


def _sniff_line_format(path) -> str:
    """``ledger`` vs ``journal`` for a line-record file (best effort)."""
    try:
        with open(path, "rb") as fh:
            first = fh.readline()
        record = json.loads(first.decode())
        if isinstance(record, dict) and isinstance(record.get("data"), dict):
            if "ledger_version" in record["data"]:
                return "ledger"
    except (OSError, UnicodeDecodeError, json.JSONDecodeError):
        pass
    return "journal"


def verify_path(
    path: str | os.PathLike, kind: str = "auto", tracer=NULL_TRACER
) -> VerifyReport:
    """Scrub ``path`` as a snapshot, journal, or request ledger
    (sniffed when ``auto``)."""
    if kind not in ("auto", "snapshot", "journal", "ledger"):
        raise ValueError(
            f"unknown verify kind {kind!r} "
            f"(valid: auto, snapshot, journal, ledger)"
        )
    if kind == "auto":
        if os.path.isdir(path):
            kind = "snapshot"
        else:
            with open(path, "rb") as fh:
                head = fh.read(8)
            if head.startswith(b"RPIO"):
                kind = "snapshot"
            else:
                kind = _sniff_line_format(path)
    if kind == "snapshot":
        return verify_snapshot(path, tracer=tracer)
    if kind == "ledger":
        return verify_ledger(path, tracer=tracer)
    return verify_journal(path, tracer=tracer)
