"""Execution engines: interchangeable backends that run a campaign.

One :class:`CampaignSpec` describes a campaign; :func:`run_campaign`
executes it under whichever :class:`ExecutionEngine` the spec names
(``prepare -> run_iteration -> finalize -> report``):

* ``sim`` (:class:`SimulatorEngine`) — the historical single-process
  discrete-event backend.
* ``process`` (:class:`ProcessPoolEngine`) — real per-rank compression
  in worker processes over shared memory, streamed to the wall-clock
  async writer so compute, compression, and I/O genuinely overlap.

Both run the identical modelled control plane, so journal records,
resume, fault injection, and every report behave the same regardless of
backend; see ``docs/architecture.md``.

The process engine's rank tasks run under a :class:`WorkerSupervisor`
(deadlines, bounded retries, straggler speculation, serial fallback), so
a killed or hung pool worker degrades the run instead of wedging it; see
``docs/resilience.md``.
"""

from .base import (
    EngineError,
    EngineReport,
    ExecutionEngine,
    get_engine,
    list_engines,
    register_engine,
    run_campaign,
)
from .dataplane import DataPlaneStats, PoolDataPlane, SerialDataPlane
from .process import ProcessPoolEngine
from .shm import SHM_PREFIX, SegmentRegistry, active_segments, attach_view
from .sim import SimulatorEngine
from .spec import APP_NAMES, SOLUTIONS, CampaignSpec
from .supervisor import SupervisorStats, WorkerSupervisor

__all__ = [
    "APP_NAMES",
    "SOLUTIONS",
    "SHM_PREFIX",
    "CampaignSpec",
    "DataPlaneStats",
    "EngineError",
    "EngineReport",
    "ExecutionEngine",
    "PoolDataPlane",
    "ProcessPoolEngine",
    "SegmentRegistry",
    "SerialDataPlane",
    "SimulatorEngine",
    "SupervisorStats",
    "WorkerSupervisor",
    "active_segments",
    "attach_view",
    "get_engine",
    "list_engines",
    "register_engine",
    "run_campaign",
]
