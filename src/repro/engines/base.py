"""The `ExecutionEngine` protocol, registry, and campaign driver.

An execution engine is the thing that actually *runs* a campaign
described by a :class:`~repro.engines.spec.CampaignSpec`.  Every engine
follows the same four-phase protocol, driven by :func:`run_campaign`::

    prepare() -> run_iteration(i) ... -> finalize() -> report(wall_s)

All engines share one modelled **control plane** — the
:class:`~repro.framework.orchestrator.CampaignRunner` that plans,
schedules, and replays every iteration, fires fault injection, and
produces the write-ahead journal records.  That is what makes the
backends interchangeable: the journal records, the
:class:`~repro.framework.orchestrator.CampaignResult`, and every report
are identical under every engine, so ``--journal``/``--resume`` and the
fault hooks work the same everywhere.  Engines differ only in the
**data plane** — whether (and how) each dump iteration really
generates, compresses, and writes bytes.

The registry maps engine names (``sim``, ``process``) to classes;
:func:`run_campaign` is the single entry point the CLI and library
callers use.
"""

from __future__ import annotations

import abc
import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, ClassVar

from ..durability.journal import CampaignJournal, JournalError
from ..framework.orchestrator import CampaignResult, IterationRecord
from ..resilience.faults import FaultInjector
from ..resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from ..resilience.spec import parse_fault_spec
from ..telemetry import NULL_TRACER, NullTracer
from .dataplane import DataPlaneStats
from .spec import CampaignSpec

__all__ = [
    "EngineError",
    "EngineReport",
    "ExecutionEngine",
    "register_engine",
    "get_engine",
    "list_engines",
    "run_campaign",
]


class EngineError(RuntimeError):
    """An execution engine failed or was misused."""


@dataclass
class EngineReport:
    """What one engine run produced: modelled result + wall-clock facts.

    ``result`` (the modelled :class:`CampaignResult`) is structurally
    identical across engines for the same spec + seed; ``wall_time_s``
    and ``data`` describe what *this* backend physically did and are the
    only parts allowed to differ.
    """

    engine: str
    spec: CampaignSpec
    result: CampaignResult
    wall_time_s: float
    #: Real compress+dump pipeline stats; None when the data plane was off.
    data: DataPlaneStats | None = None
    #: The open write-ahead journal, when the run was journalled.  The
    #: caller owns closing it (see :meth:`close`).
    journal: CampaignJournal | None = dataclasses.field(
        default=None, repr=False, compare=False
    )

    @property
    def modelled_time_s(self) -> float:
        """The campaign's total *modelled* (simulated) time."""
        return float(self.result.total_time)

    @property
    def block_crc32c(self) -> dict[str, int]:
        """Per-block payload CRC32Cs ({} when the data plane was off)."""
        return {} if self.data is None else dict(self.data.block_crc32c)

    def close(self) -> None:
        """Close the attached journal, if any (idempotent)."""
        journal, self.journal = self.journal, None
        if journal is not None:
            journal.close()


class ExecutionEngine(abc.ABC):
    """One campaign execution backend.

    Subclasses set :attr:`name`, register with :func:`register_engine`,
    and implement the four protocol phases.  The journal-data hooks must
    return byte-identical payloads across engines for the same spec —
    the cross-engine resume guarantee rests on it — which is why the
    provided engines all delegate them to the shared control plane.
    """

    #: Registry key (``sim``, ``process``) — unique per engine class.
    name: ClassVar[str] = ""

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        tracer: NullTracer = NULL_TRACER,
        injector: FaultInjector | None = None,
        retry: RetryPolicy = DEFAULT_RETRY_POLICY,
    ) -> None:
        self.spec = spec
        self.tracer = tracer
        self.injector = injector
        self.retry = retry

    # -- protocol ------------------------------------------------------
    @abc.abstractmethod
    def prepare(self) -> None:
        """Allocate whatever the run needs (pools, segments, writers)."""

    @abc.abstractmethod
    def run_iteration(self, iteration: int) -> IterationRecord:
        """Execute one iteration; returns its aggregate record."""

    @abc.abstractmethod
    def finish(self) -> CampaignResult:
        """Aggregate after the last iteration; returns the result."""

    @abc.abstractmethod
    def finalize(self) -> None:
        """Release resources after an orderly run (idempotent)."""

    def abort(self) -> None:
        """Release resources after a failed run (idempotent).

        The default just runs :meth:`finalize`; engines holding external
        state (worker pools, shared memory, half-written containers)
        override this with a harder teardown.
        """
        self.finalize()

    @abc.abstractmethod
    def report(self, wall_time_s: float) -> EngineReport:
        """The run's :class:`EngineReport`."""

    # -- journal hooks -------------------------------------------------
    @abc.abstractmethod
    def journal_plan_data(self, iteration: int) -> dict:
        """The write-ahead *plan* payload for one iteration."""

    @abc.abstractmethod
    def journal_commit_data(self, record: IterationRecord) -> dict:
        """The post-iteration *commit* payload."""

    @abc.abstractmethod
    def journal_end_data(self) -> dict:
        """The campaign-complete *end* payload."""


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[ExecutionEngine]] = {}


def register_engine(
    cls: type[ExecutionEngine],
) -> type[ExecutionEngine]:
    """Class decorator: register an engine under ``cls.name``."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty .name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"engine name {cls.name!r} already registered by "
            f"{existing.__name__}"
        )
    _REGISTRY[cls.name] = cls
    return cls


def get_engine(name: str) -> type[ExecutionEngine]:
    """Look up an engine class by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EngineError(
            f"unknown engine {name!r} (available: "
            f"{', '.join(list_engines())})"
        ) from None


def list_engines() -> list[str]:
    """Registered engine names, sorted."""
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# campaign driver
# ----------------------------------------------------------------------
def _build_injector(
    spec: CampaignSpec, crash_enabled: bool
) -> tuple[FaultInjector | None, RetryPolicy]:
    """The fault injector + retry policy a spec's fault data implies."""
    if spec.faults is None:
        return None, DEFAULT_RETRY_POLICY
    fault_spec = parse_fault_spec(spec.faults)
    seed = (
        fault_spec.seed if fault_spec.seed is not None else spec.seed
    )
    injector = FaultInjector(fault_spec.plan, seed=seed)
    # A crash point that killed the original run must not re-fire while
    # a resumed run replays past it.
    injector.crash_enabled = crash_enabled
    return injector, fault_spec.retry


def run_campaign(
    spec: CampaignSpec | None = None,
    *,
    journal_path: str | None = None,
    resume_path: str | None = None,
    tracer: NullTracer = NULL_TRACER,
    on_resume: Callable[[CampaignJournal], None] | None = None,
    **legacy,
) -> EngineReport:
    """Run one campaign under the engine its spec names.

    This is the single campaign entry point: it builds the fault
    injector, opens (or resumes) the write-ahead journal, drives the
    engine through the ``prepare -> run_iteration -> finalize`` protocol
    with plan/commit records bracketing every iteration, and returns the
    engine's :class:`EngineReport`.

    With ``resume_path`` every campaign parameter comes from the journal
    header (``spec`` may be None); the committed prefix is re-executed
    and cross-checked byte-for-byte by the journal.  ``on_resume`` is
    called with the opened journal before execution starts (the CLI uses
    it to print progress).

    Legacy scattered kwargs (``app=..., nodes=..., ...``) are still
    accepted when ``spec`` is omitted, via
    :meth:`CampaignSpec.from_kwargs` — with a ``DeprecationWarning``.

    A journalled run's journal stays open on the returned report
    (``report.journal``) so callers can arm crash points around their
    own report writes; call ``report.close()`` when done.
    """
    if journal_path is not None and resume_path is not None:
        raise EngineError(
            "journal_path and resume_path are mutually exclusive "
            "(resume appends to the journal it resumes)"
        )
    if spec is not None and legacy:
        raise EngineError(
            "pass either a CampaignSpec or legacy kwargs, not both"
        )
    journal: CampaignJournal | None = None
    if resume_path is not None:
        journal = CampaignJournal.resume(resume_path, tracer=tracer)
        header_spec = CampaignSpec.from_journal_header(journal.header)
        stored = journal.header.get("spec_crc32c")
        if stored is not None and stored != header_spec.control_fingerprint():
            journal.close()
            raise JournalError(
                f"journal {resume_path}: header spec fingerprint "
                f"{stored} does not match the rebuilt spec "
                f"({header_spec.control_fingerprint()}); the journalled "
                "campaign used parameters the header cannot express "
                "(e.g. an explicit config override) or the journal "
                "was edited — refusing to resume"
            )
        if spec is not None:
            # Campaign identity comes from the header; only data-plane
            # knobs (not journalled) carry over from the caller's spec.
            header_spec = dataclasses.replace(
                header_spec,
                data_dir=spec.data_dir,
                data_edge=spec.data_edge,
                data_fields=spec.data_fields,
                data_block_bytes=spec.data_block_bytes,
                workers=spec.workers,
                task_deadline_s=spec.task_deadline_s,
                max_task_retries=spec.max_task_retries,
                speculative_frac=spec.speculative_frac,
            )
        spec = header_spec
        if on_resume is not None:
            on_resume(journal)
    elif spec is None:
        spec = CampaignSpec.from_kwargs(**legacy)

    injector, retry = _build_injector(
        spec, crash_enabled=resume_path is None
    )
    config = spec.resolved_config()
    if journal_path is not None:
        journal = CampaignJournal.create(
            journal_path,
            spec.journal_header(),
            fsync=config.journal_fsync,
            injector=injector,
            tracer=tracer,
        )

    engine_cls = get_engine(spec.engine)
    engine = engine_cls(
        spec, tracer=tracer, injector=injector, retry=retry
    )
    t0 = time.perf_counter()
    try:
        engine.prepare()
        for iteration in range(spec.iterations):
            if journal is not None:
                journal.record_plan(
                    iteration, engine.journal_plan_data(iteration)
                )
            record = engine.run_iteration(iteration)
            if journal is not None:
                journal.record_commit(
                    iteration, engine.journal_commit_data(record)
                )
        engine.finish()
        if journal is not None:
            journal.record_end(engine.journal_end_data())
        engine.finalize()
    except BaseException:
        engine.abort()
        if journal is not None:
            journal.close()
        raise
    report = engine.report(time.perf_counter() - t0)
    report.journal = journal
    return report
