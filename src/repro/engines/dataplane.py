"""The engines' real data plane: generate, compress, and write bytes.

The campaign control plane (planning, scheduling, modelled replay,
journalling) is identical under every engine; what an engine actually
*executes* is this data plane.  On each dump iteration every rank's
partition fields are generated, sliced into fine-grained blocks,
compressed with the SZ codec, CRC32C-stamped, and written into one
shared ``.rpio`` container through the wall-clock
:class:`~repro.io.async_io.AsyncWriter`.

Two implementations share one deterministic block pipeline, so the same
spec + seed yields byte-identical compressed blocks (hence identical
CRC32Cs) under both:

* :class:`SerialDataPlane` — everything in the calling process, strictly
  compress-then-write: the single-process reference.
* :class:`PoolDataPlane` — per-rank compression fans out to worker
  processes over zero-copy shared-memory views, payloads stream to the
  async writer as each rank finishes, and the parent generates the next
  rank's fields meanwhile — compute, compression, and I/O genuinely
  overlap on real cores.

Container layout *order* may differ between the two (workers finish in
nondeterministic order) but the stored bytes per dataset are identical.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..compression import SZCompressor, plan_blocks, slice_field
from ..durability.checksum import crc32c
from ..io.async_io import AsyncWriter
from ..io.hdf5like import SharedFileWriter
from ..telemetry import NULL_TRACER, NullTracer
from .shm import SegmentRegistry, attach_view
from .spec import CampaignSpec

__all__ = ["DataPlaneStats", "SerialDataPlane", "PoolDataPlane"]

#: Seconds the engine waits for the async writer to drain one dump.
_DRAIN_TIMEOUT_S = 120.0


@dataclass
class DataPlaneStats:
    """Wall-clock outcome of a run's real compress+dump pipeline."""

    workers: int = 1
    num_blocks: int = 0
    raw_bytes: int = 0
    compressed_bytes: int = 0
    generate_wall_s: float = 0.0
    compress_wall_s: float = 0.0
    write_wall_s: float = 0.0
    dump_wall_s: float = 0.0
    #: iteration -> published container path.
    containers: dict[int, str] = field(default_factory=dict)
    #: ``it<NNNN>/rank<R>/<field>/<block>`` -> payload CRC32C.
    block_crc32c: dict[str, int] = field(default_factory=dict)

    @property
    def compression_ratio(self) -> float:
        return self.raw_bytes / max(1, self.compressed_bytes)


def _rank_tasks(app, rank: int, spec: CampaignSpec, field_specs):
    """Deterministic (field, bound, array) work list for one rank."""
    for fs in field_specs:
        yield fs.name, fs.error_bound, app.generate_field(
            fs.name, rank, iteration=0
        )


def _compress_field_blocks(
    compressor: SZCompressor,
    rank: int,
    field_name: str,
    values: np.ndarray,
    bound: float,
    block_bytes: int,
) -> list[tuple[str, bytes, int]]:
    """Compress one field into its blocks: the shared deterministic core.

    Both data planes (and the pool worker below) call exactly this, so
    cross-engine payloads are byte-identical.
    """
    out = []
    for spec in plan_blocks(
        field_name, values.shape, values.itemsize, block_bytes
    ):
        block = np.ascontiguousarray(slice_field(values, spec))
        payload = compressor.compress(block, bound).to_bytes()
        out.append(
            (
                f"rank{rank}/{field_name}/{spec.block_index}",
                payload,
                crc32c(payload),
            )
        )
    return out


# ----------------------------------------------------------------------
# pool worker (runs in a forked child)
# ----------------------------------------------------------------------
_WORKER_COMPRESSOR: SZCompressor | None = None


def _pool_compress_rank(args):
    """Compress one rank's shared-memory fields; returns its payloads.

    ``fields_meta`` rows are ``(name, shape, dtype_str, offset, bound)``
    describing zero-copy views into the named segment.  Only the
    compressed payloads (plus their CRC32Cs) travel back over the task
    pipe.
    """
    seg_name, rank, fields_meta, block_bytes = args
    global _WORKER_COMPRESSOR
    if _WORKER_COMPRESSOR is None:
        _WORKER_COMPRESSOR = SZCompressor()
    segment = shared_memory.SharedMemory(name=seg_name)
    try:
        results: list[tuple[str, bytes, int]] = []
        for name, shape, dtype_str, offset, bound in fields_meta:
            view = attach_view(
                segment, tuple(shape), np.dtype(dtype_str), offset
            )
            results.extend(
                _compress_field_blocks(
                    _WORKER_COMPRESSOR,
                    rank,
                    name,
                    view,
                    bound,
                    block_bytes,
                )
            )
        return rank, results
    finally:
        segment.close()


# ----------------------------------------------------------------------
class SerialDataPlane:
    """Single-process reference: compress every block, then write."""

    def __init__(
        self, spec: CampaignSpec, tracer: NullTracer = NULL_TRACER
    ) -> None:
        self.spec = spec
        self.tracer = tracer
        self.app = spec.data_application()
        self.field_specs = tuple(self.app.fields[: spec.data_fields])
        self.ranks = spec.nodes * spec.ppn
        self.stats = DataPlaneStats(workers=1)
        self._compressor = SZCompressor()
        self._open_writer: SharedFileWriter | None = None
        self._open_async: AsyncWriter | None = None
        os.makedirs(spec.data_dir, exist_ok=True)

    def container_path(self, iteration: int) -> str:
        return os.path.join(
            self.spec.data_dir,
            f"{self.spec.solution}-it{iteration:04d}.rpio",
        )

    # -- pipeline ------------------------------------------------------
    def dump(self, iteration: int) -> None:
        """Really compress and write every rank's partition."""
        t_dump = time.perf_counter()
        path = self.container_path(iteration)
        writer = SharedFileWriter(path)
        async_writer = AsyncWriter(writer)
        self._open_writer, self._open_async = writer, async_writer
        payloads: list[tuple[str, bytes, int]] = []
        for rank in range(self.ranks):
            for fs in self.field_specs:
                t0 = time.perf_counter()
                values = self.app.generate_field(fs.name, rank, iteration)
                t1 = time.perf_counter()
                self.stats.generate_wall_s += t1 - t0
                payloads.extend(
                    _compress_field_blocks(
                        self._compressor,
                        rank,
                        fs.name,
                        values,
                        fs.error_bound,
                        self.spec.data_block_bytes,
                    )
                )
                self.stats.raw_bytes += values.nbytes
                self.stats.compress_wall_s += time.perf_counter() - t1
        t_write = time.perf_counter()
        for dataset, payload, checksum in payloads:
            writer.reserve(dataset, len(payload))
            async_writer.submit(dataset, payload, checksum=checksum)
            self._record_block(iteration, dataset, payload, checksum)
        async_writer.drain(timeout=_DRAIN_TIMEOUT_S)
        async_writer.close(timeout=_DRAIN_TIMEOUT_S)
        writer.close()
        self._open_writer = self._open_async = None
        now = time.perf_counter()
        self.stats.write_wall_s += now - t_write
        self.stats.dump_wall_s += now - t_dump
        self.stats.containers[iteration] = path
        self._trace_dump(iteration, now - t_dump)

    def _record_block(
        self, iteration: int, dataset: str, payload: bytes, checksum: int
    ) -> None:
        self.stats.num_blocks += 1
        self.stats.compressed_bytes += len(payload)
        self.stats.block_crc32c[f"it{iteration:04d}/{dataset}"] = checksum

    def _trace_dump(self, iteration: int, wall_s: float) -> None:
        if self.tracer.enabled:
            self.tracer.event(
                "engine.dump",
                iteration=iteration,
                wall_s=wall_s,
                blocks=self.stats.num_blocks,
            )
            self.tracer.counter("engine.dump").inc()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Orderly shutdown (idempotent)."""
        self._abort_open_container()

    def abort(self) -> None:
        """Abnormal shutdown: never publish a half-written container."""
        self._abort_open_container()

    def _abort_open_container(self) -> None:
        async_writer, self._open_async = self._open_async, None
        writer, self._open_writer = self._open_writer, None
        if async_writer is not None:
            try:
                async_writer.close(timeout=5.0)
            except (TimeoutError, RuntimeError):  # pragma: no cover
                pass
        if writer is not None:
            writer.abort()


class PoolDataPlane(SerialDataPlane):
    """Per-rank compression on real worker processes, I/O overlapped.

    For each dump iteration the parent fills one shared-memory segment
    per rank with that rank's generated fields and hands workers a
    zero-copy view descriptor.  As each rank's compressed payloads come
    back (pool callback thread) they are reserved and queued on the
    async writer immediately, so the tail of compression overlaps the
    writes — and the parent meanwhile generates the next rank's fields.
    """

    def __init__(
        self, spec: CampaignSpec, tracer: NullTracer = NULL_TRACER
    ) -> None:
        super().__init__(spec, tracer)
        self.workers = spec.workers or min(
            self.ranks, os.cpu_count() or 1
        )
        self.stats.workers = self.workers
        self.registry = SegmentRegistry()
        self._pool = None
        self._stats_lock = threading.Lock()

    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        if self._pool is None:
            # The resource tracker must exist *before* the fork so the
            # workers inherit it: attach-time registrations then dedupe
            # against the parent's create-time ones and the parent's
            # unlink settles the account.  Forked-after-the-fact workers
            # would each spawn a private tracker that complains at exit
            # about segments the parent already unlinked.
            resource_tracker.ensure_running()
            ctx = multiprocessing.get_context("fork")
            self._pool = ctx.Pool(self.workers)

    # -- pipeline ------------------------------------------------------
    def dump(self, iteration: int) -> None:
        self.start()
        t_dump = time.perf_counter()
        path = self.container_path(iteration)
        writer = SharedFileWriter(path)
        async_writer = AsyncWriter(writer)
        self._open_writer, self._open_async = writer, async_writer
        callback_errors: list[BaseException] = []
        pending = []
        try:
            for rank in range(self.ranks):
                t0 = time.perf_counter()
                segment, fields_meta = self._publish_rank(
                    rank, iteration
                )
                self.stats.generate_wall_s += time.perf_counter() - t0

                def _on_done(
                    result,
                    seg_name=segment.name,
                    iteration=iteration,
                    writer=writer,
                    async_writer=async_writer,
                ):
                    # Pool result-handler thread: stream payloads to the
                    # async writer the moment this rank finishes, then
                    # drop its segment.
                    try:
                        _, blocks = result
                        for dataset, payload, checksum in blocks:
                            writer.reserve(dataset, len(payload))
                            async_writer.submit(
                                dataset, payload, checksum=checksum
                            )
                            with self._stats_lock:
                                self._record_block(
                                    iteration, dataset, payload, checksum
                                )
                    except BaseException as exc:  # surfaced below
                        callback_errors.append(exc)
                    finally:
                        self.registry.release(seg_name)

                def _on_error(exc, seg_name=segment.name):
                    self.registry.release(seg_name)

                pending.append(
                    self._pool.apply_async(
                        _pool_compress_rank,
                        (
                            (
                                segment.name,
                                rank,
                                fields_meta,
                                self.spec.data_block_bytes,
                            ),
                        ),
                        callback=_on_done,
                        error_callback=_on_error,
                    )
                )
            for result in pending:
                result.get()  # re-raises worker exceptions here
            if callback_errors:
                raise callback_errors[0]
            self.stats.compress_wall_s += time.perf_counter() - t_dump
            t_write = time.perf_counter()
            async_writer.drain(timeout=_DRAIN_TIMEOUT_S)
            async_writer.close(timeout=_DRAIN_TIMEOUT_S)
            writer.close()
            self._open_writer = self._open_async = None
            now = time.perf_counter()
            self.stats.write_wall_s += now - t_write
            self.stats.dump_wall_s += now - t_dump
            self.stats.containers[iteration] = path
            self._trace_dump(iteration, now - t_dump)
        except BaseException:
            self._abort_open_container()
            raise

    def _publish_rank(self, rank: int, iteration: int):
        """Generate one rank's fields into a fresh shared segment."""
        arrays = [
            (fs, self.app.generate_field(fs.name, rank, iteration))
            for fs in self.field_specs
        ]
        total = sum(data.nbytes for _, data in arrays)
        segment = self.registry.create(total)
        fields_meta = []
        offset = 0
        for fs, data in arrays:
            view = attach_view(segment, data.shape, data.dtype, offset)
            view[...] = data
            fields_meta.append(
                (
                    fs.name,
                    tuple(int(d) for d in data.shape),
                    data.dtype.str,
                    offset,
                    fs.error_bound,
                )
            )
            offset += data.nbytes
            self.stats.raw_bytes += data.nbytes
        return segment, fields_meta

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        super().close()
        self.registry.release_all()

    def abort(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        super().abort()
        self.registry.release_all()
