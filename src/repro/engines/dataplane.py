"""The engines' real data plane: generate, compress, and write bytes.

The campaign control plane (planning, scheduling, modelled replay,
journalling) is identical under every engine; what an engine actually
*executes* is this data plane.  On each dump iteration every rank's
partition fields are generated, sliced into fine-grained blocks,
compressed with the SZ codec, CRC32C-stamped, and written into one
shared ``.rpio`` container through the wall-clock
:class:`~repro.io.async_io.AsyncWriter`.

Two implementations share one deterministic block pipeline, so the same
spec + seed yields byte-identical compressed blocks (hence identical
CRC32Cs) under both:

* :class:`SerialDataPlane` — everything in the calling process, strictly
  compress-then-write: the single-process reference.
* :class:`PoolDataPlane` — per-rank compression fans out to worker
  processes over zero-copy shared-memory views, payloads stream to the
  async writer as each rank finishes, and the parent generates the next
  rank's fields meanwhile — compute, compression, and I/O genuinely
  overlap on real cores.

The pool plane is *supervised*: every rank task runs under the
:class:`~repro.engines.supervisor.WorkerSupervisor`, which bounds each
attempt with a deadline, detects killed/replaced pool workers, retries
within the campaign's backoff policy, speculates on stragglers, and —
once the budget is gone — compresses the poisoned rank serially in the
parent through the very same deterministic core.  A rank therefore
yields identical bytes whether it succeeded first try, after a retry,
or via the fallback.

Container layout *order* may differ between the two (workers finish in
nondeterministic order) but the stored bytes per dataset are identical.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..compression import SZCompressor, plan_blocks, slice_field
from ..durability.checksum import crc32c
from ..io.async_io import AsyncWriter
from ..io.hdf5like import SharedFileWriter
from ..resilience.faults import FaultInjector
from ..resilience.report import ResilienceLog
from ..resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from ..telemetry import NULL_TRACER, NullTracer
from .shm import SegmentRegistry, attach_view
from .spec import CampaignSpec
from .supervisor import SupervisorStats, WorkerSupervisor

__all__ = ["DataPlaneStats", "SerialDataPlane", "PoolDataPlane"]

#: Seconds the engine waits for the async writer to drain one dump.
_DRAIN_TIMEOUT_S = 120.0


@dataclass
class DataPlaneStats:
    """Wall-clock outcome of a run's real compress+dump pipeline."""

    workers: int = 1
    num_blocks: int = 0
    raw_bytes: int = 0
    compressed_bytes: int = 0
    generate_wall_s: float = 0.0
    compress_wall_s: float = 0.0
    write_wall_s: float = 0.0
    dump_wall_s: float = 0.0
    #: iteration -> published container path.
    containers: dict[int, str] = field(default_factory=dict)
    #: ``it<NNNN>/rank<R>/<field>/<block>`` -> payload CRC32C.
    block_crc32c: dict[str, int] = field(default_factory=dict)
    #: Recovery tallies of the supervised pool plane (None when serial).
    supervisor: SupervisorStats | None = None

    @property
    def compression_ratio(self) -> float:
        return self.raw_bytes / max(1, self.compressed_bytes)


def _compress_field_blocks(
    compressor: SZCompressor,
    rank: int,
    field_name: str,
    values: np.ndarray,
    bound: float,
    block_bytes: int,
) -> list[tuple[str, bytes, int]]:
    """Compress one field into its blocks: the shared deterministic core.

    Both data planes (and the pool worker below) call exactly this, so
    cross-engine payloads are byte-identical.
    """
    out = []
    for spec in plan_blocks(
        field_name, values.shape, values.itemsize, block_bytes
    ):
        block = np.ascontiguousarray(slice_field(values, spec))
        payload = compressor.compress(block, bound).to_bytes()
        out.append(
            (
                f"rank{rank}/{field_name}/{spec.block_index}",
                payload,
                crc32c(payload),
            )
        )
    return out


# ----------------------------------------------------------------------
# pool worker (runs in a forked child)
# ----------------------------------------------------------------------
_WORKER_COMPRESSOR: SZCompressor | None = None


def _apply_worker_fault(fault) -> None:
    """Execute one injected real-plane fault inside the pool worker.

    ``fault`` is ``None`` or ``(kind, stall_s)`` drawn deterministically
    by the parent's :meth:`~repro.resilience.faults.FaultInjector.
    worker_fault` and shipped with the task args — the worker executes
    the decision but never draws randomness itself.
    """
    if fault is None:
        return
    kind, stall_s = fault
    if kind == "kill":
        # The real thing: SIGKILL this pool child.  The pool silently
        # respawns a replacement, but the in-flight task never resolves
        # — exactly the hang the supervisor exists to catch.
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "stall":
        time.sleep(stall_s)
    elif kind == "error":
        raise RuntimeError("injected worker fault: task raised")


def _pool_compress_rank(args):
    """Compress one rank's shared-memory fields; returns its payloads.

    ``fields_meta`` rows are ``(name, shape, dtype_str, offset, bound)``
    describing zero-copy views into the named segment.  Only the
    compressed payloads (plus their CRC32Cs) travel back over the task
    pipe.  ``fault`` (see :func:`_apply_worker_fault`) fires before the
    segment is attached so an injected kill never strands a child-side
    handle.
    """
    seg_name, rank, fields_meta, block_bytes, fault = args
    _apply_worker_fault(fault)
    global _WORKER_COMPRESSOR
    if _WORKER_COMPRESSOR is None:
        _WORKER_COMPRESSOR = SZCompressor()
    segment = shared_memory.SharedMemory(name=seg_name)
    try:
        results: list[tuple[str, bytes, int]] = []
        for name, shape, dtype_str, offset, bound in fields_meta:
            view = attach_view(
                segment, tuple(shape), np.dtype(dtype_str), offset
            )
            results.extend(
                _compress_field_blocks(
                    _WORKER_COMPRESSOR,
                    rank,
                    name,
                    view,
                    bound,
                    block_bytes,
                )
            )
        return rank, results
    finally:
        segment.close()


# ----------------------------------------------------------------------
class SerialDataPlane:
    """Single-process reference: compress every block, then write."""

    def __init__(
        self,
        spec: CampaignSpec,
        tracer: NullTracer = NULL_TRACER,
        *,
        injector: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.spec = spec
        self.tracer = tracer
        self.app = spec.data_application()
        self.field_specs = tuple(self.app.fields[: spec.data_fields])
        self.ranks = spec.nodes * spec.ppn
        self.stats = DataPlaneStats(workers=1)
        self.injector = injector
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self._log: ResilienceLog | None = (
            injector.log if injector is not None else None
        )
        self._compressor = SZCompressor()
        self._open_writer: SharedFileWriter | None = None
        self._open_async: AsyncWriter | None = None
        os.makedirs(spec.data_dir, exist_ok=True)

    def container_path(self, iteration: int) -> str:
        return os.path.join(
            self.spec.data_dir,
            f"{self.spec.solution}-it{iteration:04d}.rpio",
        )

    # -- pipeline ------------------------------------------------------
    def dump(self, iteration: int) -> None:
        """Really compress and write every rank's partition."""
        t_dump = time.perf_counter()
        path = self.container_path(iteration)
        writer = SharedFileWriter(path)
        async_writer = self._make_async_writer(writer)
        self._open_writer, self._open_async = writer, async_writer
        payloads: list[tuple[str, bytes, int]] = []
        for rank in range(self.ranks):
            payloads.extend(self._rank_payloads(iteration, rank))
        t_write = time.perf_counter()
        for dataset, payload, checksum in payloads:
            writer.reserve(dataset, len(payload))
            async_writer.submit(dataset, payload, checksum=checksum)
            self._record_block(iteration, dataset, payload, checksum)
        async_writer.drain(timeout=_DRAIN_TIMEOUT_S)
        async_writer.close(timeout=_DRAIN_TIMEOUT_S)
        writer.close()
        self._open_writer = self._open_async = None
        now = time.perf_counter()
        self.stats.write_wall_s += now - t_write
        self.stats.dump_wall_s += now - t_dump
        self.stats.containers[iteration] = path
        self._trace_dump(iteration, now - t_dump)

    def _rank_payloads(
        self, iteration: int, rank: int, *, count_raw: bool = True
    ) -> list[tuple[str, bytes, int]]:
        """Generate + compress one rank in this process.

        The serial dump's per-rank body — and the pool plane's
        ``rank-serial`` fallback, which is what makes fallback bytes
        identical to the pool path.  ``count_raw=False`` skips the
        raw-byte tally for ranks already counted at publish time.
        """
        payloads: list[tuple[str, bytes, int]] = []
        for fs in self.field_specs:
            t0 = time.perf_counter()
            values = self.app.generate_field(fs.name, rank, iteration)
            t1 = time.perf_counter()
            self.stats.generate_wall_s += t1 - t0
            payloads.extend(
                _compress_field_blocks(
                    self._compressor,
                    rank,
                    fs.name,
                    values,
                    fs.error_bound,
                    self.spec.data_block_bytes,
                )
            )
            if count_raw:
                self.stats.raw_bytes += values.nbytes
            self.stats.compress_wall_s += time.perf_counter() - t1
        return payloads

    def _make_async_writer(self, writer: SharedFileWriter) -> AsyncWriter:
        return AsyncWriter(
            writer, retry=self.retry, on_retry=self._on_io_retry
        )

    def _on_io_retry(self, job, exc: BaseException) -> None:
        """Count one wall-clock write retry in the campaign log."""
        if self._log is not None:
            self._log.record_retry()

    def _record_block(
        self, iteration: int, dataset: str, payload: bytes, checksum: int
    ) -> None:
        self.stats.num_blocks += 1
        self.stats.compressed_bytes += len(payload)
        self.stats.block_crc32c[f"it{iteration:04d}/{dataset}"] = checksum

    def _trace_dump(self, iteration: int, wall_s: float) -> None:
        if self.tracer.enabled:
            self.tracer.event(
                "engine.dump",
                iteration=iteration,
                wall_s=wall_s,
                blocks=self.stats.num_blocks,
            )
            self.tracer.counter("engine.dump").inc()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Orderly shutdown (idempotent)."""
        self._abort_open_container()

    def abort(self) -> None:
        """Abnormal shutdown: never publish a half-written container."""
        self._abort_open_container()

    def _abort_open_container(self) -> None:
        async_writer, self._open_async = self._open_async, None
        writer, self._open_writer = self._open_writer, None
        if async_writer is not None:
            try:
                async_writer.close(timeout=5.0)
            except (TimeoutError, RuntimeError):  # pragma: no cover
                pass
        if writer is not None:
            writer.abort()


class PoolDataPlane(SerialDataPlane):
    """Per-rank compression on real worker processes, I/O overlapped.

    For each dump iteration the parent fills one shared-memory segment
    per rank with that rank's generated fields and hands workers a
    zero-copy view descriptor.  Each rank task runs under the
    :class:`~repro.engines.supervisor.WorkerSupervisor`: finished ranks
    stream their compressed payloads onto the async writer while the
    parent is still generating later ranks, killed or hung workers are
    detected and the task re-executed within the campaign's retry
    budget, and an unsalvageable rank is compressed serially in the
    parent — so a dump completes (with identical bytes) even when the
    pool misbehaves.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        tracer: NullTracer = NULL_TRACER,
        *,
        injector: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        super().__init__(spec, tracer, injector=injector, retry=retry)
        self.workers = spec.workers or min(
            self.ranks, os.cpu_count() or 1
        )
        self.stats.workers = self.workers
        self.stats.supervisor = SupervisorStats()
        # Same backoff shape as the write policy, but the attempt cap is
        # the spec's task knob: first launch + max_task_retries re-runs.
        self._task_retry = dataclasses.replace(
            self.retry, max_attempts=spec.max_task_retries + 1
        )
        self.registry = SegmentRegistry()
        self._pool = None
        self._lifecycle_lock = threading.Lock()

    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        if self._pool is None:
            # The resource tracker must exist *before* the fork so the
            # workers inherit it: attach-time registrations then dedupe
            # against the parent's create-time ones and the parent's
            # unlink settles the account.  Forked-after-the-fact workers
            # would each spawn a private tracker that complains at exit
            # about segments the parent already unlinked.
            resource_tracker.ensure_running()
            ctx = multiprocessing.get_context("fork")
            self._pool = ctx.Pool(self.workers)

    def _worker_pids(self) -> tuple[int, ...]:
        """Current pool-child PIDs (empty once the pool is gone)."""
        pool = self._pool
        if pool is None:
            return ()
        return tuple(
            proc.pid
            for proc in getattr(pool, "_pool", ())
            if proc.pid is not None
        )

    # -- pipeline ------------------------------------------------------
    def dump(self, iteration: int) -> None:
        self.start()
        t_dump = time.perf_counter()
        path = self.container_path(iteration)
        writer = SharedFileWriter(path)
        async_writer = self._make_async_writer(writer)
        self._open_writer, self._open_async = writer, async_writer
        published: dict[int, tuple] = {}

        def launch(rank: int, attempt: int):
            segment, fields_meta = published[rank]
            fault = None
            if self.injector is not None:
                fault = self.injector.worker_fault(
                    rank, iteration, attempt
                )
            return self._pool.apply_async(
                _pool_compress_rank,
                (
                    (
                        segment.name,
                        rank,
                        fields_meta,
                        self.spec.data_block_bytes,
                        fault,
                    ),
                ),
            )

        def ingest(rank: int, result) -> None:
            _, blocks = result
            for dataset, payload, checksum in blocks:
                writer.reserve(dataset, len(payload))
                async_writer.submit(dataset, payload, checksum=checksum)
                self._record_block(iteration, dataset, payload, checksum)

        def fallback(rank: int):
            # Regenerate + compress in the parent through the shared
            # deterministic core: bytes identical to the pool path.
            return rank, self._rank_payloads(
                iteration, rank, count_raw=False
            )

        def on_resolved(rank: int) -> None:
            segment, _ = published.pop(rank)
            self.registry.release(segment.name)

        supervisor = WorkerSupervisor(
            launch=launch,
            ingest=ingest,
            fallback=fallback,
            retry=self._task_retry,
            deadline_s=self.spec.task_deadline_s,
            speculative_frac=self.spec.speculative_frac,
            worker_pids=self._worker_pids,
            on_resolved=on_resolved,
            stats=self.stats.supervisor,
            log=self._log,
            tracer=self.tracer,
            iteration=iteration,
        )
        try:
            for rank in range(self.ranks):
                t0 = time.perf_counter()
                published[rank] = self._publish_rank(rank, iteration)
                self.stats.generate_wall_s += time.perf_counter() - t0
                supervisor.submit(rank)
                # One state-machine pass between publishes streams
                # already-finished ranks to the writer while the parent
                # keeps generating — the overlap the pool plane exists
                # for.
                supervisor.poll()
            supervisor.wait_all()
            self.stats.compress_wall_s += time.perf_counter() - t_dump
            t_write = time.perf_counter()
            async_writer.drain(timeout=_DRAIN_TIMEOUT_S)
            async_writer.close(timeout=_DRAIN_TIMEOUT_S)
            writer.close()
            self._open_writer = self._open_async = None
            now = time.perf_counter()
            self.stats.write_wall_s += now - t_write
            self.stats.dump_wall_s += now - t_dump
            self.stats.containers[iteration] = path
            self._trace_dump(iteration, now - t_dump)
        except BaseException:
            self._abort_open_container()
            raise
        finally:
            # Error paths leave unresolved ranks' segments behind; a
            # clean run leaves nothing (each rank released on resolve).
            for segment, _ in published.values():
                self.registry.release(segment.name)
            published.clear()

    def _publish_rank(self, rank: int, iteration: int):
        """Generate one rank's fields into a fresh shared segment."""
        arrays = [
            (fs, self.app.generate_field(fs.name, rank, iteration))
            for fs in self.field_specs
        ]
        total = sum(data.nbytes for _, data in arrays)
        segment = self.registry.create(total)
        fields_meta = []
        offset = 0
        for fs, data in arrays:
            view = attach_view(segment, data.shape, data.dtype, offset)
            view[...] = data
            fields_meta.append(
                (
                    fs.name,
                    tuple(int(d) for d in data.shape),
                    data.dtype.str,
                    offset,
                    fs.error_bound,
                )
            )
            offset += data.nbytes
            self.stats.raw_bytes += data.nbytes
        return segment, fields_meta

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        # Serialized against abort(): engine teardown may race a signal
        # handler or watchdog aborting the same plane, and pool.close()
        # on a terminated pool (or vice versa) is undefined.
        with self._lifecycle_lock:
            pool, self._pool = self._pool, None
            if pool is not None:
                sup = self.stats.supervisor
                if sup is not None and sup.recovered:
                    # A task whose worker died never resolves, so its
                    # entry sits in the pool's result cache forever and
                    # a graceful close() would join() until the end of
                    # time.  Every result was already ingested per dump
                    # (the async writer drained), so once the supervisor
                    # recovered *anything* there is nothing left a
                    # graceful shutdown could flush — terminate.
                    pool.terminate()
                else:
                    pool.close()
                pool.join()
            super().close()
            self.registry.release_all()

    def abort(self) -> None:
        with self._lifecycle_lock:
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.terminate()
                pool.join()
            super().abort()
            self.registry.release_all()
