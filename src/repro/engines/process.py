"""`ProcessPoolEngine`: real multi-process compression + overlapped I/O.

Runs the same modelled control plane as :class:`~repro.engines.sim.
SimulatorEngine` — that is what keeps journal records, reports, and
fault hooks identical across backends — but executes the data plane on
real cores:

* the parent publishes each rank's generated fields into a
  ``multiprocessing.shared_memory`` segment (zero-copy numpy views on
  both sides);
* a fork-server-free ``fork`` pool of workers runs per-rank
  quantization + Huffman compression concurrently;
* finished ranks stream their CRC32C-stamped payloads straight into the
  wall-clock :class:`~repro.io.async_io.AsyncWriter`, so compute (field
  generation), compression, and I/O genuinely overlap — the paper's
  concealment pipeline, for real.

Unlike the simulator engine, the real data plane is always on here: a
process engine with nothing to execute would be pointless.  Without an
explicit ``data_dir`` the containers go to a temporary directory that
``finalize()`` removes.
"""

from __future__ import annotations

import dataclasses
import shutil
import tempfile

from .base import register_engine
from .dataplane import PoolDataPlane
from .sim import SimulatorEngine
from .spec import CampaignSpec

__all__ = ["ProcessPoolEngine"]


@register_engine
class ProcessPoolEngine(SimulatorEngine):
    """Worker-process execution with shared-memory compression overlap."""

    name = "process"

    def _dataplane_spec(self) -> CampaignSpec:
        """The spec with a data directory guaranteed.

        The temp-directory fallback is allocated once per engine and
        cleaned up by :meth:`finalize`/:meth:`abort`.
        """
        if self.spec.data_dir is not None:
            return self.spec
        if getattr(self, "_tmpdir", None) is None:
            self._tmpdir = tempfile.mkdtemp(prefix="repro-engine-")
        return dataclasses.replace(self.spec, data_dir=self._tmpdir)

    def _make_dataplane(self) -> PoolDataPlane:
        return PoolDataPlane(
            self._dataplane_spec(),
            tracer=self.tracer,
            injector=self.injector,
            retry=self.retry,
        )

    def prepare(self) -> None:
        """Bring up the worker pool eagerly so startup cost is paid once."""
        super().prepare()
        assert self.dataplane is not None  # data plane is always on here
        self.dataplane.start()

    def finalize(self) -> None:
        """Join the pool, unlink every segment, drop any temp dir."""
        super().finalize()
        self._cleanup_tmpdir()

    def abort(self) -> None:
        """Terminate the pool, unlink every segment, drop any temp dir."""
        super().abort()
        self._cleanup_tmpdir()

    def _cleanup_tmpdir(self) -> None:
        tmpdir, self._tmpdir = getattr(self, "_tmpdir", None), None
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)
