"""Shared-memory segment management for the process-pool engine.

The parent publishes each rank's freshly generated fields into one
``multiprocessing.shared_memory`` segment; compression workers attach and
build zero-copy numpy views over it, so field bytes never cross the task
pipe — only the (much smaller) compressed payloads come back.

Every segment this module creates carries the ``repro-shm-`` name prefix
and is tracked by a :class:`SegmentRegistry`, whose :meth:`release_all`
is wired into the engine's ``finalize()`` — including the abnormal
shutdown path — so a crashed or interrupted campaign never leaks
``/dev/shm`` entries.  :func:`active_segments` scans the system for
leftovers; the test suite uses it as a leak check after every test.
"""

from __future__ import annotations

import os
import secrets
import threading
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "SHM_PREFIX",
    "SegmentRegistry",
    "active_segments",
    "attach_view",
]

#: Name prefix of every segment this package creates — the contract the
#: leak check (and operators inspecting /dev/shm) relies on.
SHM_PREFIX = "repro-shm-"

_SHM_DIR = "/dev/shm"


def active_segments() -> list[str]:
    """Names of live ``repro-shm-*`` segments on this machine.

    POSIX shared memory appears under ``/dev/shm`` on Linux; on
    platforms without that directory the scan returns ``[]`` (the leak
    check is then a no-op rather than a false alarm).
    """
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:
        return []
    return sorted(n for n in names if n.startswith(SHM_PREFIX))


class SegmentRegistry:
    """Tracks every segment an engine created; guarantees unlinking.

    Thread-safe: the process-pool engine releases segments from the pool
    result thread while the main thread may be creating the next one.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._counter = 0

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        """Create and track one uniquely named segment."""
        with self._lock:
            self._counter += 1
            name = (
                f"{SHM_PREFIX}{os.getpid()}-{self._counter}-"
                f"{secrets.token_hex(4)}"
            )
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, nbytes)
        )
        with self._lock:
            self._segments[segment.name] = segment
        return segment

    def release(self, name: str) -> None:
        """Close and unlink one segment; unknown names are a no-op."""
        with self._lock:
            segment = self._segments.pop(name, None)
        if segment is None:
            return
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def release_all(self) -> None:
        """Unlink everything still tracked (abnormal-shutdown path)."""
        with self._lock:
            names = list(self._segments)
        for name in names:
            self.release(name)

    @property
    def live(self) -> list[str]:
        with self._lock:
            return sorted(self._segments)


def attach_view(
    segment: shared_memory.SharedMemory,
    shape: tuple[int, ...],
    dtype: np.dtype,
    offset: int,
) -> np.ndarray:
    """A zero-copy numpy view over ``segment`` at ``offset``."""
    return np.ndarray(
        shape, dtype=dtype, buffer=segment.buf, offset=offset
    )
