"""`SimulatorEngine`: the discrete-event backend, as an engine.

A thin adapter over the existing :mod:`repro.simulator` stack: the
modelled control plane (:class:`~repro.framework.orchestrator.
CampaignRunner`) does everything, exactly as ``CampaignRunner.run()``
always has — same journal records, same metrics, same fault hooks.

When the spec enables the real data plane (``data_dir`` set), each dump
iteration additionally generates, compresses, CRC-stamps, and writes
every rank's partition — **serially, in this process**.  That is the
single-core reference the process-pool engine's overlap is measured
against, and the oracle the cross-engine equivalence suite compares
block CRC32Cs with.
"""

from __future__ import annotations

from ..framework.orchestrator import (
    CampaignResult,
    CampaignRunner,
    IterationRecord,
)
from ..resilience.faults import FaultInjector
from ..resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from ..telemetry import NULL_TRACER, NullTracer
from .base import EngineError, EngineReport, ExecutionEngine, register_engine
from .dataplane import SerialDataPlane
from .spec import CampaignSpec

__all__ = ["SimulatorEngine"]


@register_engine
class SimulatorEngine(ExecutionEngine):
    """Single-process discrete-event execution (the historical default)."""

    name = "sim"

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        tracer: NullTracer = NULL_TRACER,
        injector: FaultInjector | None = None,
        retry: RetryPolicy = DEFAULT_RETRY_POLICY,
    ) -> None:
        super().__init__(
            spec, tracer=tracer, injector=injector, retry=retry
        )
        self.runner = CampaignRunner(
            spec.application(),
            spec.cluster_spec(),
            spec.resolved_config(),
            solution=spec.solution,
            seed=spec.seed,
            tracer=tracer.bind(solution=spec.solution),
            injector=injector,
            retry=retry,
        )
        self.result: CampaignResult | None = None
        self.dataplane: SerialDataPlane | None = None
        self._finished = False

    # -- data plane wiring (overridden by the process engine) ----------
    def _dataplane_spec(self) -> CampaignSpec:
        return self.spec

    def _make_dataplane(self) -> SerialDataPlane:
        return SerialDataPlane(
            self._dataplane_spec(),
            tracer=self.tracer,
            injector=self.injector,
            retry=self.retry,
        )

    # -- protocol ------------------------------------------------------
    def prepare(self) -> None:
        """Start a fresh result; bring up the data plane if enabled."""
        self.result = self.runner.start_result()
        self._finished = False
        if self._dataplane_spec().data_dir is not None:
            self.dataplane = self._make_dataplane()

    def run_iteration(self, iteration: int) -> IterationRecord:
        """One modelled iteration; dumps also hit the real data plane."""
        if self.result is None:
            raise EngineError("run_iteration() before prepare()")
        record = self.runner.run_one(iteration)
        self.result.records.append(record)
        if self.dataplane is not None and record.dumped:
            self.dataplane.dump(iteration)
        return record

    def finish(self) -> CampaignResult:
        """Aggregate the campaign metrics (idempotent)."""
        if self.result is None:
            raise EngineError("finish() before prepare()")
        if not self._finished:
            self.runner.finish(self.result)
            self._finished = True
        return self.result

    def finalize(self) -> None:
        """Orderly shutdown of the data plane (idempotent)."""
        dataplane, self.dataplane = self.dataplane, None
        if dataplane is not None:
            dataplane.close()
            self.dataplane = dataplane  # stats stay reachable

    def abort(self) -> None:
        """Hard shutdown: abort any half-written container."""
        dataplane, self.dataplane = self.dataplane, None
        if dataplane is not None:
            dataplane.abort()
            self.dataplane = dataplane

    def report(self, wall_time_s: float) -> EngineReport:
        """The run's report (modelled result + wall-clock facts)."""
        if self.result is None:
            raise EngineError("report() before prepare()")
        return EngineReport(
            engine=self.name,
            spec=self.spec,
            result=self.finish(),
            wall_time_s=float(wall_time_s),
            data=None if self.dataplane is None else self.dataplane.stats,
        )

    # -- journal hooks: pure control plane, identical across engines --
    def journal_plan_data(self, iteration: int) -> dict:
        """Write-ahead plan payload (delegates to the control plane)."""
        return self.runner.journal_plan_data(iteration)

    def journal_commit_data(self, record: IterationRecord) -> dict:
        """Post-iteration commit payload (delegates to the control plane)."""
        return self.runner.journal_commit_data(record)

    def journal_end_data(self) -> dict:
        """Campaign-complete payload (delegates to the control plane)."""
        return self.runner.journal_end_data(
            self.finish(), self.spec.iterations
        )
