"""`CampaignSpec`: one validated, fingerprintable description of a run.

Campaign entry points used to take a pile of scattered kwargs (``app``,
``nodes``, ``ppn``, ``iterations``, ``solution``, ``seed``, ``faults``,
…) that every caller — the CLI, the sweep helpers, the chaos harness —
re-spelled slightly differently.  :class:`CampaignSpec` replaces them
with a single frozen dataclass that

* validates every field on construction, naming the bad one;
* serializes to canonical JSON (:meth:`to_json_dict`), so the write-ahead
  campaign journal can fingerprint exactly what it is journalling
  (:meth:`fingerprint` is the CRC32C of that canonical form); and
* builds the runtime objects the engines need (:meth:`application`,
  :meth:`cluster_spec`, :meth:`resolved_config`).

The legacy scattered-kwargs form still works through
:meth:`CampaignSpec.from_kwargs`, which maps the old names and emits a
``DeprecationWarning`` once per process.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass

from ..durability.fingerprint import fingerprint_json
from ..framework.baselines import (
    async_io_config,
    baseline_config,
    ours_config,
)
from ..framework.config import FrameworkConfig

__all__ = ["CampaignSpec", "SOLUTIONS", "APP_NAMES"]

#: The three evaluated solution configurations (docs/architecture.md).
SOLUTIONS = ("baseline", "previous", "ours")
#: Application models a spec can name.
APP_NAMES = ("nyx", "warpx", "hacc")

_SOLUTION_CONFIGS = {
    "baseline": baseline_config,
    "previous": async_io_config,
    "ours": ours_config,
}

#: Emitted at most once per process by :meth:`CampaignSpec.from_kwargs`.
_warned_legacy_kwargs = False

#: Old scattered-kwarg names accepted by the deprecation shim, mapped to
#: their :class:`CampaignSpec` field.
_LEGACY_KWARGS = {
    "app": "app",
    "app_name": "app",
    "nodes": "nodes",
    "num_nodes": "nodes",
    "ppn": "ppn",
    "processes_per_node": "ppn",
    "iterations": "iterations",
    "num_iterations": "iterations",
    "solution": "solution",
    "seed": "seed",
    "master_seed": "seed",
    "faults": "faults",
    "engine": "engine",
    "config": "config",
}


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that defines one campaign run, in one place.

    Attributes:
        app: application model name (``nyx`` / ``warpx`` / ``hacc``).
        nodes: cluster node count.
        ppn: processes (ranks) per node.
        iterations: campaign length in iterations.
        solution: which evaluated configuration to run (``baseline`` /
            ``previous`` / ``ours``) — ignored when ``config`` is given.
        seed: master seed driving fields, noise, and fault draws.
        engine: execution backend name (``sim`` or ``process``; see
            :func:`repro.engines.list_engines`).
        faults: parsed fault-spec data (the JSON-safe mapping
            :func:`repro.resilience.load_spec_data` returns), or None.
        config: explicit :class:`FrameworkConfig` override; None means
            "the named solution's standard configuration".
        data_dir: directory for real compressed containers.  None (the
            default) keeps the data plane off: the campaign is modelled
            only.  Set, every dump iteration also *really* generates,
            compresses, and writes each rank's partition — serially under
            the simulator engine, on worker processes under the
            process-pool engine.
        data_edge: cubic partition edge (or cube root of the particle
            count for HACC) of the real data-plane fields.
        data_fields: how many of the app's fields the data plane dumps.
        data_block_bytes: fine-grained block size for data-plane
            compression.
        workers: worker-process count for the process engine (None:
            ``min(total ranks, cpu count)``).
        task_deadline_s: wall-clock deadline for one launch attempt of a
            rank compression task on the process engine; past it the
            attempt is abandoned and the task retried.  None disables
            supervision deadlines (a SIGKILLed worker then surfaces only
            through worker-death detection).
        max_task_retries: how many times a failed/timed-out rank task is
            re-executed before the parent compresses that rank serially
            (the bytes-identical ``rank-serial`` fallback).
        speculative_frac: completed fraction of a dump's rank tasks after
            which a straggling task may get one speculative duplicate
            launch (0 disables speculation).

        The supervision knobs (like ``workers``) shape *how* the real
        data plane executes, never *what* bytes it produces, so they are
        excluded from :meth:`to_json_dict` and the fingerprint.
    """

    app: str = "nyx"
    nodes: int = 4
    ppn: int = 4
    iterations: int = 6
    solution: str = "ours"
    seed: int = 1
    engine: str = "sim"
    faults: dict | None = None
    config: FrameworkConfig | None = None
    data_dir: str | None = None
    data_edge: int = 16
    data_fields: int = 2
    data_block_bytes: int = 64 * 1024
    workers: int | None = None
    task_deadline_s: float | None = 30.0
    max_task_retries: int = 2
    speculative_frac: float = 0.9

    def __post_init__(self) -> None:
        """Validate every field on construction, naming the bad one."""

        def bad(field_name: str, requirement: str) -> ValueError:
            value = getattr(self, field_name)
            return ValueError(
                f"CampaignSpec.{field_name} {requirement}, got {value!r}"
            )

        if self.app not in APP_NAMES:
            raise bad("app", f"must be one of {', '.join(APP_NAMES)}")
        if not isinstance(self.nodes, int) or self.nodes < 1:
            raise bad("nodes", "must be a positive int")
        if not isinstance(self.ppn, int) or self.ppn < 1:
            raise bad("ppn", "must be a positive int")
        if not isinstance(self.iterations, int) or self.iterations < 0:
            raise bad("iterations", "must be a non-negative int")
        if self.solution not in SOLUTIONS:
            raise bad(
                "solution", f"must be one of {', '.join(SOLUTIONS)}"
            )
        if not isinstance(self.seed, int):
            raise bad("seed", "must be an int")
        if not isinstance(self.engine, str) or not self.engine:
            raise bad("engine", "must be a non-empty engine name")
        if self.faults is not None and not isinstance(self.faults, dict):
            raise bad("faults", "must be parsed fault-spec data (a dict)")
        if self.config is not None and not isinstance(
            self.config, FrameworkConfig
        ):
            raise bad("config", "must be a FrameworkConfig")
        if self.data_edge < 2:
            raise bad("data_edge", "must be >= 2")
        if self.data_fields < 1:
            raise bad("data_fields", "must be >= 1")
        if self.data_block_bytes < 1:
            raise bad("data_block_bytes", "must be positive")
        if self.workers is not None and self.workers < 1:
            raise bad("workers", "must be None or >= 1")
        if self.task_deadline_s is not None and not (
            self.task_deadline_s > 0
        ):
            raise bad("task_deadline_s", "must be None or > 0")
        if (
            not isinstance(self.max_task_retries, int)
            or self.max_task_retries < 0
        ):
            raise bad("max_task_retries", "must be a non-negative int")
        if not 0.0 <= self.speculative_frac <= 1.0:
            raise bad("speculative_frac", "must be in [0, 1]")

    # ------------------------------------------------------------------
    # legacy kwargs shim
    # ------------------------------------------------------------------
    @classmethod
    def from_kwargs(cls, **kwargs) -> "CampaignSpec":
        """Map the old scattered campaign kwargs onto a spec.

        Accepts both the current field names and the historical aliases
        (``num_nodes``, ``processes_per_node``, ``num_iterations``,
        ``master_seed``, ``app_name``).  Emits a ``DeprecationWarning``
        once per process; new code should construct
        :class:`CampaignSpec` directly.
        """
        global _warned_legacy_kwargs
        if not _warned_legacy_kwargs:
            _warned_legacy_kwargs = True
            warnings.warn(
                "passing scattered campaign kwargs is deprecated; "
                "construct a repro.engines.CampaignSpec instead",
                DeprecationWarning,
                stacklevel=3,
            )
        mapped: dict = {}
        for key, value in kwargs.items():
            field_name = _LEGACY_KWARGS.get(key, key)
            if field_name not in {
                f.name for f in dataclasses.fields(cls)
            }:
                raise TypeError(
                    f"unknown campaign kwarg {key!r} (known: "
                    f"{', '.join(sorted(_LEGACY_KWARGS))})"
                )
            if field_name in mapped and mapped[field_name] != value:
                raise TypeError(
                    f"campaign kwarg {key!r} conflicts with an alias "
                    f"for {field_name!r}"
                )
            mapped[field_name] = value
        return cls(**mapped)

    # ------------------------------------------------------------------
    # canonical serialization + fingerprint
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict:
        """A JSON-safe, canonical-JSON-serializable view of the spec.

        ``config`` flattens to its (numeric/bool/str) dataclass fields;
        the journal fingerprints this dict, so its shape is part of the
        journal format.
        """
        doc: dict = {
            "app": self.app,
            "nodes": int(self.nodes),
            "ppn": int(self.ppn),
            "iterations": int(self.iterations),
            "solution": self.solution,
            "seed": int(self.seed),
            "engine": self.engine,
            "faults": self.faults,
            "config": (
                None
                if self.config is None
                else dataclasses.asdict(self.config)
            ),
            "data": (
                None
                if self.data_dir is None
                else {
                    "edge": int(self.data_edge),
                    "fields": int(self.data_fields),
                    "block_bytes": int(self.data_block_bytes),
                }
            ),
        }
        return doc

    def fingerprint(self) -> str:
        """CRC32C (hex) of the canonical-JSON spec — the campaign's
        content identity (:func:`repro.durability.fingerprint_json`).

        The memo cache, the journal header, and the resume cross-check
        all derive identity from this one definition.
        """
        return fingerprint_json(self.to_json_dict())

    def control_fingerprint(self) -> str:
        """Fingerprint of the *control-plane* identity: the spec with
        the data plane stripped.

        This is what the write-ahead journal stamps in its header.  The
        journal records only the modelled control plane, and resume
        deliberately lets the (unjournalled) data-plane knobs differ
        between the crashed and the resuming invocation, so the identity
        the resume check verifies must exclude them.
        """
        return dataclasses.replace(self, data_dir=None).fingerprint()

    # ------------------------------------------------------------------
    # runtime object builders
    # ------------------------------------------------------------------
    def resolved_config(self) -> FrameworkConfig:
        """The explicit config override, or the solution's standard one."""
        if self.config is not None:
            return self.config
        return _SOLUTION_CONFIGS[self.solution]()

    def cluster_spec(self):
        """The :class:`~repro.simulator.ClusterSpec` this spec describes."""
        from ..simulator.node import ClusterSpec

        return ClusterSpec(
            num_nodes=self.nodes, processes_per_node=self.ppn
        )

    def application(self):
        """The modelled application (paper-default partition sizes)."""
        return self._app_class()(seed=self.seed)

    def data_application(self):
        """The data-plane application: same model, small real fields."""
        cls = self._app_class()
        if self.app == "hacc":
            return cls(
                seed=self.seed, particles_per_rank=self.data_edge**3
            )
        return cls(seed=self.seed, partition_shape=(self.data_edge,) * 3)

    def _app_class(self):
        from ..apps import HaccModel, NyxModel, WarpXModel

        return {
            "nyx": NyxModel,
            "warpx": WarpXModel,
            "hacc": HaccModel,
        }[self.app]

    def journal_header(self) -> dict:
        """The write-ahead journal's ``begin`` payload for this spec.

        Keeps the historical flat keys (``app``/``nodes``/…) so older
        journals resume unchanged, and adds the engine name plus the
        canonical spec fingerprint.
        """
        return {
            "app": self.app,
            "nodes": self.nodes,
            "ppn": self.ppn,
            "iterations": self.iterations,
            "solution": self.solution,
            "seed": self.seed,
            "faults": self.faults,
            "engine": self.engine,
            "spec_crc32c": self.control_fingerprint(),
        }

    @classmethod
    def from_journal_header(cls, header: dict) -> "CampaignSpec":
        """Rebuild the spec a journalled campaign ran under."""
        return cls(
            app=header["app"],
            nodes=header["nodes"],
            ppn=header["ppn"],
            iterations=header["iterations"],
            solution=header["solution"],
            seed=header["seed"],
            faults=header.get("faults"),
            engine=header.get("engine", "sim"),
        )
