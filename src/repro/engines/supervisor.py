"""`WorkerSupervisor`: fault-tolerant execution of per-rank pool tasks.

The process-pool data plane used to wait on each rank task with an
unbounded ``result.get()``.  That is exactly wrong for the one failure
``multiprocessing.Pool`` does not surface: a SIGKILLed worker is
silently respawned by the pool, but the task it was running never
resolves — the campaign hangs forever.  The supervisor replaces the
blind wait with a small state machine, polled from the dispatching
thread, that makes the real data plane survive worker death, hangs,
and stragglers:

* **deadline** — every launch attempt of a rank task has a wall-clock
  deadline (:class:`~repro.engines.spec.CampaignSpec.task_deadline_s`);
  an attempt past it is abandoned (but still harvested if it finishes
  late, so a slow-but-alive worker can win).
* **worker watch** — the pool's worker PIDs are snapshotted every poll;
  when one disappears the in-flight attempts are abandoned and retried
  immediately instead of waiting out the full deadline.
* **retry** — failed/abandoned tasks are re-launched through the
  campaign's :class:`~repro.resilience.retry.RetryPolicy` backoff, up
  to ``max_task_retries`` re-executions.
* **speculation** — once most tasks of the dump have completed, a
  straggler running far past the median completion time gets one
  speculative duplicate; whichever attempt finishes first wins.
* **fallback** — a task that exhausts its budget is handed to the
  caller's ``fallback`` (the parent compresses the rank serially
  through the same deterministic block core, so bytes stay identical)
  and the campaign keeps going.

Exactly one result per rank is ever ingested (the first to arrive), so
duplicate attempts — retries racing their abandoned predecessors,
speculative copies — are always safe: the compression pipeline is a
pure function of the (seeded) field bytes, every attempt produces the
same payloads, and dedup just discards the copies.

The supervisor is engine-agnostic: it only needs a ``launch`` callable
returning ``multiprocessing.pool.AsyncResult``-shaped handles
(``ready()`` / ``get(timeout)``), which is what makes the state machine
unit-testable without a real pool.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable

from ..resilience.report import ResilienceLog
from ..resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from ..telemetry import NULL_TRACER, NullTracer

__all__ = ["SupervisorStats", "WorkerSupervisor"]

#: Default sleep between state-machine polls in :meth:`wait_all`.
POLL_INTERVAL_S = 0.02

#: A straggler is speculated on once it runs longer than
#: ``max(SPECULATIVE_FACTOR * median completion, SPECULATIVE_MIN_S)``.
SPECULATIVE_FACTOR = 2.0
SPECULATIVE_MIN_S = 0.1


@dataclass
class SupervisorStats:
    """Wall-clock recovery tallies of the supervised data plane.

    One instance accumulates across every dump of a campaign; it rides
    on :class:`~repro.engines.dataplane.DataPlaneStats` so the engine
    report can name what the supervisor had to absorb even when no
    fault injector (hence no resilience report) is attached.
    """

    tasks: int = 0
    attempts: int = 0
    retries: int = 0
    deadline_misses: int = 0
    worker_deaths: int = 0
    worker_errors: int = 0
    speculative_launches: int = 0
    speculative_wins: int = 0
    #: ``it<N>/rank<R>`` keys of tasks that needed >1 attempt.
    retried_ranks: list[str] = field(default_factory=list)
    #: ``it<N>/rank<R>`` keys of tasks compressed serially in the parent.
    fallback_ranks: list[str] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """Whether any recovery action fired at all."""
        return bool(
            self.retries
            or self.deadline_misses
            or self.worker_deaths
            or self.worker_errors
            or self.speculative_launches
            or self.fallback_ranks
        )


class _Attempt:
    """One launch of a rank task."""

    __slots__ = ("handle", "started_at", "speculative", "abandoned", "finished")

    def __init__(self, handle, started_at: float, speculative: bool) -> None:
        self.handle = handle
        self.started_at = started_at
        self.speculative = speculative
        #: Past its deadline or suspected dead — no longer counts as
        #: active, but still harvested if it completes late.
        self.abandoned = False
        self.finished = False


class _Task:
    """Supervision state of one rank's compression task."""

    __slots__ = ("rank", "attempts", "launches", "resolved", "next_retry_at")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.attempts: list[_Attempt] = []
        self.launches = 0
        self.resolved = False
        self.next_retry_at: float | None = None


class WorkerSupervisor:
    """Deadline/retry/speculation state machine over pool rank tasks.

    Args:
        launch: ``launch(rank, attempt) -> handle``; dispatches launch
            number ``attempt`` (0-based) of the rank's task and returns
            an ``AsyncResult``-shaped handle.
        ingest: ``ingest(rank, result)``; called exactly once per rank
            with the winning attempt's (or the fallback's) result.
        fallback: ``fallback(rank) -> result``; synchronous last resort
            once the retry budget is exhausted.  Must be deterministic
            w.r.t. the pool path — the bytes-identical guarantee.
        retry: backoff shape *and* attempt cap for re-executions
            (``max_attempts`` counts every launch, the first included).
        deadline_s: per-attempt wall-clock deadline; None disables.
        speculative_frac: completed fraction of submitted tasks after
            which stragglers become eligible for one speculative
            duplicate; 0 disables speculation.
        worker_pids: optional ``() -> iterable of pids`` of the live
            pool workers, used to detect killed/replaced workers early.
        on_resolved: optional ``on_resolved(rank)``, called exactly once
            per task right after its result was ingested (the data
            plane releases the rank's shared-memory segment here).
        stats: accumulating :class:`SupervisorStats` (shared across
            dumps); a fresh one is created when omitted.
        log: optional campaign :class:`ResilienceLog` mirror.
        iteration: dump iteration, used for ``it<N>/rank<R>`` keys.
    """

    def __init__(
        self,
        *,
        launch: Callable[[int, int], object],
        ingest: Callable[[int, object], None],
        fallback: Callable[[int], object],
        retry: RetryPolicy = DEFAULT_RETRY_POLICY,
        deadline_s: float | None = None,
        speculative_frac: float = 0.0,
        worker_pids: Callable[[], object] | None = None,
        on_resolved: Callable[[int], None] | None = None,
        stats: SupervisorStats | None = None,
        log: ResilienceLog | None = None,
        tracer: NullTracer = NULL_TRACER,
        iteration: int = 0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        poll_interval_s: float = POLL_INTERVAL_S,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive or None, got {deadline_s!r}"
            )
        if not 0.0 <= speculative_frac <= 1.0:
            raise ValueError(
                f"speculative_frac must be in [0, 1], got {speculative_frac!r}"
            )
        self._launch = launch
        self._ingest = ingest
        self._fallback = fallback
        self._retry = retry
        self._deadline = deadline_s
        self._spec_frac = speculative_frac
        self._worker_pids = worker_pids
        self._on_resolved = on_resolved
        self.stats = stats if stats is not None else SupervisorStats()
        self._log = log
        self._tracer = tracer
        self._iteration = iteration
        self._clock = clock
        self._sleep = sleep
        self._poll_interval = poll_interval_s
        self._tasks: list[_Task] = []
        self._completions: list[float] = []
        self._last_pids: frozenset | None = None

    # -- public API ----------------------------------------------------
    def submit(self, rank: int) -> None:
        """Register a rank task and launch its first attempt."""
        task = _Task(rank)
        self._tasks.append(task)
        self.stats.tasks += 1
        self._launch_attempt(task, speculative=False)

    def poll(self) -> int:
        """One pass of the state machine; returns unresolved task count.

        Call this between submissions to stream finished ranks while the
        dispatcher is still generating later ones.
        """
        now = self._clock()
        self._check_workers(now)
        unresolved = 0
        for task in self._tasks:
            if not task.resolved:
                self._poll_task(task, now)
            if not task.resolved:
                unresolved += 1
        return unresolved

    def wait_all(self, timeout: float | None = None) -> None:
        """Poll until every submitted task resolved.

        Progress is guaranteed whenever a deadline is set: every task
        either completes, retries within its budget, or falls back — so
        ``timeout`` is a belt-and-braces bound, not the primary guard.
        """
        start = self._clock()
        while True:
            remaining = self.poll()
            if not remaining:
                return
            if (
                timeout is not None
                and self._clock() - start > timeout
            ):
                raise TimeoutError(
                    f"{remaining} rank task(s) unresolved after {timeout}s"
                )
            self._sleep(self._poll_interval)

    # -- state machine -------------------------------------------------
    def _poll_task(self, task: _Task, now: float) -> None:
        # 1. Harvest every finished attempt (abandoned ones included: a
        #    late success still wins if nothing else resolved the task).
        for attempt in task.attempts:
            if attempt.finished or not self._ready(attempt.handle):
                continue
            attempt.finished = True
            try:
                result = attempt.handle.get(0)
            except BaseException as exc:
                if not task.resolved:
                    self.stats.worker_errors += 1
                    if self._log is not None:
                        self._log.record_worker_error()
                    self._emit(
                        "supervisor.worker_error",
                        rank=task.rank,
                        error=repr(exc),
                    )
                continue
            if not task.resolved:
                self._resolve(task, result, attempt)
        if task.resolved:
            return

        # 2. Expire attempts past the per-attempt deadline.
        if self._deadline is not None:
            for attempt in task.attempts:
                if attempt.finished or attempt.abandoned:
                    continue
                if now - attempt.started_at > self._deadline:
                    attempt.abandoned = True
                    self.stats.deadline_misses += 1
                    if self._log is not None:
                        self._log.record_task_deadline_miss()
                    self._emit(
                        "supervisor.deadline_miss",
                        rank=task.rank,
                        deadline_s=self._deadline,
                    )

        active = [
            a
            for a in task.attempts
            if not a.finished and not a.abandoned
        ]
        if not active:
            # 3. Nothing live: retry within budget, else degrade.
            if task.launches >= self._retry.max_attempts:
                self._fallback_task(task)
                return
            if task.next_retry_at is None:
                task.next_retry_at = now + self._retry.backoff_s(
                    task.launches
                )
            if now >= task.next_retry_at:
                task.next_retry_at = None
                self._launch_attempt(task, speculative=False)
            return

        # 4. Speculation: duplicate a straggler once the bulk finished.
        if (
            self._spec_frac > 0.0
            and task.launches < self._retry.max_attempts
            and task.next_retry_at is None
            and not any(a.speculative for a in task.attempts)
            and self._speculation_ready()
        ):
            threshold = self._speculation_threshold()
            if threshold is not None and all(
                now - a.started_at > threshold for a in active
            ):
                self._launch_attempt(task, speculative=True)

    def _launch_attempt(self, task: _Task, *, speculative: bool) -> None:
        index = task.launches
        handle = self._launch(task.rank, index)
        task.launches += 1
        task.attempts.append(
            _Attempt(handle, self._clock(), speculative)
        )
        self.stats.attempts += 1
        if index == 0:
            return
        key = self._key(task.rank)
        if speculative:
            self.stats.speculative_launches += 1
            if self._log is not None:
                self._log.record_speculative_launch()
            self._emit("supervisor.speculative", rank=task.rank)
        else:
            self.stats.retries += 1
            if key not in self.stats.retried_ranks:
                self.stats.retried_ranks.append(key)
            if self._log is not None:
                self._log.record_task_retry(key)
            self._emit(
                "supervisor.retry", rank=task.rank, attempt=index
            )

    def _resolve(self, task: _Task, result, attempt: _Attempt | None) -> None:
        self._ingest(task.rank, result)
        task.resolved = True
        if attempt is not None:
            self._completions.append(
                self._clock() - attempt.started_at
            )
            if attempt.speculative:
                self.stats.speculative_wins += 1
                if self._log is not None:
                    self._log.record_speculative_win()
                self._emit(
                    "supervisor.speculative_win", rank=task.rank
                )
        if self._on_resolved is not None:
            self._on_resolved(task.rank)

    def _fallback_task(self, task: _Task) -> None:
        key = self._key(task.rank)
        self.stats.fallback_ranks.append(key)
        if self._log is not None:
            self._log.record_rank_fallback(key)
        self._emit(
            "runtime.fallback",
            kind="rank-serial",
            rank=task.rank,
            iteration=self._iteration,
        )
        self._resolve(task, self._fallback(task.rank), attempt=None)

    def _check_workers(self, now: float) -> None:
        """Detect killed/replaced pool workers and fast-path the retry.

        A SIGKILLed pool child is silently respawned and its in-flight
        task never resolves; waiting out the full deadline would stall
        the dump.  We cannot attribute tasks to workers, so every
        in-flight attempt becomes suspect: abandon them and retry
        immediately — duplicates are safe because results dedupe.
        """
        if self._worker_pids is None:
            return
        try:
            pids = frozenset(self._worker_pids())
        except Exception:  # pool mid-teardown: skip this round
            return
        previous, self._last_pids = self._last_pids, pids
        if previous is None:
            return
        dead = previous - pids
        if not dead:
            return
        self.stats.worker_deaths += len(dead)
        if self._log is not None:
            self._log.record_worker_death(len(dead))
        self._emit("supervisor.worker_death", dead=len(dead))
        for task in self._tasks:
            if task.resolved:
                continue
            suspect = False
            for attempt in task.attempts:
                if not attempt.finished and not attempt.abandoned:
                    attempt.abandoned = True
                    suspect = True
            if suspect:
                task.next_retry_at = now  # retry without backoff

    # -- speculation helpers -------------------------------------------
    def _speculation_ready(self) -> bool:
        done = len(self._completions)
        if done < 1:
            return False
        return done >= max(
            1, math.ceil(self._spec_frac * self.stats.tasks)
        )

    def _speculation_threshold(self) -> float | None:
        if not self._completions:
            return None
        return max(
            SPECULATIVE_FACTOR * statistics.median(self._completions),
            SPECULATIVE_MIN_S,
        )

    # -- misc ----------------------------------------------------------
    @staticmethod
    def _ready(handle) -> bool:
        try:
            return bool(handle.ready())
        except Exception:  # pragma: no cover - defensive
            return False

    def _key(self, rank: int) -> str:
        return f"it{self._iteration:04d}/rank{rank}"

    def _emit(self, name: str, **fields) -> None:
        if self._tracer.enabled:
            self._tracer.event(name, **fields)
            self._tracer.counter(name).inc()
