"""End-to-end framework: per-process runtime, multi-node campaigns, and
the three evaluated solutions (baseline / async-I/O-only / ours)."""

from .baselines import async_io_config, baseline_config, ours_config
from .calibration import FitQuality, fit_compression_model, fit_io_model
from .config import FrameworkConfig
from .orchestrator import CampaignResult, CampaignRunner, IterationRecord
from .report import (
    Comparison,
    campaign_result_to_dict,
    campaign_summary_table,
    compare,
    format_table,
    iteration_table,
    write_campaign_report,
)
from .runtime import BlockPlan, DumpOutcome, DumpPlan, ProcessRuntime
from .snapshot import SnapshotStats, load_snapshot, save_snapshot
from .sweep import SweepPoint, SweepResult, sweep_campaigns
from .textplot import line_chart

__all__ = [
    "FrameworkConfig",
    "ProcessRuntime",
    "BlockPlan",
    "DumpPlan",
    "DumpOutcome",
    "CampaignRunner",
    "CampaignResult",
    "IterationRecord",
    "baseline_config",
    "async_io_config",
    "ours_config",
    "Comparison",
    "compare",
    "format_table",
    "campaign_summary_table",
    "iteration_table",
    "campaign_result_to_dict",
    "write_campaign_report",
    "save_snapshot",
    "load_snapshot",
    "SnapshotStats",
    "line_chart",
    "fit_io_model",
    "fit_compression_model",
    "FitQuality",
    "sweep_campaigns",
    "SweepResult",
    "SweepPoint",
]
