"""Configurations for the three solutions the evaluation compares.

* **baseline** — no compression, fully synchronous writes: the dump blocks
  both threads and every byte is written after the computation finishes.
* **previous** (async-I/O-only, e.g. the HDF5 async VOL line of work) —
  no compression, writes on the background thread overlapped with
  computation, but whole-field writes in generation order with no task
  scheduling, no fine-grained blocking, no balancing.
* **ours** — the full proposed framework (paper defaults).
"""

from __future__ import annotations

import dataclasses

from .config import FrameworkConfig

__all__ = ["baseline_config", "async_io_config", "ours_config"]


def baseline_config(**overrides) -> FrameworkConfig:
    """No compression, no asynchronous write (the paper's baseline)."""
    base = FrameworkConfig(
        scheduler="GenerationListSchedule",
        use_compression=False,
        overlap_with_computation=False,
        async_background=False,
        use_balancing=False,
        use_shared_tree=False,
        buffer_bytes=0,
    )
    return dataclasses.replace(base, **overrides)


def async_io_config(**overrides) -> FrameworkConfig:
    """Asynchronous I/O without compression (the 'previous' solution)."""
    base = FrameworkConfig(
        scheduler="GenerationListSchedule",
        use_compression=False,
        overlap_with_computation=True,
        async_background=True,
        use_balancing=False,
        use_shared_tree=False,
        buffer_bytes=0,
    )
    return dataclasses.replace(base, **overrides)


def ours_config(**overrides) -> FrameworkConfig:
    """The full proposed solution (paper defaults)."""
    return dataclasses.replace(FrameworkConfig(), **overrides)
