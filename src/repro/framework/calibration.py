"""Fit the duration models to a new platform from measured samples.

The campaign simulator's fidelity rests on two calibrated models —
``CompressionThroughputModel`` (throughput + per-block setup + tree
build) and ``IoThroughputModel`` (latency + bandwidth).  Porting the
reproduction to a different machine class means re-fitting those
constants; this module does it from ``(size, seconds)`` samples with
ordinary least squares, the same shape of offline profiling Section 4.1
prescribes.

Both model forms are affine in the sample size
(``t = intercept + size / bandwidth``), so the fit is exact linear
regression; the compression fit additionally separates the shared-tree
and native-tree intercepts when given both sample sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compression.ratio_model import CompressionThroughputModel
from ..io.throughput import IoThroughputModel

__all__ = [
    "FitQuality",
    "fit_io_model",
    "fit_compression_model",
]


@dataclass(frozen=True)
class FitQuality:
    """Residual summary of a least-squares model fit."""

    r_squared: float
    max_relative_error: float


def _affine_fit(samples: list[tuple[int, float]]) -> tuple[float, float, FitQuality]:
    """Least-squares ``t = a + b * size``; returns (a, b, quality)."""
    if len(samples) < 2:
        raise ValueError("need at least two samples to fit")
    sizes = np.array([s for s, _ in samples], dtype=np.float64)
    times = np.array([t for _, t in samples], dtype=np.float64)
    if np.any(times <= 0):
        raise ValueError("sample durations must be positive")
    design = np.column_stack([np.ones_like(sizes), sizes])
    (a, b), *_ = np.linalg.lstsq(design, times, rcond=None)
    predicted = a + b * sizes
    ss_res = float(np.sum((times - predicted) ** 2))
    ss_tot = float(np.sum((times - times.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    max_rel = float(np.max(np.abs(predicted - times) / times))
    return float(a), float(b), FitQuality(r_squared, max_rel)


def fit_io_model(
    samples: list[tuple[int, float]],
    processes_per_node: int = 4,
) -> tuple[IoThroughputModel, FitQuality]:
    """Fit latency and bandwidth from per-process write samples.

    Args:
        samples: ``(nbytes, seconds)`` measurements of single writes by
            one process while its node peers are also writing (so the
            per-process share is what gets fitted).
        processes_per_node: node occupancy during measurement; the node
            bandwidth is back-computed so campaign runners can re-share
            it for other occupancies.
    """
    latency, per_byte, quality = _affine_fit(samples)
    if per_byte <= 0:
        raise ValueError("samples imply non-positive bandwidth")
    per_process_bw = 1.0 / per_byte
    model = IoThroughputModel(
        node_bandwidth_bytes_per_s=per_process_bw * processes_per_node,
        processes_per_node=processes_per_node,
        write_latency_s=max(latency, 0.0),
    )
    return model, quality


def fit_compression_model(
    shared_tree_samples: list[tuple[int, float]],
    native_tree_samples: list[tuple[int, float]] | None = None,
) -> tuple[CompressionThroughputModel, FitQuality]:
    """Fit throughput, setup cost, and tree-build cost.

    ``shared_tree_samples`` are compressions using a shared Huffman tree
    (no per-block build); ``native_tree_samples``, when given, pin down
    the constant tree-build premium as the difference of intercepts.
    """
    setup, per_byte, quality = _affine_fit(shared_tree_samples)
    if per_byte <= 0:
        raise ValueError("samples imply non-positive throughput")
    tree_build = CompressionThroughputModel().tree_build_s
    if native_tree_samples is not None:
        native_setup, _, _ = _affine_fit(native_tree_samples)
        tree_build = max(native_setup - setup, 0.0)
    model = CompressionThroughputModel(
        throughput_bytes_per_s=1.0 / per_byte,
        setup_s=max(setup, 0.0),
        tree_build_s=tree_build,
    )
    return model, quality
