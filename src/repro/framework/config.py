"""Configuration for the in situ compression + I/O framework."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compression.ratio_model import CompressionThroughputModel
from ..io.throughput import IoThroughputModel

__all__ = ["FrameworkConfig"]


@dataclass(frozen=True)
class FrameworkConfig:
    """Every knob of the proposed solution, in paper defaults.

    Attributes:
        scheduler: one of the Section 3.3 algorithm names; the paper
            adopts ``"ExtJohnson+BF"`` after Table 1.
        block_bytes: fine-grained compression block size (Section 4.1;
            8-16 MB is the sweet spot, Figure 4).
        buffer_bytes: compressed data buffer capacity (Section 4.2;
            Figure 5 settles on 20 MB).  ``0`` disables buffering.
        use_shared_tree: reuse one Huffman tree across blocks/iterations
            (Section 4.3).
        shared_tree_rebuild_period: rebuild the shared tree every this
            many iterations (1 = from the previous iteration, the paper's
            recommendation).
        use_balancing: intra-node I/O workload balancing (Section 3.4).
        balancing_threshold: rebalance while max > threshold * min.
        use_compression: disable to model the no-compression baselines.
        overlap_with_computation: disable to model the prior solutions
            that only overlap compression with I/O, not with computation.
        async_background: disable to model the fully synchronous baseline
            (writes strictly after computation); when False the background
            thread is also treated as busy for the whole iteration.
        num_subfiles: split the logical shared file across this many
            subfiles (Section 6 future work); relieves shared-file
            contention at scale.
        oracle_scheduling: schedule with the iteration's *actual*
            intervals and ratios instead of history-based predictions —
            the Section 5.2 evaluation mode used to isolate algorithm
            quality from prediction error.
        dump_period: dump data every ``l`` iterations (Section 3.1).
        journal_fsync: fsync the write-ahead campaign journal after
            every record (crash-consistent, the default).  Disable only
            for throughput experiments where losing the journal tail on
            power failure is acceptable.
        overrun_deadline_frac: under fault injection, a dump whose
            replay exceeds ``T_n * (1 + frac)`` triggers the graceful
            degradation path (trailing writes deferred to the next
            compute gap).
        compression_model: duration model for compression tasks.
        io_model: duration model for write operations.
    """

    scheduler: str = "ExtJohnson+BF"
    block_bytes: int = 8 * 2**20
    buffer_bytes: int = 20 * 2**20
    use_shared_tree: bool = True
    shared_tree_rebuild_period: int = 1
    use_balancing: bool = True
    balancing_threshold: float = 2.0
    use_compression: bool = True
    overlap_with_computation: bool = True
    async_background: bool = True
    num_subfiles: int = 1
    oracle_scheduling: bool = False
    dump_period: int = 1
    overrun_deadline_frac: float = 0.5
    journal_fsync: bool = True
    compression_model: CompressionThroughputModel = field(
        default_factory=CompressionThroughputModel
    )
    io_model: IoThroughputModel = field(default_factory=IoThroughputModel)

    def __post_init__(self) -> None:
        """Validate every field on construction, naming the bad one.

        A bad knob fails here — at config-build time, with
        ``FrameworkConfig.<field>`` in the message — instead of deep in
        the runtime ten stack frames into a campaign.
        """
        def bad(field_name: str, requirement: str) -> ValueError:
            value = getattr(self, field_name)
            return ValueError(
                f"FrameworkConfig.{field_name} {requirement}, "
                f"got {value!r}"
            )

        if not isinstance(self.scheduler, str) or not self.scheduler:
            raise bad("scheduler", "must be a non-empty algorithm name")
        from ..core.registry import REGISTRY

        if self.scheduler not in REGISTRY:
            raise ValueError(
                f"FrameworkConfig.scheduler: unknown algorithm "
                f"{self.scheduler!r} (available: "
                f"{', '.join(sorted(REGISTRY))})"
            )
        if self.block_bytes <= 0:
            raise bad("block_bytes", "must be positive")
        if self.buffer_bytes < 0:
            raise bad("buffer_bytes", "must be non-negative")
        if self.shared_tree_rebuild_period < 1:
            raise bad("shared_tree_rebuild_period", "must be >= 1")
        if self.balancing_threshold <= 1.0:
            raise bad("balancing_threshold", "must exceed 1.0")
        if self.dump_period < 1:
            raise bad("dump_period", "must be >= 1")
        if self.num_subfiles < 1:
            raise bad("num_subfiles", "must be >= 1")
        if self.overrun_deadline_frac < 0:
            raise bad("overrun_deadline_frac", "must be non-negative")
        if not isinstance(self.journal_fsync, bool):
            raise bad("journal_fsync", "must be a bool")
