"""Campaign orchestration: many processes, many nodes, many iterations.

Drives one simulated application run end to end: every iteration all
ranks observe the actual obstacle layout; on dumping iterations each rank
plans its blocks, nodes run the intra-node I/O balancer over the predicted
I/O tasks (Section 3.4), every rank schedules and replays its dump, and
the iteration's cost is the *slowest rank's* cost (independent writes make
the stragglers decisive, Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..apps.base import ApplicationModel
from ..core.balancing import IoTaskRef, balance_io_workloads
from ..io.filesystem import SimulatedFileSystem
from ..resilience.faults import FaultInjector
from ..resilience.report import ResilienceReport
from ..resilience.retry import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    WriteFailedError,
)
from ..simulator.engine import Simulation
from ..simulator.node import ClusterSpec
from ..simulator.noise import FaultAwareNoiseModel, NoiseModel
from ..telemetry import NULL_TRACER, NullTracer
from .config import FrameworkConfig
from .runtime import DumpOutcome, DumpPlan, ProcessRuntime

__all__ = ["IterationRecord", "CampaignResult", "CampaignRunner"]


@dataclass(frozen=True)
class IterationRecord:
    """One iteration's aggregate outcome across all ranks."""

    iteration: int
    dumped: bool
    computation_s: float
    overall_s: float
    per_rank_overhead: tuple[float, ...] = ()

    @property
    def overhead_s(self) -> float:
        return max(0.0, self.overall_s - self.computation_s)

    @property
    def relative_overhead(self) -> float:
        if self.computation_s <= 0:
            return 0.0
        return self.overhead_s / self.computation_s


@dataclass
class CampaignResult:
    """A full run's per-iteration records plus summary statistics.

    ``metrics`` is the aggregated per-iteration/per-rank telemetry —
    iteration and dump counts, mean/worst overheads, and one
    ``overhead.rank<N>.mean`` entry per rank — filled by
    :meth:`CampaignRunner.run` whether or not a tracer records.
    """

    solution: str
    records: list[IterationRecord] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)
    resilience: ResilienceReport | None = None

    def dump_records(self) -> list[IterationRecord]:
        return [r for r in self.records if r.dumped]

    @property
    def mean_relative_overhead(self) -> float:
        dumps = self.dump_records()
        if not dumps:
            return 0.0
        return float(np.mean([r.relative_overhead for r in dumps]))

    @property
    def total_time(self) -> float:
        return sum(r.overall_s for r in self.records)

    @property
    def total_computation(self) -> float:
        return sum(r.computation_s for r in self.records)

    @property
    def total_overhead(self) -> float:
        return sum(r.overhead_s for r in self.records)


class CampaignRunner:
    """Run one (application, cluster, solution) campaign."""

    def __init__(
        self,
        app: ApplicationModel,
        cluster: ClusterSpec,
        config: FrameworkConfig,
        solution: str = "ours",
        seed: int = 0,
        noise: NoiseModel | None = None,
        tracer: NullTracer = NULL_TRACER,
        injector: FaultInjector | None = None,
        retry: RetryPolicy = DEFAULT_RETRY_POLICY,
    ) -> None:
        self.app = app
        self.cluster = cluster
        self.config = config
        self.solution = solution
        self.tracer = tracer
        self.injector = injector
        io_model = (
            config.io_model.with_processes(cluster.processes_per_node)
            .with_nodes(cluster.num_nodes)
            .with_subfiles(config.num_subfiles)
        )
        import dataclasses

        self.config = dataclasses.replace(config, io_model=io_model)

        def rank_noise(rank: int) -> NoiseModel:
            if noise is not None:
                return noise
            rank_seed = seed * 100_003 + rank
            if injector is not None:
                return FaultAwareNoiseModel(
                    injector, rank, seed=rank_seed
                )
            return NoiseModel(seed=rank_seed)

        self.runtimes = [
            ProcessRuntime(
                rank,
                app,
                self.config,
                node_size=cluster.processes_per_node,
                noise=rank_noise(rank),
                tracer=tracer,
                injector=injector,
            )
            for rank in range(cluster.total_processes)
        ]
        self.simulation = Simulation()
        self.filesystem = SimulatedFileSystem(
            self.config.io_model,
            tracer=tracer,
            injector=injector,
            retry=retry,
        )
        self.last_outcomes: list[DumpOutcome] | None = None
        #: (rank, nbytes) payloads pushed to the next compute gap by the
        #: deadline guard or by writes that exhausted their retries.
        self._deferred: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    def run(self, num_iterations: int, journal=None) -> CampaignResult:
        """Simulate ``num_iterations``; dumps start at iteration 1 so the
        first iteration seeds the history predictor.

        With a :class:`~repro.durability.CampaignJournal`, every
        iteration is bracketed by a write-ahead *plan* record and a
        post-iteration *commit* record.  The campaign is a pure function
        of its seeds, so a resumed journal re-executes the committed
        prefix and the journal cross-checks each regenerated record
        byte-for-byte against what the crashed run logged.
        """
        result = self.start_result()
        for iteration in range(num_iterations):
            if journal is not None:
                journal.record_plan(
                    iteration, self.journal_plan_data(iteration)
                )
            record = self.run_one(iteration)
            result.records.append(record)
            if journal is not None:
                journal.record_commit(
                    iteration,
                    self.journal_commit_data(record),
                )
        self.finish(result)
        if journal is not None:
            journal.record_end(
                self.journal_end_data(result, num_iterations)
            )
        return result

    # ------------------------------------------------------------------
    # engine hooks: the execution engines (repro.engines) drive the same
    # control plane one iteration at a time through these, so journal
    # records and results stay byte-identical with a plain run().
    # ------------------------------------------------------------------
    def start_result(self) -> CampaignResult:
        """A fresh result for this runner's solution."""
        return CampaignResult(solution=self.solution)

    def run_one(self, iteration: int) -> IterationRecord:
        """Execute one iteration (with its telemetry span)."""
        t0 = self.simulation.now
        record = self._run_iteration(iteration)
        self.tracer.span(
            "iteration",
            t0=t0,
            t1=self.simulation.now,
            iteration=iteration,
            dumped=record.dumped,
            overhead_s=record.overhead_s,
            solution=self.solution,
        )
        return record

    def finish(self, result: CampaignResult) -> CampaignResult:
        """Aggregate metrics after the last iteration."""
        self._aggregate_metrics(result)
        return result

    def journal_end_data(
        self, result: CampaignResult, num_iterations: int
    ) -> dict:
        """The campaign-complete journal payload."""
        return {
            "iterations": int(num_iterations),
            "total_time_s": float(result.total_time),
            "total_overhead_s": float(result.total_overhead),
        }

    def journal_plan_data(self, iteration: int) -> dict:
        """The write-ahead view of one iteration, before it executes."""
        is_dump = iteration >= 1 and (
            (iteration - 1) % self.config.dump_period == 0
        )
        return {
            "solution": self.solution,
            "dump": bool(is_dump),
            "deferred": [
                [int(rank), int(nbytes)] for rank, nbytes in self._deferred
            ],
        }

    def journal_commit_data(self, record: IterationRecord) -> dict:
        """What actually happened, as plain JSON-safe Python values."""
        data: dict = {
            "record": {
                "dumped": bool(record.dumped),
                "computation_s": float(record.computation_s),
                "overall_s": float(record.overall_s),
                "per_rank_overhead": [
                    float(v) for v in record.per_rank_overhead
                ],
            },
            "state": {
                "sim_now": float(self.simulation.now),
                "deferred": [
                    [int(rank), int(nbytes)]
                    for rank, nbytes in self._deferred
                ],
            },
        }
        if record.dumped and self.last_outcomes is not None:
            data["ranks"] = [
                {
                    "planned_bytes": int(
                        sum(b.predicted_bytes for b in o.plan.blocks)
                    ),
                    "actual_bytes": int(sum(o.actual_sizes)),
                    "jobs": int(len(o.plan.blocks)),
                }
                for o in self.last_outcomes
            ]
        return data

    def _aggregate_metrics(self, result: CampaignResult) -> None:
        """Fill ``result.metrics`` and mirror the values into gauges."""
        dumps = result.dump_records()
        per_rank = np.array(
            [r.per_rank_overhead for r in dumps], dtype=np.float64
        )
        metrics = {
            "iterations": float(len(result.records)),
            "dumps": float(len(dumps)),
            "total_time_s": float(result.total_time),
            "total_overhead_s": float(result.total_overhead),
            "mean_relative_overhead": float(
                result.mean_relative_overhead
            ),
            "worst_iteration_overhead": float(
                max((r.relative_overhead for r in dumps), default=0.0)
            ),
        }
        if per_rank.size:
            means = per_rank.mean(axis=0)
            metrics["worst_rank_overhead"] = float(per_rank.max())
            for rank, mean in enumerate(means):
                metrics[f"overhead.rank{rank}.mean"] = float(mean)
        if self.injector is not None:
            self.injector.log.pending_deferred_bytes = sum(
                nbytes for _, nbytes in self._deferred
            )
            result.resilience = self.injector.log.report()
            metrics.update(result.resilience.as_metrics())
        result.metrics = metrics
        if self.tracer.enabled:
            for name, value in metrics.items():
                self.tracer.gauge(f"campaign.{name}").set(value)

    # ------------------------------------------------------------------
    def _run_iteration(self, iteration: int) -> IterationRecord:
        profile = self.app.iteration_profile(iteration)
        is_dump = iteration >= 1 and (
            (iteration - 1) % self.config.dump_period == 0
        )
        # Payloads deferred by earlier iterations catch up in this
        # iteration's compute gap: they ride the background thread and
        # only cost overhead if they outlast everything else.
        flush_s = self._flush_deferred()
        if not is_dump:
            for rt in self.runtimes:
                rt.observe_iteration(profile)
            overall = max(profile.length, flush_s)
            finish = self.simulation.now + overall
            self.simulation.at(finish, lambda: None)
            self.simulation.run(until=finish)
            return IterationRecord(
                iteration=iteration,
                dumped=False,
                computation_s=profile.length,
                overall_s=overall,
            )

        plans = [rt.plan_dump(iteration) for rt in self.runtimes]
        if self.config.use_balancing:
            self._balance_node_io(plans)
        outcomes: list[DumpOutcome] = []
        for rt, plan in zip(self.runtimes, plans):
            rt.build_jobs(plan)
            moved_actual = self._moved_in_actuals(plan, iteration, plans)
            outcomes.append(
                rt.execute_dump(plan, iteration, moved_actual)
            )
        self.last_outcomes = outcomes
        for rank, outcome in enumerate(outcomes):
            deferred_now = {idx for idx, _ in outcome.deferred}
            for block, size in zip(
                outcome.plan.blocks, outcome.actual_sizes
            ):
                if block.job_index in outcome.plan.moved_out:
                    continue
                if block.job_index in deferred_now:
                    continue  # deadline guard pushed it to the next gap
                self._write_or_defer(rank, size)
            for _, nbytes in outcome.deferred:
                self._deferred.append((rank, nbytes))

        if self.injector is not None and any(
            o.overrun for o in outcomes
        ):
            self.injector.log.overrun_iterations += 1

        computation = max(o.execution.computation_length for o in outcomes)
        overall = max(
            max(o.execution.overall_time for o in outcomes), flush_s
        )
        finish = self.simulation.now + overall
        self.simulation.at(finish, lambda: None)
        self.simulation.run(until=finish)
        return IterationRecord(
            iteration=iteration,
            dumped=True,
            computation_s=computation,
            overall_s=overall,
            per_rank_overhead=tuple(
                o.execution.relative_overhead for o in outcomes
            ),
        )

    # ------------------------------------------------------------------
    # graceful degradation plumbing (fault campaigns only)
    # ------------------------------------------------------------------
    def _write_or_defer(self, rank: int, nbytes: int) -> float:
        """One filesystem write; exhausted retries defer to the next gap."""
        try:
            return self.filesystem.write(rank, nbytes)
        except WriteFailedError:
            self._deferred.append((rank, nbytes))
            assert self.injector is not None  # faults imply an injector
            self.injector.log.record_fallback(
                "defer-write", nbytes=nbytes
            )
            if self.tracer.enabled:
                self.tracer.event(
                    "runtime.fallback",
                    kind="defer-write",
                    rank=rank,
                    nbytes=nbytes,
                )
                self.tracer.counter("runtime.fallback").inc()
            return 0.0

    def _flush_deferred(self) -> float:
        """Drain deferred payloads during a compute gap.

        Returns the slowest rank's flush time (writes of different ranks
        proceed independently; within a rank they are sequential).  A
        payload that fails again stays queued for the following gap.
        """
        if not self._deferred:
            return 0.0
        pending, self._deferred = self._deferred, []
        per_rank: dict[int, float] = {}
        for rank, nbytes in pending:
            try:
                duration = self.filesystem.write(rank, nbytes)
            except WriteFailedError:
                self._deferred.append((rank, nbytes))
                continue
            per_rank[rank] = per_rank.get(rank, 0.0) + duration
            if self.tracer.enabled:
                self.tracer.event(
                    "runtime.deferred_flush", rank=rank, nbytes=nbytes
                )
        if self.injector is not None:
            self.injector.log.pending_deferred_bytes = sum(
                nbytes for _, nbytes in self._deferred
            )
        return max(per_rank.values(), default=0.0)

    # ------------------------------------------------------------------
    def _balance_node_io(self, plans: list[DumpPlan]) -> None:
        """Run the Section 3.4 balancer node by node."""
        for node in range(self.cluster.num_nodes):
            ranks = self.cluster.ranks_of_node(node)
            refs = [plans[r].io_task_refs(r) for r in ranks]
            balanced = balance_io_workloads(
                refs, threshold=self.config.balancing_threshold
            )
            for local, rank in enumerate(ranks):
                assigned = balanced.assignments[local]
                kept = [t for t in assigned if t.owner == rank]
                moved_in = [t for t in assigned if t.owner != rank]
                self.runtimes[rank].apply_balancing(
                    plans[rank], kept, moved_in
                )

    def _moved_in_actuals(
        self,
        plan: DumpPlan,
        iteration: int,
        plans: list[DumpPlan],
    ) -> list[float] | None:
        """Actual I/O durations of moved-in tasks, from donor data."""
        if not plan.moved_in:
            return None
        actuals: list[float] = []
        for ref in plan.moved_in:
            donor_rt = self.runtimes[ref.owner]
            donor_plan = plans[ref.owner]
            block = donor_plan.blocks[ref.job_index]
            ratios = self.app.block_ratios(
                ref.owner,
                iteration,
                donor_rt.blocks_per_field(),
                self.cluster.processes_per_node,
            )
            ratio = float(ratios[block.field_name][block.block_index])
            size = max(1, int(block.raw_bytes / ratio))
            mean_pred = float(
                np.mean([b.predicted_bytes for b in donor_plan.blocks])
            )
            actuals.append(donor_rt._io_task_time(size, mean_pred))
        return actuals
