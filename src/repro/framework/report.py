"""Result aggregation and text reports for solution comparisons."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from ..durability.atomic import DurableFile, find_stale_temps
from .orchestrator import CampaignResult

__all__ = [
    "Comparison",
    "compare",
    "format_table",
    "campaign_summary_table",
    "iteration_table",
    "campaign_result_to_dict",
    "write_campaign_report",
]


@dataclass(frozen=True)
class Comparison:
    """Ours vs. the two reference solutions, paper-style."""

    baseline: CampaignResult
    previous: CampaignResult
    ours: CampaignResult

    @property
    def improvement_over_baseline(self) -> float:
        """I/O-overhead reduction factor vs the synchronous baseline."""
        return _factor(
            self.baseline.mean_relative_overhead,
            self.ours.mean_relative_overhead,
        )

    @property
    def improvement_over_previous(self) -> float:
        """I/O-overhead reduction factor vs async-I/O-only."""
        return _factor(
            self.previous.mean_relative_overhead,
            self.ours.mean_relative_overhead,
        )


def _factor(reference: float, ours: float) -> float:
    if ours <= 0:
        return float("inf") if reference > 0 else 1.0
    return reference / ours


def compare(
    baseline: CampaignResult,
    previous: CampaignResult,
    ours: CampaignResult,
) -> Comparison:
    """Bundle three campaigns into the paper's standard comparison."""
    return Comparison(baseline=baseline, previous=previous, ours=ours)


def campaign_summary_table(results: dict[str, CampaignResult]) -> str:
    """One row per solution: overhead, totals — the Figure 9 style table."""
    rows = [
        (
            name,
            f"{r.mean_relative_overhead * 100:.1f}%",
            f"{r.total_overhead:.2f}s",
            f"{r.total_time:.2f}s",
        )
        for name, r in results.items()
    ]
    return format_table(
        rows,
        headers=("solution", "I/O overhead", "total overhead", "total time"),
    )


def iteration_table(result: CampaignResult) -> str:
    """One row per iteration of a campaign (dump iterations flagged)."""
    rows = [
        (
            str(r.iteration),
            "dump" if r.dumped else "-",
            f"{r.computation_s:.3f}s",
            f"{r.overall_s:.3f}s",
            f"{r.relative_overhead * 100:.1f}%",
        )
        for r in result.records
    ]
    return format_table(
        rows,
        headers=("iter", "kind", "compute", "overall", "overhead"),
    )


def campaign_result_to_dict(result: CampaignResult) -> dict:
    """A JSON-safe, fully deterministic view of one campaign result.

    Every value derives from the simulation (no wall-clock, no paths),
    so a resumed run's report compares byte-for-byte equal to the
    uninterrupted run's — the chaos harness's recovery gate.
    """
    doc: dict = {
        "solution": result.solution,
        "records": [
            {
                "iteration": int(r.iteration),
                "dumped": bool(r.dumped),
                "computation_s": float(r.computation_s),
                "overall_s": float(r.overall_s),
                "per_rank_overhead": [
                    float(v) for v in r.per_rank_overhead
                ],
            }
            for r in result.records
        ],
        "metrics": {
            key: float(value)
            for key, value in sorted(result.metrics.items())
        },
    }
    if result.resilience is not None:
        doc["resilience"] = {
            key: float(value)
            for key, value in sorted(
                result.resilience.as_metrics().items()
            )
        }
    return doc


def write_campaign_report(
    path,
    result: CampaignResult,
    *,
    fsync: bool = True,
    before_commit=None,
) -> dict:
    """Atomically write a campaign report JSON; returns the document.

    Stale ``*.tmp.*`` leftovers for the same report (a crash between
    temp-write and rename) are cleaned up first, so a recovered run
    leaves the directory pristine.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    base = os.path.basename(path)
    if os.path.isdir(directory):
        for stale in find_stale_temps(directory):
            if os.path.basename(stale).startswith(base + ".tmp."):
                os.unlink(stale)
    doc = campaign_result_to_dict(result)
    with DurableFile(
        path, "w", fsync=fsync, before_commit=before_commit
    ) as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def format_table(
    rows: list[tuple[str, ...]], headers: tuple[str, ...]
) -> str:
    """Render rows as a plain text table (benchmark harness output)."""
    table = [headers, *rows]
    widths = [
        max(len(str(row[col])) for row in table)
        for col in range(len(headers))
    ]
    lines = []
    for i, row in enumerate(table):
        line = "  ".join(
            str(cell).ljust(width) for cell, width in zip(row, widths)
        )
        lines.append(line.rstrip())
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
