"""Result aggregation and text reports for solution comparisons."""

from __future__ import annotations

from dataclasses import dataclass

from .orchestrator import CampaignResult

__all__ = [
    "Comparison",
    "compare",
    "format_table",
    "campaign_summary_table",
    "iteration_table",
]


@dataclass(frozen=True)
class Comparison:
    """Ours vs. the two reference solutions, paper-style."""

    baseline: CampaignResult
    previous: CampaignResult
    ours: CampaignResult

    @property
    def improvement_over_baseline(self) -> float:
        """I/O-overhead reduction factor vs the synchronous baseline."""
        return _factor(
            self.baseline.mean_relative_overhead,
            self.ours.mean_relative_overhead,
        )

    @property
    def improvement_over_previous(self) -> float:
        """I/O-overhead reduction factor vs async-I/O-only."""
        return _factor(
            self.previous.mean_relative_overhead,
            self.ours.mean_relative_overhead,
        )


def _factor(reference: float, ours: float) -> float:
    if ours <= 0:
        return float("inf") if reference > 0 else 1.0
    return reference / ours


def compare(
    baseline: CampaignResult,
    previous: CampaignResult,
    ours: CampaignResult,
) -> Comparison:
    """Bundle three campaigns into the paper's standard comparison."""
    return Comparison(baseline=baseline, previous=previous, ours=ours)


def campaign_summary_table(results: dict[str, CampaignResult]) -> str:
    """One row per solution: overhead, totals — the Figure 9 style table."""
    rows = [
        (
            name,
            f"{r.mean_relative_overhead * 100:.1f}%",
            f"{r.total_overhead:.2f}s",
            f"{r.total_time:.2f}s",
        )
        for name, r in results.items()
    ]
    return format_table(
        rows,
        headers=("solution", "I/O overhead", "total overhead", "total time"),
    )


def iteration_table(result: CampaignResult) -> str:
    """One row per iteration of a campaign (dump iterations flagged)."""
    rows = [
        (
            str(r.iteration),
            "dump" if r.dumped else "-",
            f"{r.computation_s:.3f}s",
            f"{r.overall_s:.3f}s",
            f"{r.relative_overhead * 100:.1f}%",
        )
        for r in result.records
    ]
    return format_table(
        rows,
        headers=("iter", "kind", "compute", "overall", "overhead"),
    )


def format_table(
    rows: list[tuple[str, ...]], headers: tuple[str, ...]
) -> str:
    """Render rows as a plain text table (benchmark harness output)."""
    table = [headers, *rows]
    widths = [
        max(len(str(row[col])) for row in table)
        for col in range(len(headers))
    ]
    lines = []
    for i, row in enumerate(table):
        line = "  ".join(
            str(cell).ljust(width) for cell, width in zip(row, widths)
        )
        lines.append(line.rstrip())
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
