"""Per-process runtime: plan, schedule, and execute one dump.

This is the modelled-execution pipeline of the proposed framework
(Section 4.4): for each dumping iteration a process

1. slices its fields into fine-grained blocks and predicts, per block,
   the compressed size (previous iteration's ratio, Section 3.4), the
   compression time (throughput model + shared-tree flag), and the I/O
   time (write model with buffer amortization);
2. builds the scheduling instance from the *previous* iteration's
   recorded obstacle layout (Section 3.1's similarity assumption);
3. runs the configured scheduling algorithm;
4. replays the plan against the iteration's *actual* obstacle layout,
   ratios and durations (Section 5.4.1's sequential-conflict rule) and
   records history for the next iteration.

Durations come from calibrated models rather than from really moving
bytes, which keeps campaign simulation fast and machine-independent; the
compression pipeline itself is exercised for real by the Figures 4-6
experiments and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..apps.base import ApplicationModel, IterationProfile
from ..core.balancing import IoTaskRef
from ..core.model import Interval, Job, ProblemInstance, Schedule
from ..core.executor import trace_schedule
from ..core.registry import get_algorithm
from ..resilience.faults import FaultInjector
from ..simulator.noise import ActualDurations, NoiseModel
from ..simulator.replay import ExecutionResult, execute_schedule
from ..telemetry import NULL_TRACER, NullTracer
from .config import FrameworkConfig

__all__ = ["BlockPlan", "DumpPlan", "DumpOutcome", "ProcessRuntime"]


@dataclass(frozen=True)
class BlockPlan:
    """One fine-grained block's planning data."""

    job_index: int
    field_name: str
    block_index: int
    raw_bytes: int
    predicted_ratio: float
    predicted_bytes: int
    predicted_compression_s: float
    predicted_io_s: float


@dataclass
class DumpPlan:
    """Everything a process plans before a dump executes."""

    iteration: int
    blocks: list[BlockPlan]
    jobs: list[Job] = field(default_factory=list)
    moved_in: list[IoTaskRef] = field(default_factory=list)
    moved_out: set[int] = field(default_factory=set)

    @property
    def total_predicted_io(self) -> float:
        return sum(b.predicted_io_s for b in self.blocks)

    def io_task_refs(self, rank: int) -> list[IoTaskRef]:
        """This rank's I/O tasks as balancer inputs."""
        return [
            IoTaskRef(
                owner=rank,
                job_index=b.job_index,
                duration=b.predicted_io_s,
            )
            for b in self.blocks
        ]


@dataclass
class DumpOutcome:
    """The result of executing one dump on one process.

    Under fault injection, ``degraded_blocks`` counts blocks whose
    compression failed and were written raw, ``deferred`` lists
    ``(job_index, nbytes)`` of blocks whose I/O the deadline guard
    pushed to the next compute gap, and ``overrun`` marks a dump whose
    first replay blew past the overrun deadline.
    """

    plan: DumpPlan
    schedule: Schedule
    execution: ExecutionResult
    actual_ratios: dict[str, np.ndarray]
    actual_sizes: list[int]
    overflow_bytes: int = 0
    degraded_blocks: int = 0
    deferred: tuple[tuple[int, int], ...] = ()
    overrun: bool = False

    @property
    def relative_overhead(self) -> float:
        return self.execution.relative_overhead


class ProcessRuntime:
    """State and pipeline of one process (one rank, one GPU)."""

    def __init__(
        self,
        rank: int,
        app: ApplicationModel,
        config: FrameworkConfig,
        node_size: int,
        noise: NoiseModel | None = None,
        tracer: NullTracer = NULL_TRACER,
        injector: FaultInjector | None = None,
    ) -> None:
        self.rank = rank
        self.app = app
        self.config = config
        self.node_size = node_size
        self.noise = noise if noise is not None else NoiseModel(seed=rank)
        self.injector = injector
        self.tracer = (
            tracer.bind(rank=rank) if tracer.enabled else tracer
        )
        self._previous_profile: IterationProfile | None = None
        self._previous_ratios: dict[str, np.ndarray] | None = None
        self._scheduler = get_algorithm(config.scheduler)

    # ------------------------------------------------------------------
    # observation (every iteration, dump or not)
    # ------------------------------------------------------------------
    def observe_iteration(self, profile: IterationProfile) -> None:
        """Record an iteration's actual obstacle layout for prediction."""
        self._previous_profile = profile

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def blocks_per_field(self) -> int:
        """Fine-grained block count; whole fields when not compressing
        (blocking is part of the compression design, Section 4.1)."""
        if not self.config.use_compression:
            return 1
        field_bytes = self.app.partition_nbytes()
        return max(1, round(field_bytes / self.config.block_bytes))

    def _io_task_time(self, nbytes: int, mean_block_bytes: float) -> float:
        """Write-model time for one block, with buffer amortization.

        With the compressed data buffer, ~``buffer/mean_block`` blocks
        share one write operation, so each block pays that fraction of
        the per-write latency (Section 4.2's consolidation effect).
        """
        model = self.config.io_model
        if nbytes <= 0:
            return 0.0
        if self.config.buffer_bytes > 0:
            per_unit = max(
                1.0, self.config.buffer_bytes / max(mean_block_bytes, 1.0)
            )
            latency = model.write_latency_s / per_unit
        else:
            latency = model.write_latency_s
        return latency + nbytes / model.per_process_bandwidth

    def plan_dump(self, iteration: int) -> DumpPlan:
        """Plan every block of this dump with predicted values."""
        nb = self.blocks_per_field()
        field_bytes = self.app.partition_nbytes()
        raw_block = field_bytes // nb
        use_compression = self.config.use_compression

        oracle_ratios = (
            self.app.block_ratios(
                self.rank, iteration, nb, self.node_size
            )
            if (self.config.oracle_scheduling and use_compression)
            else None
        )
        predicted_sizes: list[tuple[str, int, int, float]] = []
        for spec in self.app.fields:
            for b in range(nb):
                if use_compression:
                    if oracle_ratios is not None:
                        ratio = float(oracle_ratios[spec.name][b])
                    else:
                        ratio = self._predicted_ratio(
                            spec.name, b, spec.base_ratio
                        )
                    size = max(1, int(raw_block / ratio))
                else:
                    ratio = 1.0
                    size = raw_block
                predicted_sizes.append((spec.name, b, size, ratio))

        mean_size = float(np.mean([s for _, _, s, _ in predicted_sizes]))
        blocks: list[BlockPlan] = []
        for job_index, (fname, b, size, ratio) in enumerate(predicted_sizes):
            if use_compression:
                comp_s = self.config.compression_model.compression_time(
                    raw_block, shared_tree=self.config.use_shared_tree
                )
            else:
                comp_s = 0.0
            blocks.append(
                BlockPlan(
                    job_index=job_index,
                    field_name=fname,
                    block_index=b,
                    raw_bytes=raw_block,
                    predicted_ratio=ratio,
                    predicted_bytes=size,
                    predicted_compression_s=comp_s,
                    predicted_io_s=self._io_task_time(size, mean_size),
                )
            )
        return DumpPlan(iteration=iteration, blocks=blocks)

    def _predicted_ratio(
        self, field_name: str, block: int, default: float
    ) -> float:
        if self._previous_ratios is None:
            return default
        ratios = self._previous_ratios.get(field_name)
        if ratios is None or block >= len(ratios):
            return default
        return float(ratios[block])

    # ------------------------------------------------------------------
    # balancing hooks (called by the node orchestrator)
    # ------------------------------------------------------------------
    def apply_balancing(
        self,
        plan: DumpPlan,
        kept: list[IoTaskRef],
        moved_in: list[IoTaskRef],
    ) -> None:
        """Record the balancer's verdict on this plan."""
        kept_ids = {ref.job_index for ref in kept if ref.owner == self.rank}
        plan.moved_out = {
            b.job_index for b in plan.blocks if b.job_index not in kept_ids
        }
        plan.moved_in = list(moved_in)

    # ------------------------------------------------------------------
    # scheduling + execution
    # ------------------------------------------------------------------
    def build_jobs(self, plan: DumpPlan) -> list[Job]:
        """Assemble the flow-shop jobs for this plan.

        Own blocks keep their compression task; a moved-out block's I/O
        time becomes zero (another process writes it).  Moved-in tasks
        become zero-compression pseudo-jobs whose ``io_release`` is the
        donor's predicted compression completion (prefix-sum estimate).
        """
        jobs: list[Job] = []
        comp_prefix = 0.0
        prefix_by_index: dict[int, float] = {}
        for b in plan.blocks:
            comp_prefix += b.predicted_compression_s
            prefix_by_index[b.job_index] = comp_prefix
            io_s = 0.0 if b.job_index in plan.moved_out else b.predicted_io_s
            jobs.append(
                Job(
                    index=b.job_index,
                    compression_time=b.predicted_compression_s,
                    io_time=io_s,
                    label=f"{b.field_name}[{b.block_index}]",
                )
            )
        next_index = len(jobs)
        for ref in plan.moved_in:
            # The donor compresses in its own generation order; its
            # prefix sum of compression times lower-bounds readiness.
            release = prefix_by_index.get(ref.job_index, 0.0)
            jobs.append(
                Job(
                    index=next_index,
                    compression_time=0.0,
                    io_time=ref.duration,
                    label=f"moved-in:{ref.owner}:{ref.job_index}",
                    io_release=release,
                )
            )
            next_index += 1
        plan.jobs = jobs
        return jobs

    def make_instance(self, plan: DumpPlan) -> ProblemInstance:
        """The scheduling instance, predicted from the previous iteration."""
        if self._previous_profile is None:
            raise LookupError(
                "no previous iteration observed; run one iteration first"
            )
        profile = self._previous_profile
        jobs = plan.jobs or self.build_jobs(plan)
        main, background = self._obstacles(
            profile.length,
            profile.main_obstacles,
            profile.background_obstacles,
        )
        return ProblemInstance(
            begin=0.0,
            end=profile.length,
            jobs=tuple(jobs),
            main_obstacles=main,
            background_obstacles=background,
        )

    def _obstacles(
        self,
        length: float,
        main: tuple[Interval, ...],
        background: tuple[Interval, ...],
    ) -> tuple[tuple[Interval, ...], tuple[Interval, ...]]:
        """Obstacle layouts for the configured solution style.

        Prior-style solutions do not overlap with computation: the main
        thread is one solid obstacle.  The fully synchronous baseline
        additionally blocks the background thread, pushing every write
        after the iteration.
        """
        if not self.config.overlap_with_computation:
            main = (Interval(0.0, length),)
        if not self.config.async_background:
            background = (Interval(0.0, length),)
        return main, background

    def execute_dump(
        self,
        plan: DumpPlan,
        iteration: int,
        moved_in_actual_s: list[float] | None = None,
    ) -> DumpOutcome:
        """Schedule the plan and replay it against actual conditions."""
        if self.config.oracle_scheduling:
            # Section 5.2 mode: the scheduler sees the iteration's actual
            # obstacle layout rather than the previous iteration's.
            self._previous_profile = self.app.iteration_profile(iteration)
        tracer = (
            self.tracer.bind(iteration=iteration)
            if self.tracer.enabled
            else self.tracer
        )
        instance = self.make_instance(plan)
        with tracer.timed(
            "dump.schedule", algorithm=self.config.scheduler
        ):
            schedule = self._scheduler(instance)
        trace_schedule(tracer, schedule, algorithm=self.config.scheduler)

        actual_profile = self.app.iteration_profile(iteration)
        nb = self.blocks_per_field()
        if self.config.use_compression:
            actual_ratios = self.app.block_ratios(
                self.rank, iteration, nb, self.node_size
            )
        else:
            actual_ratios = {
                spec.name: np.ones(nb) for spec in self.app.fields
            }

        set_ctx = getattr(self.noise, "set_fault_context", None)
        if set_ctx is not None:
            set_ctx(iteration)
        failed_compression = self._failed_compression_blocks(
            plan, iteration, tracer
        )
        if failed_compression:
            # The degraded blocks really went out raw; make the history
            # predictor (and next iteration's balancer inputs) see it.
            actual_ratios = {
                name: ratios.copy()
                for name, ratios in actual_ratios.items()
            }

        mean_pred = float(
            np.mean([b.predicted_bytes for b in plan.blocks])
        )
        actual_sizes: list[int] = []
        compression_times: list[float] = []
        io_times: list[float] = []
        for b in plan.blocks:
            if b.job_index in failed_compression:
                # Graceful degradation: the block's compression task
                # failed, so its raw bytes are written instead — the
                # failed attempt still burns main-thread time.
                actual_ratios[b.field_name][b.block_index] = 1.0
                size = b.raw_bytes
            else:
                ratio = float(actual_ratios[b.field_name][b.block_index])
                size = max(1, int(b.raw_bytes / ratio))
            actual_sizes.append(size)
            compression_times.append(
                self.noise.perturb_compression_time(
                    b.predicted_compression_s
                )
            )
            if b.job_index in plan.moved_out:
                io_times.append(0.0)
            else:
                io_times.append(
                    self.noise.perturb_io_time(
                        self._io_task_time(size, mean_pred)
                    )
                )
        if moved_in_actual_s is None:
            moved_in_actual_s = [ref.duration for ref in plan.moved_in]
        for actual in moved_in_actual_s:
            compression_times.append(0.0)
            io_times.append(self.noise.perturb_io_time(actual))

        actual_main, actual_bg = self._obstacles(
            actual_profile.length,
            actual_profile.main_obstacles,
            actual_profile.background_obstacles,
        )
        actuals = ActualDurations(
            length=actual_profile.length,
            main_obstacles=actual_main,
            background_obstacles=actual_bg,
            compression_times=tuple(compression_times),
            io_times=tuple(io_times),
        )
        if self.injector is None:
            execution = execute_schedule(schedule, actuals, tracer=tracer)
            deferred: list[tuple[int, int]] = []
            overrun = False
        else:
            # First replay is silent: if the deadline guard defers I/O,
            # the final (traced) replay below is the only one emitting
            # spans and fault events, so the trace stays duplicate-free.
            probe = execute_schedule(
                schedule,
                actuals,
                injector=self.injector,
                rank=self.rank,
                iteration=iteration,
            )
            actuals, deferred, overrun = self._deadline_guard(
                plan, actuals, probe, actual_sizes, tracer
            )
            execution = execute_schedule(
                schedule,
                actuals,
                tracer=tracer,
                injector=self.injector,
                rank=self.rank,
                iteration=iteration,
            )

        # Section 4.4 overflow: blocks that compressed worse than their
        # reservation spill into the shared file's tail through one extra,
        # unschedulable write queued after the last planned I/O task.
        deferred_indices = {idx for idx, _ in deferred}
        overflow_bytes = sum(
            max(0, size - b.predicted_bytes)
            for b, size in zip(plan.blocks, actual_sizes)
            if b.job_index not in plan.moved_out
            and b.job_index not in deferred_indices
        )
        if overflow_bytes > 0 and self.config.use_compression:
            duration = self.config.io_model.write_time(overflow_bytes)
            tail_ends = [iv.end for iv in execution.io.values()]
            tail_ends += [o.end for o in execution.background_obstacles]
            start = max(tail_ends, default=0.0)
            execution.extra_io = (Interval(start, start + duration),)
            tracer.span(
                "write.overflow",
                "background",
                None,
                start,
                start + duration,
                nbytes=overflow_bytes,
            )

        if tracer.enabled:
            # Prediction-error attrs: how far the previous-iteration
            # forecast (Section 3.1/3.4) was from this dump's reality.
            predicted_bytes = sum(b.predicted_bytes for b in plan.blocks)
            written = sum(
                size
                for b, size in zip(plan.blocks, actual_sizes)
                if b.job_index not in plan.moved_out
            )
            tracer.span(
                "dump",
                t0=instance.begin,
                t1=instance.begin + execution.overall_time,
                length_error=actual_profile.length - instance.length,
                size_rel_error=(
                    (sum(actual_sizes) - predicted_bytes) / predicted_bytes
                    if predicted_bytes
                    else 0.0
                ),
                makespan_error=(
                    execution.io_makespan - schedule.io_makespan
                ),
                overflow_bytes=overflow_bytes,
                relative_overhead=execution.relative_overhead,
                moved_in=len(plan.moved_in),
                moved_out=len(plan.moved_out),
            )
            tracer.counter("dump.bytes_written").inc(written)
            tracer.counter("dump.overflow_bytes").inc(overflow_bytes)

        if self.injector is not None and (
            failed_compression or deferred
        ):
            self.injector.log.degraded_dumps += 1

        self._previous_profile = actual_profile
        self._previous_ratios = actual_ratios
        return DumpOutcome(
            plan=plan,
            schedule=schedule,
            execution=execution,
            actual_ratios=actual_ratios,
            actual_sizes=actual_sizes,
            overflow_bytes=overflow_bytes,
            degraded_blocks=len(failed_compression),
            deferred=tuple(deferred),
            overrun=overrun,
        )

    # ------------------------------------------------------------------
    # graceful degradation (fault campaigns only)
    # ------------------------------------------------------------------
    def _failed_compression_blocks(
        self, plan: DumpPlan, iteration: int, tracer: NullTracer
    ) -> set[int]:
        """Blocks whose compression task fails this dump (written raw)."""
        if self.injector is None or not self.config.use_compression:
            return set()
        failed: set[int] = set()
        for b in plan.blocks:
            if self.injector.compression_fails(
                self.rank, iteration, b.job_index
            ):
                failed.add(b.job_index)
                self.injector.log.record_fallback("raw-write")
                if tracer.enabled:
                    tracer.event(
                        "fault.injected",
                        kind="compression",
                        job=b.job_index,
                    )
                    tracer.counter("fault.injected").inc()
                    tracer.event(
                        "runtime.fallback",
                        kind="raw-write",
                        job=b.job_index,
                        nbytes=b.raw_bytes,
                    )
                    tracer.counter("runtime.fallback").inc()
        return failed

    def _deadline_guard(
        self,
        plan: DumpPlan,
        actuals: ActualDurations,
        probe: ExecutionResult,
        actual_sizes: list[int],
        tracer: NullTracer,
    ) -> tuple[ActualDurations, list[tuple[int, int]], bool]:
        """Defer trailing I/O when the dump would overrun the next gap.

        Concealment promises the dump fits inside the compute interval;
        when the probe replay overruns ``T_n * (1 + frac)``, the I/O
        tasks ending past the deadline are pulled off this iteration's
        background thread (their durations zeroed in the returned
        actuals) and handed to the orchestrator to write during the next
        compute gap.  Only this rank's own blocks are deferrable
        (moved-in tasks write another rank's buffer).
        """
        deadline = actuals.length * (
            1.0 + self.config.overrun_deadline_frac
        )
        if probe.overall_time <= deadline:
            return actuals, [], False
        begin = probe.begin
        victims = sorted(
            idx
            for idx, iv in probe.io.items()
            if iv.end - begin > deadline
            and idx < len(plan.blocks)
            and actuals.io_times[idx] > 0.0
        )
        if not victims:
            return actuals, [], True
        deferred: list[tuple[int, int]] = []
        io_times = list(actuals.io_times)
        for idx in victims:
            io_times[idx] = 0.0
            nbytes = actual_sizes[idx]
            deferred.append((idx, nbytes))
            self.injector.log.record_fallback("defer-io", nbytes=nbytes)
            if tracer.enabled:
                tracer.event(
                    "runtime.fallback",
                    kind="defer-io",
                    job=idx,
                    nbytes=nbytes,
                )
                tracer.counter("runtime.fallback").inc()
        trimmed = ActualDurations(
            length=actuals.length,
            main_obstacles=actuals.main_obstacles,
            background_obstacles=actuals.background_obstacles,
            compression_times=actuals.compression_times,
            io_times=tuple(io_times),
        )
        return trimmed, deferred, True
