"""High-level snapshot API: dump and restore named fields in one call.

This is the downstream-facing entry point that ties the whole stack
together the way the paper's framework does inside an application:
fine-grained blocking, error-bounded compression with an optional shared
Huffman tree, pre-compression size prediction for offset reservation,
background-thread asynchronous writes with overflow handling, and a
self-describing manifest so a snapshot reloads with no external state.

::

    from repro.framework import save_snapshot, load_snapshot

    stats = save_snapshot("snap.rpio", {"rho": rho, "T": temp},
                          error_bounds={"rho": 0.2, "T": 1e3})
    fields = load_snapshot("snap.rpio")

Snapshots embed the codebook(s) used, so ``load_snapshot`` never needs
the writer's shared-tree state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from ..compression import (
    CompressedBlock,
    RatioModel,
    SZCompressor,
    codebook_from_bytes,
    codebook_to_bytes,
    plan_blocks,
    reassemble_field,
    slice_field,
)
from ..compression.huffman import Codebook
from ..durability.checksum import crc32c
from ..io import (
    AsyncWriter,
    SharedFileReader,
    SharedFileWriter,
    SubfileReader,
    SubfileWriter,
)

__all__ = ["SnapshotStats", "save_snapshot", "load_snapshot"]

_MANIFEST = "__manifest__"
_CODEBOOK = "__codebook__"


@dataclass(frozen=True)
class SnapshotStats:
    """Outcome of one snapshot dump."""

    raw_bytes: int
    compressed_bytes: int
    num_blocks: int
    overflow_blocks: int

    @property
    def compression_ratio(self) -> float:
        return self.raw_bytes / max(1, self.compressed_bytes)


def save_snapshot(
    path,
    fields: dict[str, np.ndarray],
    error_bounds: dict[str, float] | float,
    block_bytes: int = 8 * 2**20,
    compressor: SZCompressor | None = None,
    shared_codebook: Codebook | None = None,
    async_io: bool = True,
    layout: str = "shared",
    num_subfiles: int = 4,
) -> SnapshotStats:
    """Compress and write ``fields`` to one self-describing shared file.

    Args:
        path: output file path.
        fields: name -> float32/float64 array.
        error_bounds: absolute error bound per field, or one bound for
            every field.
        block_bytes: fine-grained block size (Section 4.1).
        compressor: SZ-style compressor to use (default radius 128).
        shared_codebook: a shared Huffman tree to code every block with
            (Section 4.3); embedded in the file for self-containment.
        async_io: write through the background thread (the async-VOL
            path) or synchronously.
        layout: ``"shared"`` writes one shared file at ``path``;
            ``"subfiled"`` treats ``path`` as a directory and spreads
            datasets over ``num_subfiles`` containers (the Section 6
            multi-file future work).
        num_subfiles: subfile count for the subfiled layout.
    """
    if layout not in ("shared", "subfiled"):
        raise ValueError(f"unknown layout {layout!r}")
    if not fields:
        raise ValueError("no fields to save")
    compressor = compressor or SZCompressor()
    ratio_model = RatioModel(compressor)
    bounds = _resolve_bounds(fields, error_bounds)

    manifest: dict[str, dict] = {}
    raw_total = 0
    compressed_total = 0
    num_blocks = 0
    payloads: list[tuple[str, bytes, int]] = []

    for name, data in fields.items():
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"field {name!r} has dtype {data.dtype}")
        specs = plan_blocks(name, data.shape, data.itemsize, block_bytes)
        # Per-block CRC32C, computed here at compression time and
        # declared in the manifest — the end-to-end integrity anchor
        # every later layer (async writer, container, loader) checks
        # the payload against.
        block_crcs: list[int] = []
        manifest[name] = {
            "shape": list(data.shape),
            "dtype": data.dtype.name,
            "error_bound": bounds[name],
            "num_blocks": len(specs),
            "block_crc32c": block_crcs,
        }
        for spec in specs:
            block_data = np.ascontiguousarray(slice_field(data, spec))
            block = compressor.compress(
                block_data, bounds[name], shared_codebook=shared_codebook
            )
            payload = block.to_bytes()
            checksum = crc32c(payload)
            block_crcs.append(checksum)
            payloads.append(
                (f"{name}/{spec.block_index}", payload, checksum)
            )
            raw_total += block_data.nbytes
            compressed_total += len(payload)
            num_blocks += 1

    overflow_blocks = 0
    if layout == "subfiled":
        writer_cm = SubfileWriter(path, num_subfiles=num_subfiles)
    else:
        writer_cm = SharedFileWriter(path)
    with writer_cm as writer:
        # Reserve offsets from predicted sizes (Section 4.4); the
        # prediction reuses the actual bound/codebook configuration.
        predicted: dict[str, int] = {}
        for name, data in fields.items():
            specs = plan_blocks(
                name, data.shape, data.itemsize, block_bytes
            )
            for spec in specs:
                block_data = slice_field(data, spec)
                estimate = ratio_model.predict(
                    np.ascontiguousarray(block_data),
                    bounds[name],
                    shared_codebook=shared_codebook,
                )
                predicted[f"{name}/{spec.block_index}"] = (
                    estimate.compressed_nbytes
                )
        for dataset, _, _ in payloads:
            writer.reserve(dataset, predicted[dataset])

        if async_io:
            with AsyncWriter(writer) as background:
                jobs = [
                    background.submit(dataset, payload, checksum=checksum)
                    for dataset, payload, checksum in payloads
                ]
                background.drain()
            overflow_blocks = sum(
                1 for j in jobs if j.fit_reservation is False
            )
        else:
            for dataset, payload, checksum in payloads:
                if not writer.write(dataset, payload, checksum=checksum):
                    overflow_blocks += 1

        if shared_codebook is not None:
            writer.write_unreserved(
                _CODEBOOK, codebook_to_bytes(shared_codebook)
            )
        writer.write_unreserved(
            _MANIFEST, json.dumps(manifest).encode()
        )

    return SnapshotStats(
        raw_bytes=raw_total,
        compressed_bytes=compressed_total,
        num_blocks=num_blocks,
        overflow_blocks=overflow_blocks,
    )


def load_snapshot(
    path,
    compressor: SZCompressor | None = None,
    verify_bounds: bool = False,
) -> dict[str, np.ndarray]:
    """Restore every field of a snapshot written by :func:`save_snapshot`.

    With ``verify_bounds`` the loader re-checks that every block's
    declared error bound is structurally plausible (dtype/shape match);
    actual error verification requires the original data and lives in the
    tests and examples.
    """
    import os

    compressor = compressor or SZCompressor()
    if os.path.isdir(path):
        reader_cm = SubfileReader(path)
    else:
        reader_cm = SharedFileReader(path)
    with reader_cm as reader:
        if _MANIFEST not in reader.entries:
            raise ValueError(f"{path} has no snapshot manifest")
        try:
            manifest = json.loads(reader.read(_MANIFEST).decode())
        except ValueError as exc:
            raise ValueError(
                f"snapshot {path}: manifest is corrupt: {exc}"
            ) from exc
        if not isinstance(manifest, dict):
            raise ValueError(
                f"snapshot {path}: manifest is corrupt: expected a JSON "
                f"object, got {type(manifest).__name__}"
            )
        shared = None
        if _CODEBOOK in reader.entries:
            try:
                shared = codebook_from_bytes(reader.read(_CODEBOOK))
            except ValueError as exc:
                raise ValueError(
                    f"snapshot {path}: shared codebook is corrupt: {exc}"
                ) from exc

        fields: dict[str, np.ndarray] = {}
        for name, meta in manifest.items():
            try:
                block_bytes = _infer_block_bytes(meta, reader, name)
            except ValueError as exc:
                entry = reader.entries.get(f"{name}/0")
                offset = getattr(entry, "offset", None)
                raise ValueError(
                    f"snapshot {path}: field {name!r} block 0"
                    + (f" (offset {offset})" if offset is not None else "")
                    + f": {exc}"
                ) from exc
            specs = plan_blocks(
                name,
                tuple(meta["shape"]),
                np.dtype(meta["dtype"]).itemsize,
                block_bytes,
            )
            declared_crcs = meta.get("block_crc32c")
            blocks = []
            for spec in specs:
                index = spec.block_index
                key = f"{name}/{index}"
                entry = reader.entries.get(key)
                offset = getattr(entry, "offset", None)
                where = (
                    f"snapshot {path}: field {name!r} block {index}"
                    + (f" (offset {offset})" if offset is not None else "")
                )
                if entry is None:
                    raise ValueError(f"{where}: missing from container")
                expected = None
                if declared_crcs is not None and index < len(declared_crcs):
                    expected = declared_crcs[index]
                try:
                    payload = reader.read(key)
                    block = CompressedBlock.from_bytes(
                        payload, expected_crc32c=expected
                    )
                except ValueError as exc:
                    raise ValueError(f"{where}: {exc}") from exc
                if verify_bounds:
                    if block.shape != spec.shape:
                        raise ValueError(
                            f"block {name}/{spec.block_index} shape "
                            f"mismatch: {block.shape} != {spec.shape}"
                        )
                recon = compressor.decompress(
                    block,
                    shared_codebook=shared
                    if block.used_shared_tree
                    else None,
                )
                blocks.append((spec, recon))
            fields[name] = reassemble_field(blocks)
        return fields


def _resolve_bounds(
    fields: dict[str, np.ndarray],
    error_bounds: dict[str, float] | float,
) -> dict[str, float]:
    if isinstance(error_bounds, dict):
        missing = set(fields) - set(error_bounds)
        if missing:
            raise ValueError(f"missing error bounds for {sorted(missing)}")
        bounds = {name: float(error_bounds[name]) for name in fields}
    else:
        bounds = {name: float(error_bounds) for name in fields}
    for name, bound in bounds.items():
        if bound <= 0:
            raise ValueError(f"error bound for {name!r} must be positive")
    return bounds


def _infer_block_bytes(meta: dict, reader, name: str) -> int:
    """Reconstruct the writer's block size from the block count.

    ``plan_blocks`` divides axis 0 evenly, so the count determines the
    split; any target size that reproduces that count works.  We read
    block 0's stored shape for an exact answer.
    """
    num_blocks = meta["num_blocks"]
    if num_blocks == 1:
        return 2**62  # anything >= field size keeps the field whole
    block0 = CompressedBlock.from_bytes(reader.read(f"{name}/0"))
    rows = block0.shape[0]
    row_bytes = (
        int(np.prod(block0.shape[1:], dtype=np.int64))
        * np.dtype(meta["dtype"]).itemsize
    )
    return max(1, rows * row_bytes)
