"""Parameter sweeps over campaigns — the evaluation harness's workhorse.

Every figure of the evaluation is a sweep: one knob varied, three
solutions compared, overheads collected.  :func:`sweep_campaigns` runs
the cross product of (variants x solutions) and returns a
:class:`SweepResult` that renders as a table or as per-solution chart
series, so custom experiments don't have to re-write the loop the
benchmarks use.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from ..apps.base import ApplicationModel
from ..simulator.node import ClusterSpec
from .config import FrameworkConfig
from .orchestrator import CampaignRunner
from .report import format_table
from .textplot import line_chart

__all__ = ["SweepPoint", "SweepResult", "sweep_campaigns"]


@dataclass(frozen=True)
class SweepPoint:
    """One (variant, solution) cell of a sweep."""

    variant: str
    solution: str
    mean_relative_overhead: float
    total_time: float


@dataclass
class SweepResult:
    """All cells of a sweep, with table/chart renderers."""

    points: list[SweepPoint] = field(default_factory=list)

    def overhead(self, variant: str, solution: str) -> float:
        for point in self.points:
            if point.variant == variant and point.solution == solution:
                return point.mean_relative_overhead
        raise KeyError((variant, solution))

    def variants(self) -> list[str]:
        seen: list[str] = []
        for point in self.points:
            if point.variant not in seen:
                seen.append(point.variant)
        return seen

    def solutions(self) -> list[str]:
        seen: list[str] = []
        for point in self.points:
            if point.solution not in seen:
                seen.append(point.solution)
        return seen

    def to_table(self) -> str:
        solutions = self.solutions()
        rows = []
        for variant in self.variants():
            rows.append(
                (
                    variant,
                    *(
                        f"{self.overhead(variant, s) * 100:.1f}%"
                        for s in solutions
                    ),
                )
            )
        return format_table(rows, headers=("variant", *solutions))

    def to_chart(self, x_of: Callable[[str], float] | None = None) -> str:
        """Chart overhead vs variant, one series per solution.

        ``x_of`` maps variant labels to x values (default: enumeration
        order).
        """
        variants = self.variants()
        if x_of is None:
            positions = {v: float(i) for i, v in enumerate(variants)}
            x_of = positions.__getitem__
        series = {
            solution: [
                (x_of(v), self.overhead(v, solution)) for v in variants
            ]
            for solution in self.solutions()
        }
        return line_chart(
            series, x_label="variant", y_label="relative overhead"
        )


def sweep_campaigns(
    variants: dict[str, ApplicationModel],
    solutions: dict[str, FrameworkConfig],
    cluster: ClusterSpec,
    iterations: int = 5,
    seed: int = 1,
) -> SweepResult:
    """Run every (variant, solution) campaign and collect overheads.

    Args:
        variants: label -> application model (e.g. different spreads,
            ratios, or scales baked into the model).
        solutions: label -> framework configuration.
        cluster: the cluster every campaign runs on.
        iterations: iterations per campaign.
        seed: base RNG seed (per-rank noise derives from it).
    """
    result = SweepResult()
    for variant_label, app in variants.items():
        for solution_label, config in solutions.items():
            campaign = CampaignRunner(
                app,
                cluster,
                config,
                solution=solution_label,
                seed=seed,
            ).run(iterations)
            result.points.append(
                SweepPoint(
                    variant=variant_label,
                    solution=solution_label,
                    mean_relative_overhead=campaign.mean_relative_overhead,
                    total_time=campaign.total_time,
                )
            )
    return result
