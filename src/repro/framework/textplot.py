"""Text line charts, so benches regenerate *figures*, not only tables.

Minimal dependency-free plotting: each named series is drawn with its own
glyph on a character grid with labelled y-extremes and x-ticks.  Used by
the figure benches next to their numeric tables, and (via
:func:`gantt_chart`) by the telemetry subsystem's timeline renderer.
"""

from __future__ import annotations

__all__ = ["line_chart", "gantt_chart"]

_GLYPHS = "ox+*#@%&"


def gantt_chart(
    rows: dict[str, list[tuple[float, float, str]]],
    width: int = 72,
) -> str:
    """Render ``{resource: [(start, end, glyph), ...]}`` as a Gantt chart.

    One line per resource in insertion order, bars drawn with their own
    glyph (later bars overwrite earlier ones where they overlap), plus a
    shared time axis labelled with the global extremes.
    """
    bars = [bar for row in rows.values() for bar in row]
    if not bars:
        return "(empty chart)"
    t0 = min(bar[0] for bar in bars)
    t1 = max(bar[1] for bar in bars)
    span = max(t1 - t0, 1e-12)
    scale = (width - 1) / span

    name_pad = max(len(name) for name in rows) + 1
    lines = []
    for name, row in rows.items():
        cells = [" "] * width
        for start, end, glyph in row:
            lo = int((start - t0) * scale)
            hi = max(lo + 1, int((end - t0) * scale))
            for x in range(lo, min(hi, width)):
                cells[x] = glyph
        lines.append(f"{name.ljust(name_pad)}|{''.join(cells)}|")
    lines.append(
        f"{' ' * name_pad}|{f't={t0:.2f}'.ljust(width - 10)}"
        f"{f't={t1:.2f}'.rjust(10)}|"
    )
    return "\n".join(lines)


def line_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 60,
    height: int = 14,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render ``{name: [(x, y), ...]}`` as an ASCII chart.

    Points are plotted (not interpolated); series are distinguished by
    glyph, listed in a legend.  Raises on empty input.
    """
    if not series or all(not pts for pts in series.values()):
        raise ValueError("nothing to plot")
    points = [p for pts in series.values() for p in pts]
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = glyph

    y_hi_text = f"{y_hi:.3g}"
    y_lo_text = f"{y_lo:.3g}"
    margin = max(len(y_hi_text), len(y_lo_text), len(y_label)) + 1
    lines = []
    if y_label:
        lines.append(f"{y_label}")
    for r, row in enumerate(grid):
        if r == 0:
            prefix = y_hi_text.rjust(margin)
        elif r == height - 1:
            prefix = y_lo_text.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    axis = " " * margin + "+" + "-" * width
    lines.append(axis)
    x_ticks = (
        " " * (margin + 1)
        + f"{x_lo:.3g}".ljust(width - 10)
        + f"{x_hi:.3g}".rjust(10)
    )
    lines.append(x_ticks)
    if x_label:
        lines.append(" " * (margin + 1) + x_label.center(width))
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)
