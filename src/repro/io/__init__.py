"""Parallel I/O substrate: bandwidth model, simulated filesystem, the
shared-file container with overflow handling, and background-thread
asynchronous writes."""

from .async_io import AsyncWriter, WriteJob
from .filesystem import SimulatedFileSystem, WriteRecord
from .hdf5like import DatasetEntry, SharedFileReader, SharedFileWriter
from .subfiling import SubfileReader, SubfileWriter
from .throughput import SUMMIT_LIKE_IO, IoThroughputModel

__all__ = [
    "IoThroughputModel",
    "SUMMIT_LIKE_IO",
    "SimulatedFileSystem",
    "WriteRecord",
    "SharedFileWriter",
    "SharedFileReader",
    "DatasetEntry",
    "AsyncWriter",
    "WriteJob",
    "SubfileWriter",
    "SubfileReader",
]
