"""Background-thread asynchronous I/O (the HDF5 async-VOL stand-in).

The paper launches compressed-data writes on a background thread per
process so they overlap the main thread's computation (Section 2.1, the
async VOL connector).  This module provides that runtime for the real-file
examples: a single worker thread drains a FIFO of write jobs against a
:class:`~repro.io.hdf5like.SharedFileWriter`, and callers get a future-like
handle per job.

Ordering is FIFO — matching the scheduler's premise that I/O tasks on the
background thread execute sequentially in the submitted order.

A :class:`~repro.resilience.retry.RetryPolicy` makes the worker retry
transiently failing writes with (wall-clock) exponential backoff before
surfacing the error at ``wait()`` — the real-file counterpart of the
simulated retry loop in :class:`~repro.io.filesystem.SimulatedFileSystem`.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from ..resilience.retry import RetryPolicy
from .hdf5like import SharedFileWriter

__all__ = ["WriteJob", "AsyncWriter"]


@dataclass
class WriteJob:
    """A pending asynchronous write; ``wait()`` blocks until durable."""

    name: str
    payload: bytes
    _done: threading.Event = field(default_factory=threading.Event)
    fit_reservation: bool | None = None
    error: BaseException | None = None
    attempts: int = 0

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the write completed; re-raises worker errors."""
        finished = self._done.wait(timeout)
        if finished and self.error is not None:
            raise self.error
        return finished


class AsyncWriter:
    """One background thread writing jobs to a shared container in FIFO."""

    def __init__(
        self,
        writer: SharedFileWriter,
        retry: RetryPolicy | None = None,
    ) -> None:
        self._writer = writer
        self._retry = retry
        self._queue: queue.SimpleQueue[WriteJob | None] = queue.SimpleQueue()
        self._thread = threading.Thread(
            target=self._drain, name="repro-async-io", daemon=True
        )
        self._closed = False
        self._thread.start()

    def submit(self, name: str, payload: bytes) -> WriteJob:
        """Queue one write; returns immediately."""
        if self._closed:
            raise ValueError("writer is closed")
        job = WriteJob(name=name, payload=payload)
        self._queue.put(job)
        return job

    def drain(self) -> None:
        """Block until every queued job has completed."""
        barrier = WriteJob(name="", payload=b"")
        self._queue.put(barrier)
        barrier.wait()

    def close(self) -> None:
        """Finish outstanding work and stop the worker thread."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._thread.join()

    def __enter__(self) -> "AsyncWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _drain(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            if job.name == "" and not job.payload:
                job._done.set()  # drain barrier
                continue
            try:
                job.fit_reservation = self._write_with_retry(job)
            except BaseException as exc:  # surfaced at wait()
                job.error = exc
            finally:
                job._done.set()

    def _write_with_retry(self, job: WriteJob) -> bool:
        """One write, retried per the policy with wall-clock backoff."""
        policy = self._retry
        attempts = policy.max_attempts if policy is not None else 1
        started = time.monotonic()
        while True:
            job.attempts += 1
            try:
                return self._writer.write(job.name, job.payload)
            except Exception:
                if policy is None or job.attempts >= attempts:
                    raise
                time.sleep(policy.backoff_s(job.attempts))
                if policy.past_deadline(time.monotonic() - started):
                    raise
