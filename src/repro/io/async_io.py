"""Background-thread asynchronous I/O (the HDF5 async-VOL stand-in).

The paper launches compressed-data writes on a background thread per
process so they overlap the main thread's computation (Section 2.1, the
async VOL connector).  This module provides that runtime for the real-file
examples: a single worker thread drains a FIFO of write jobs against a
:class:`~repro.io.hdf5like.SharedFileWriter`, and callers get a future-like
handle per job.

Ordering is FIFO — matching the scheduler's premise that I/O tasks on the
background thread execute sequentially in the submitted order.

A :class:`~repro.resilience.retry.RetryPolicy` makes the worker retry
transiently failing writes with (wall-clock) exponential backoff before
surfacing the error at ``wait()`` — the real-file counterpart of the
simulated retry loop in :class:`~repro.io.filesystem.SimulatedFileSystem`.

Shutdown never hangs: the worker is a daemon thread, ``close()`` and
``drain()`` take optional timeouts, and if the worker dies every queued
job fails with a clear error instead of blocking its waiter forever.
Jobs submitted with a ``checksum`` re-verify their payload's CRC32C in
the worker, so corruption while queued is detected before the write.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from ..durability.checksum import crc32c
from ..resilience.retry import RetryPolicy
from .hdf5like import SharedFileWriter

__all__ = ["WriteJob", "AsyncWriter"]


@dataclass
class WriteJob:
    """A pending asynchronous write; ``wait()`` blocks until durable."""

    name: str
    payload: bytes
    checksum: int | None = None
    _done: threading.Event = field(default_factory=threading.Event)
    fit_reservation: bool | None = None
    error: BaseException | None = None
    attempts: int = 0

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the write completed; re-raises worker errors."""
        finished = self._done.wait(timeout)
        if finished and self.error is not None:
            raise self.error
        return finished


class AsyncWriter:
    """One background thread writing jobs to a shared container in FIFO."""

    def __init__(
        self,
        writer: SharedFileWriter,
        retry: RetryPolicy | None = None,
        on_retry=None,
    ) -> None:
        self._writer = writer
        self._retry = retry
        #: ``on_retry(job, exc)`` — observer invoked from the worker
        #: thread each time a failed write is about to be retried, so
        #: callers (the data planes) can tally real-I/O retries in the
        #: campaign's resilience log.  Observer errors are swallowed:
        #: accounting must never turn a recoverable write into a failure.
        self._on_retry = on_retry
        self._queue: queue.SimpleQueue[WriteJob | None] = queue.SimpleQueue()
        self._thread = threading.Thread(
            target=self._drain, name="repro-async-io", daemon=True
        )
        self._closed = False
        self._worker_exited = threading.Event()
        self._start_lock = threading.Lock()
        self._started = False

    def start(self) -> None:
        """Start the worker thread; safe to call any number of times.

        ``submit()`` and ``drain()`` call this lazily, so constructing an
        :class:`AsyncWriter` that is never used costs no thread — and
        engine code that calls ``start()`` again on an already-running
        writer is a no-op rather than a crash.
        """
        with self._start_lock:
            if self._started:
                return
            self._started = True
            self._thread.start()

    def submit(
        self, name: str, payload: bytes, checksum: int | None = None
    ) -> WriteJob:
        """Queue one write; returns immediately.

        ``checksum`` is the payload's CRC32C from compression time; the
        worker re-verifies it just before writing.
        """
        if self._closed:
            raise ValueError("writer is closed")
        self.start()
        job = WriteJob(name=name, payload=payload, checksum=checksum)
        self._queue.put(job)
        if self._worker_exited.is_set():
            self._fail_pending()  # lost race with a dying worker
        return job

    def drain(self, timeout: float | None = None) -> None:
        """Block until every queued job has completed.

        Raises ``TimeoutError`` if the queue did not empty in time and
        ``RuntimeError`` if the worker thread is gone.
        """
        self.start()
        barrier = WriteJob(name="", payload=b"")
        self._queue.put(barrier)
        if self._worker_exited.is_set():
            self._fail_pending()
        if not barrier.wait(timeout):
            raise TimeoutError(
                f"async writer did not drain within {timeout}s"
            )

    def close(self, timeout: float | None = None) -> None:
        """Finish outstanding work and stop the worker thread.

        With a ``timeout``, raises ``TimeoutError`` if outstanding jobs
        (e.g. one wedged in a retry loop) outlast it; the worker is a
        daemon thread, so a timed-out close never prevents interpreter
        exit.
        """
        if self._closed:
            return
        self._closed = True
        with self._start_lock:
            if not self._started:
                return  # never started: nothing to stop
        self._queue.put(None)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError(
                f"async writer worker still busy after {timeout}s"
            )

    def __enter__(self) -> "AsyncWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _drain(self) -> None:
        try:
            while True:
                job = self._queue.get()
                if job is None:
                    return
                if job.name == "" and not job.payload:
                    job._done.set()  # drain barrier
                    continue
                try:
                    self._verify_payload(job)
                    job.fit_reservation = self._write_with_retry(job)
                except BaseException as exc:  # surfaced at wait()
                    job.error = exc
                finally:
                    job._done.set()
        finally:
            # Normal shutdown or a crashed worker: either way nothing
            # will service the queue again, so fail whatever is left
            # rather than letting its waiters block forever.
            self._worker_exited.set()
            self._fail_pending()

    def _fail_pending(self) -> None:
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                return
            if job is None:
                continue
            if job.name == "" and not job.payload:
                job._done.set()  # unblock drain barriers too
                continue
            job.error = RuntimeError(
                f"async writer worker exited before job {job.name!r} "
                f"ran; the write never happened"
            )
            job._done.set()

    def _verify_payload(self, job: WriteJob) -> None:
        if job.checksum is None:
            return
        actual = crc32c(job.payload)
        if actual != job.checksum:
            raise ValueError(
                f"job {job.name!r}: payload corrupted while queued "
                f"(declared {job.checksum:#010x}, computed {actual:#010x})"
            )

    def _write_with_retry(self, job: WriteJob) -> bool:
        """One write, retried per the policy with wall-clock backoff."""
        policy = self._retry
        attempts = policy.max_attempts if policy is not None else 1
        started = time.monotonic()
        while True:
            job.attempts += 1
            try:
                if job.checksum is not None:
                    return self._writer.write(
                        job.name, job.payload, checksum=job.checksum
                    )
                return self._writer.write(job.name, job.payload)
            except Exception as exc:
                if policy is None or job.attempts >= attempts:
                    raise
                # Check the deadline *before* sleeping: a backoff that
                # would land past it is pointless — give up now instead
                # of waiting out the sleep just to discover that.
                backoff = policy.backoff_s(job.attempts)
                elapsed = time.monotonic() - started
                if policy.past_deadline(elapsed + backoff):
                    raise
                if self._on_retry is not None:
                    try:
                        self._on_retry(job, exc)
                    except Exception:  # pragma: no cover - observer bug
                        pass
                time.sleep(backoff)
