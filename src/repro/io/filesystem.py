"""Simulated parallel filesystem: per-node accounting over the time model.

The campaign simulator does not move real bytes; it asks this object how
long each write takes (delegating to :class:`IoThroughputModel`) and keeps
aggregate statistics so experiments can report achieved bandwidth and
write-size distributions.  Aggregates are maintained as running totals in
:meth:`SimulatedFileSystem.write`, so ``total_bytes``/``total_time`` stay
O(1) however many writes a campaign records.

With a :class:`~repro.resilience.faults.FaultInjector` attached, writes
can suffer bandwidth-collapse bursts (the throughput model is degraded
via :meth:`IoThroughputModel.with_bandwidth_factor`) and transient
errors; the configured :class:`~repro.resilience.retry.RetryPolicy`
drives a simulated retry loop — failed attempts and backoffs add
simulated seconds — and a write that exhausts its budget raises
:class:`~repro.resilience.retry.WriteFailedError` for the caller to
degrade gracefully (typically by deferring the payload to the next
compute gap).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..resilience.faults import FaultInjector
from ..resilience.retry import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    WriteFailedError,
)
from ..telemetry import NULL_TRACER, NullTracer
from .throughput import IoThroughputModel

__all__ = ["WriteRecord", "SimulatedFileSystem"]


@dataclass(frozen=True)
class WriteRecord:
    """One simulated write operation."""

    rank: int
    nbytes: int
    duration: float
    attempts: int = 1


@dataclass
class SimulatedFileSystem:
    """Bandwidth-modelled shared filesystem with write accounting."""

    model: IoThroughputModel
    writes: list[WriteRecord] = field(default_factory=list)
    tracer: NullTracer = NULL_TRACER
    injector: FaultInjector | None = None
    retry: RetryPolicy = DEFAULT_RETRY_POLICY
    _total_bytes: int = field(default=0, init=False, repr=False)
    _total_time: float = field(default=0.0, init=False, repr=False)
    _ops: int = field(default=0, init=False, repr=False)

    def write(self, rank: int, nbytes: int) -> float:
        """Simulate one write; returns its duration.

        Under fault injection the duration includes degraded-bandwidth
        slow-down, wasted partial attempts, and retry backoffs.  Raises
        :class:`WriteFailedError` when the retry budget or per-write
        deadline is exhausted; no record is kept for failed writes.
        """
        op = self._ops
        self._ops += 1
        if self.injector is None:
            duration, attempts = self.model.write_time(nbytes), 1
        else:
            duration, attempts = self._faulty_write(rank, nbytes, op)
        self.writes.append(WriteRecord(rank, nbytes, duration, attempts))
        self._total_bytes += nbytes
        self._total_time += duration
        if self.tracer.enabled:
            self.tracer.event(
                "fs.write",
                rank=rank,
                nbytes=nbytes,
                duration=duration,
                attempts=attempts,
            )
            self.tracer.counter("fs.bytes").inc(nbytes)
            self.tracer.counter("fs.writes").inc()
        return duration

    def _faulty_write(
        self, rank: int, nbytes: int, op: int
    ) -> tuple[float, int]:
        """Retry loop over injected faults; simulated elapsed + attempts."""
        injector = self.injector
        assert injector is not None
        factor = injector.bandwidth_factor(rank, op, scope=1)
        model = (
            self.model
            if factor == 1.0
            else self.model.with_bandwidth_factor(factor)
        )
        attempt_s = model.write_time(nbytes)
        if factor != 1.0 and self.tracer.enabled:
            self.tracer.event(
                "fault.injected", kind="bandwidth", rank=rank, factor=factor
            )
            self.tracer.counter("fault.injected").inc()
        rng = injector.rng("retry", rank, op)
        elapsed = 0.0
        attempt = 1
        while True:
            if not injector.write_error(rank, op, attempt):
                elapsed += attempt_s
                if attempt > 1:
                    injector.log.record_retry_success()
                return elapsed, attempt
            # The attempt dies partway through: a transient error wastes
            # a uniform fraction of the would-be write time.
            elapsed += attempt_s * float(rng.uniform(0.0, 1.0))
            if self.tracer.enabled:
                self.tracer.event(
                    "fault.injected",
                    kind="write-error",
                    rank=rank,
                    attempt=attempt,
                )
                self.tracer.counter("fault.injected").inc()
            exhausted = attempt >= self.retry.max_attempts
            if not exhausted:
                backoff = self.retry.backoff_s(attempt, rng)
                elapsed += backoff
                exhausted = self.retry.past_deadline(elapsed + attempt_s)
                injector.log.record_retry()
                if self.tracer.enabled:
                    self.tracer.event(
                        "io.retry",
                        rank=rank,
                        attempt=attempt,
                        backoff_s=backoff,
                    )
                    self.tracer.counter("io.retry").inc()
            if exhausted:
                injector.log.record_write_failure()
                if self.tracer.enabled:
                    self.tracer.event(
                        "io.write_failed",
                        rank=rank,
                        nbytes=nbytes,
                        attempts=attempt,
                    )
                    self.tracer.counter("io.write_failed").inc()
                raise WriteFailedError(
                    f"write of {nbytes} bytes on rank {rank} failed "
                    f"after {attempt} attempts ({elapsed:.3f}s elapsed)",
                    rank=rank,
                    nbytes=nbytes,
                    attempts=attempt,
                    elapsed_s=elapsed,
                )
            attempt += 1

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    @property
    def total_time(self) -> float:
        return self._total_time

    @property
    def mean_write_bytes(self) -> float:
        return (
            self._total_bytes / len(self.writes) if self.writes else 0.0
        )

    def achieved_bandwidth(self) -> float:
        """Aggregate bytes per second across all recorded writes."""
        return (
            self._total_bytes / self._total_time
            if self._total_time
            else 0.0
        )

    def reset(self) -> None:
        self.writes.clear()
        self._total_bytes = 0
        self._total_time = 0.0
