"""Simulated parallel filesystem: per-node accounting over the time model.

The campaign simulator does not move real bytes; it asks this object how
long each write takes (delegating to :class:`IoThroughputModel`) and keeps
aggregate statistics so experiments can report achieved bandwidth and
write-size distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..telemetry import NULL_TRACER, NullTracer
from .throughput import IoThroughputModel

__all__ = ["WriteRecord", "SimulatedFileSystem"]


@dataclass(frozen=True)
class WriteRecord:
    """One simulated write operation."""

    rank: int
    nbytes: int
    duration: float


@dataclass
class SimulatedFileSystem:
    """Bandwidth-modelled shared filesystem with write accounting."""

    model: IoThroughputModel
    writes: list[WriteRecord] = field(default_factory=list)
    tracer: NullTracer = NULL_TRACER

    def write(self, rank: int, nbytes: int) -> float:
        """Simulate one write; returns its duration."""
        duration = self.model.write_time(nbytes)
        self.writes.append(WriteRecord(rank, nbytes, duration))
        if self.tracer.enabled:
            self.tracer.event(
                "fs.write", rank=rank, nbytes=nbytes, duration=duration
            )
            self.tracer.counter("fs.bytes").inc(nbytes)
            self.tracer.counter("fs.writes").inc()
        return duration

    @property
    def total_bytes(self) -> int:
        return sum(w.nbytes for w in self.writes)

    @property
    def total_time(self) -> float:
        return sum(w.duration for w in self.writes)

    @property
    def mean_write_bytes(self) -> float:
        return self.total_bytes / len(self.writes) if self.writes else 0.0

    def achieved_bandwidth(self) -> float:
        """Aggregate bytes per second across all recorded writes."""
        return self.total_bytes / self.total_time if self.total_time else 0.0

    def reset(self) -> None:
        self.writes.clear()
