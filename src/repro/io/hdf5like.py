"""A shared-file container with offset reservation and an overflow region.

This is the repo's stand-in for parallel HDF5 writing to one shared file
(Section 2.1 motivates the single-shared-file pattern).  It reproduces the
mechanics the paper's implementation relies on (Section 4.4):

* **Offset reservation.**  Before compression, every block's offset in
  the shared file is computed from its *predicted* compressed size, so
  processes can write independently without coordination.
* **Overflow region.**  When a block compresses worse than predicted, the
  reserved slot cannot hold it; the excess block is appended to a shared
  overflow region at the end of the file, as an extra (unscheduled) I/O
  task queued after the last planned one.
* **Self-describing footer.**  A JSON footer records every dataset's
  actual location so readers need no external metadata.

Writes go through :func:`os.pwrite`-style positioned I/O so multiple
threads (the async-I/O layer) can write concurrently to one descriptor.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass

__all__ = ["DatasetEntry", "SharedFileWriter", "SharedFileReader"]

_MAGIC = b"RPIO0001"
_FOOTER_STRUCT = "<Q8s"  # footer length + magic, at the very end


@dataclass
class DatasetEntry:
    """Location of one stored dataset (block) in the shared file.

    ``crc32`` is the zlib CRC of the payload, or None when the data was
    written externally (the parallel-dump path) and never passed through
    this writer.
    """

    name: str
    offset: int
    nbytes: int
    reserved: int
    overflowed: bool
    crc32: int | None = None


class SharedFileWriter:
    """Writer for the shared container; thread-safe positioned writes."""

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = os.fspath(path)
        self._fd = os.open(
            self._path, os.O_CREAT | os.O_RDWR | os.O_TRUNC, 0o644
        )
        os.write(self._fd, _MAGIC)
        self._cursor = len(_MAGIC)  # next free reservation offset
        self._entries: dict[str, DatasetEntry] = {}
        self._lock = threading.Lock()
        self._closed = False

    def reserve(self, name: str, predicted_nbytes: int) -> int:
        """Reserve ``predicted_nbytes`` for ``name``; returns its offset."""
        if predicted_nbytes < 0:
            raise ValueError("predicted size must be non-negative")
        with self._lock:
            self._check_open()
            if name in self._entries:
                raise ValueError(f"dataset {name!r} already reserved")
            offset = self._cursor
            self._cursor += predicted_nbytes
            self._entries[name] = DatasetEntry(
                name=name,
                offset=offset,
                nbytes=0,
                reserved=predicted_nbytes,
                overflowed=False,
            )
            return offset

    def write(self, name: str, payload: bytes) -> bool:
        """Write a dataset into its reservation, or overflow if too big.

        Returns True when the payload fit its reservation, False when it
        was appended to the overflow region instead (the caller then
        queues the write as the paper's extra trailing I/O task — timing
        is the caller's concern; the data lands correctly either way).
        """
        with self._lock:
            self._check_open()
            entry = self._entries.get(name)
            if entry is None:
                raise KeyError(f"dataset {name!r} was never reserved")
            if entry.nbytes:
                raise ValueError(f"dataset {name!r} already written")
            if len(payload) <= entry.reserved:
                offset = entry.offset
                overflowed = False
            else:
                offset = self._cursor
                self._cursor += len(payload)
                overflowed = True
            entry.offset = offset
            entry.nbytes = len(payload)
            entry.overflowed = overflowed
            entry.crc32 = zlib.crc32(payload)
        os.pwrite(self._fd, payload, offset)
        return not overflowed

    def commit_external(self, name: str, nbytes: int) -> None:
        """Record that ``nbytes`` were written into ``name``'s reservation
        by someone else (another process pwriting the same file — the
        parallel-dump path).  The payload must fit the reservation; the
        overflow path needs the writer's own cursor and stays in-process.
        """
        with self._lock:
            self._check_open()
            entry = self._entries.get(name)
            if entry is None:
                raise KeyError(f"dataset {name!r} was never reserved")
            if entry.nbytes:
                raise ValueError(f"dataset {name!r} already written")
            if nbytes > entry.reserved:
                raise ValueError(
                    f"external write of {nbytes} exceeds reservation "
                    f"{entry.reserved} for {name!r}"
                )
            entry.nbytes = nbytes

    def write_unreserved(self, name: str, payload: bytes) -> None:
        """Append a dataset that never had a reservation."""
        with self._lock:
            self._check_open()
            if name in self._entries:
                raise ValueError(f"dataset {name!r} already exists")
            offset = self._cursor
            self._cursor += len(payload)
            self._entries[name] = DatasetEntry(
                name=name,
                offset=offset,
                nbytes=len(payload),
                reserved=0,
                overflowed=False,
                crc32=zlib.crc32(payload),
            )
        os.pwrite(self._fd, payload, offset)

    @property
    def overflow_bytes(self) -> int:
        with self._lock:
            return sum(
                e.nbytes for e in self._entries.values() if e.overflowed
            )

    def close(self) -> None:
        """Write the footer index and close the descriptor."""
        with self._lock:
            if self._closed:
                return
            index = {
                name: {
                    "offset": e.offset,
                    "nbytes": e.nbytes,
                    "reserved": e.reserved,
                    "overflowed": e.overflowed,
                    "crc32": e.crc32,
                }
                for name, e in self._entries.items()
            }
            footer = json.dumps(index).encode()
            os.pwrite(self._fd, footer, self._cursor)
            tail = struct.pack(_FOOTER_STRUCT, len(footer), _MAGIC)
            os.pwrite(self._fd, tail, self._cursor + len(footer))
            os.close(self._fd)
            self._closed = True

    def __enter__(self) -> "SharedFileWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("writer is closed")


class SharedFileReader:
    """Reader for containers produced by :class:`SharedFileWriter`."""

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = os.fspath(path)
        self._fd = os.open(self._path, os.O_RDONLY)
        size = os.fstat(self._fd).st_size
        tail_size = struct.calcsize(_FOOTER_STRUCT)
        if size < len(_MAGIC) + tail_size:
            os.close(self._fd)
            raise ValueError("file too small to be a shared container")
        head = os.pread(self._fd, len(_MAGIC), 0)
        tail = os.pread(self._fd, tail_size, size - tail_size)
        footer_len, magic = struct.unpack(_FOOTER_STRUCT, tail)
        if head != _MAGIC or magic != _MAGIC:
            os.close(self._fd)
            raise ValueError("not a shared container file")
        footer = os.pread(
            self._fd, footer_len, size - tail_size - footer_len
        )
        raw = json.loads(footer.decode())
        self.entries = {
            name: DatasetEntry(name=name, **info)
            for name, info in raw.items()
        }

    def names(self) -> list[str]:
        return sorted(self.entries)

    def read(self, name: str, verify: bool = True) -> bytes:
        """Read one dataset; with ``verify`` (default) the stored CRC32,
        when present, is checked and corruption raises ``ValueError``."""
        entry = self.entries[name]
        payload = os.pread(self._fd, entry.nbytes, entry.offset)
        if verify and entry.crc32 is not None:
            actual = zlib.crc32(payload)
            if actual != entry.crc32:
                raise ValueError(
                    f"dataset {name!r} failed its checksum "
                    f"(stored {entry.crc32:#x}, read {actual:#x})"
                )
        return payload

    def close(self) -> None:
        os.close(self._fd)

    def __enter__(self) -> "SharedFileReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
