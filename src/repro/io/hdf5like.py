"""A shared-file container with offset reservation and an overflow region.

This is the repo's stand-in for parallel HDF5 writing to one shared file
(Section 2.1 motivates the single-shared-file pattern).  It reproduces the
mechanics the paper's implementation relies on (Section 4.4):

* **Offset reservation.**  Before compression, every block's offset in
  the shared file is computed from its *predicted* compressed size, so
  processes can write independently without coordination.
* **Overflow region.**  When a block compresses worse than predicted, the
  reserved slot cannot hold it; the excess block is appended to a shared
  overflow region at the end of the file, as an extra (unscheduled) I/O
  task queued after the last planned one.
* **Self-describing footer.**  A JSON footer records every dataset's
  actual location so readers need no external metadata.

Writes go through :func:`os.pwrite`-style positioned I/O so multiple
threads (the async-I/O layer) can write concurrently to one descriptor.

Durability (format v2, magic ``RPIO0002``): the writer builds the
container at a same-directory temp path (:attr:`SharedFileWriter.data_path`)
and only fsyncs + renames it to the final name at :meth:`close`, so a
reader at the final path never observes a file without its footer.
Every dataset written through the writer carries a CRC32C, and the
footer JSON itself is covered by a CRC32C in the tail record.  v1
containers (``RPIO0001``, zlib CRC-32 entries, unchecksummed footer)
still read.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass

from ..durability.atomic import fsync_dir, temp_path_for
from ..durability.checksum import crc32c

__all__ = ["DatasetEntry", "SharedFileWriter", "SharedFileReader"]

_MAGIC_V1 = b"RPIO0001"
_MAGIC = b"RPIO0002"
_FOOTER_STRUCT_V1 = "<Q8s"  # footer length + magic, at the very end
_FOOTER_STRUCT = "<QI8s"  # footer length + footer CRC32C + magic


@dataclass
class DatasetEntry:
    """Location of one stored dataset (block) in the shared file.

    ``crc32c`` is the Castagnoli CRC of the payload (v2 containers);
    ``crc32`` is the zlib CRC older v1 containers recorded.  Both are
    None when the data was written externally (the parallel-dump path)
    and never passed through this writer.
    """

    name: str
    offset: int
    nbytes: int
    reserved: int
    overflowed: bool
    crc32: int | None = None
    crc32c: int | None = None


class SharedFileWriter:
    """Writer for the shared container; thread-safe positioned writes."""

    def __init__(
        self, path: str | os.PathLike, durable: bool = True
    ) -> None:
        self._path = os.fspath(path)
        self._data_path = temp_path_for(self._path)
        self._durable = durable
        self._fd = os.open(
            self._data_path, os.O_CREAT | os.O_RDWR | os.O_TRUNC, 0o644
        )
        os.write(self._fd, _MAGIC)
        self._cursor = len(_MAGIC)  # next free reservation offset
        self._entries: dict[str, DatasetEntry] = {}
        self._lock = threading.Lock()
        self._closed = False

    @property
    def path(self) -> str:
        """The final (published) container path."""
        return self._path

    @property
    def data_path(self) -> str:
        """Where the bytes physically live *right now*.

        The in-progress temp file while open; the final path once
        closed.  External writers (the parallel-dump workers pwriting
        reserved slots from other processes) must target this path.
        """
        return self._path if self._closed else self._data_path

    def reserve(self, name: str, predicted_nbytes: int) -> int:
        """Reserve ``predicted_nbytes`` for ``name``; returns its offset."""
        if predicted_nbytes < 0:
            raise ValueError("predicted size must be non-negative")
        with self._lock:
            self._check_open()
            if name in self._entries:
                raise ValueError(f"dataset {name!r} already reserved")
            offset = self._cursor
            self._cursor += predicted_nbytes
            self._entries[name] = DatasetEntry(
                name=name,
                offset=offset,
                nbytes=0,
                reserved=predicted_nbytes,
                overflowed=False,
            )
            return offset

    def write(
        self, name: str, payload: bytes, checksum: int | None = None
    ) -> bool:
        """Write a dataset into its reservation, or overflow if too big.

        Returns True when the payload fit its reservation, False when it
        was appended to the overflow region instead (the caller then
        queues the write as the paper's extra trailing I/O task — timing
        is the caller's concern; the data lands correctly either way).

        ``checksum`` is the payload's CRC32C as computed upstream (at
        compression time); when given, the write re-checks it so a
        payload corrupted between compression and I/O is rejected here
        instead of poisoning the file.
        """
        actual = crc32c(payload)
        if checksum is not None and checksum != actual:
            raise ValueError(
                f"dataset {name!r}: payload failed its end-to-end "
                f"checksum before write (declared {checksum:#010x}, "
                f"computed {actual:#010x})"
            )
        with self._lock:
            self._check_open()
            entry = self._entries.get(name)
            if entry is None:
                raise KeyError(f"dataset {name!r} was never reserved")
            if entry.nbytes:
                raise ValueError(f"dataset {name!r} already written")
            if len(payload) <= entry.reserved:
                offset = entry.offset
                overflowed = False
            else:
                offset = self._cursor
                self._cursor += len(payload)
                overflowed = True
            entry.offset = offset
            entry.nbytes = len(payload)
            entry.overflowed = overflowed
            entry.crc32c = actual
        os.pwrite(self._fd, payload, offset)
        return not overflowed

    def commit_external(
        self, name: str, nbytes: int, checksum: int | None = None
    ) -> None:
        """Record that ``nbytes`` were written into ``name``'s reservation
        by someone else (another process pwriting :attr:`data_path` — the
        parallel-dump path).  The payload must fit the reservation; the
        overflow path needs the writer's own cursor and stays in-process.
        ``checksum`` (CRC32C, when the external writer computed one) is
        recorded in the footer so readers can still verify the bytes.
        """
        with self._lock:
            self._check_open()
            entry = self._entries.get(name)
            if entry is None:
                raise KeyError(f"dataset {name!r} was never reserved")
            if entry.nbytes:
                raise ValueError(f"dataset {name!r} already written")
            if nbytes > entry.reserved:
                raise ValueError(
                    f"external write of {nbytes} exceeds reservation "
                    f"{entry.reserved} for {name!r}"
                )
            entry.nbytes = nbytes
            entry.crc32c = checksum

    def write_unreserved(
        self, name: str, payload: bytes, checksum: int | None = None
    ) -> None:
        """Append a dataset that never had a reservation."""
        actual = crc32c(payload)
        if checksum is not None and checksum != actual:
            raise ValueError(
                f"dataset {name!r}: payload failed its end-to-end "
                f"checksum before write (declared {checksum:#010x}, "
                f"computed {actual:#010x})"
            )
        with self._lock:
            self._check_open()
            if name in self._entries:
                raise ValueError(f"dataset {name!r} already exists")
            offset = self._cursor
            self._cursor += len(payload)
            self._entries[name] = DatasetEntry(
                name=name,
                offset=offset,
                nbytes=len(payload),
                reserved=0,
                overflowed=False,
                crc32c=actual,
            )
        os.pwrite(self._fd, payload, offset)

    @property
    def overflow_bytes(self) -> int:
        with self._lock:
            return sum(
                e.nbytes for e in self._entries.values() if e.overflowed
            )

    def close(self) -> None:
        """Write the footer index, fsync, and publish under the final name."""
        with self._lock:
            if self._closed:
                return
            index = {
                name: {
                    "offset": e.offset,
                    "nbytes": e.nbytes,
                    "reserved": e.reserved,
                    "overflowed": e.overflowed,
                    "crc32c": e.crc32c,
                }
                for name, e in self._entries.items()
            }
            footer = json.dumps(index).encode()
            os.pwrite(self._fd, footer, self._cursor)
            tail = struct.pack(
                _FOOTER_STRUCT, len(footer), crc32c(footer), _MAGIC
            )
            os.pwrite(self._fd, tail, self._cursor + len(footer))
            if self._durable:
                os.fsync(self._fd)
            os.close(self._fd)
            os.replace(self._data_path, self._path)
            if self._durable:
                fsync_dir(os.path.dirname(self._path))
            self._closed = True

    def abort(self) -> None:
        """Drop the in-progress temp file without publishing anything."""
        with self._lock:
            if self._closed:
                return
            os.close(self._fd)
            try:
                os.unlink(self._data_path)
            except OSError:
                pass
            self._closed = True

    def __enter__(self) -> "SharedFileWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("writer is closed")


class SharedFileReader:
    """Reader for containers produced by :class:`SharedFileWriter`."""

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = os.fspath(path)
        self._fd = os.open(self._path, os.O_RDONLY)
        try:
            self.entries = self._load_index()
        except Exception:
            os.close(self._fd)
            raise

    def _load_index(self) -> dict[str, DatasetEntry]:
        size = os.fstat(self._fd).st_size
        min_tail = struct.calcsize(_FOOTER_STRUCT_V1)
        if size < len(_MAGIC) + min_tail:
            raise ValueError(
                f"{self._path}: file too small to be a shared container"
            )
        head = os.pread(self._fd, len(_MAGIC), 0)
        magic = os.pread(self._fd, 8, size - 8)
        if head not in (_MAGIC, _MAGIC_V1) or magic not in (
            _MAGIC,
            _MAGIC_V1,
        ):
            raise ValueError(f"{self._path}: not a shared container file")
        if magic == _MAGIC:
            tail_size = struct.calcsize(_FOOTER_STRUCT)
            if size < len(_MAGIC) + tail_size:
                raise ValueError(
                    f"{self._path}: file too small to be a shared container"
                )
            tail = os.pread(self._fd, tail_size, size - tail_size)
            footer_len, footer_crc, _ = struct.unpack(_FOOTER_STRUCT, tail)
        else:
            tail_size = struct.calcsize(_FOOTER_STRUCT_V1)
            tail = os.pread(self._fd, tail_size, size - tail_size)
            footer_len, _ = struct.unpack(_FOOTER_STRUCT_V1, tail)
            footer_crc = None
        if footer_len > size - tail_size - len(_MAGIC):
            raise ValueError(
                f"{self._path}: footer length {footer_len} exceeds "
                f"file size {size}"
            )
        footer = os.pread(
            self._fd, footer_len, size - tail_size - footer_len
        )
        if footer_crc is not None:
            actual = crc32c(footer)
            if actual != footer_crc:
                raise ValueError(
                    f"{self._path}: container footer failed its checksum "
                    f"(stored {footer_crc:#010x}, read {actual:#010x})"
                )
        try:
            raw = json.loads(footer.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(
                f"{self._path}: container footer is not valid JSON: {exc}"
            ) from exc
        return {
            name: DatasetEntry(name=name, **info)
            for name, info in raw.items()
        }

    def names(self) -> list[str]:
        return sorted(self.entries)

    def read(self, name: str, verify: bool = True) -> bytes:
        """Read one dataset; with ``verify`` (default) the stored CRC,
        when present, is checked and corruption raises ``ValueError``."""
        entry = self.entries[name]
        payload = os.pread(self._fd, entry.nbytes, entry.offset)
        if len(payload) != entry.nbytes:
            raise ValueError(
                f"dataset {name!r} truncated: footer declares "
                f"{entry.nbytes} bytes at offset {entry.offset}, "
                f"file holds {len(payload)}"
            )
        if verify and entry.crc32c is not None:
            actual = crc32c(payload)
            if actual != entry.crc32c:
                raise ValueError(
                    f"dataset {name!r} failed its checksum at offset "
                    f"{entry.offset} (stored {entry.crc32c:#010x}, "
                    f"read {actual:#010x})"
                )
        elif verify and entry.crc32 is not None:
            actual = zlib.crc32(payload)
            if actual != entry.crc32:
                raise ValueError(
                    f"dataset {name!r} failed its checksum at offset "
                    f"{entry.offset} (stored {entry.crc32:#x}, "
                    f"read {actual:#x})"
                )
        return payload

    def close(self) -> None:
        os.close(self._fd)

    def __enter__(self) -> "SharedFileReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
