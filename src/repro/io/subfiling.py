"""Multi-file (subfiling) storage — the paper's Section 6 future work.

One shared file minimizes metadata but serializes some filesystem-level
locking; HDF5's subfiling splits a logical file across several physical
subfiles (the paper cites runs with up to 4,096 processes per shared
file, and names multi-file support as future work).  This module provides
that layout with the same reserve/write/read interface as
:mod:`repro.io.hdf5like`:

* datasets are assigned to subfiles round-robin at reservation time;
* each subfile is an ordinary shared container;
* a JSON index file maps dataset -> subfile so readers stay one-hop.
"""

from __future__ import annotations

import json
import os

from ..durability.atomic import DurableFile
from .hdf5like import SharedFileReader, SharedFileWriter

__all__ = ["SubfileWriter", "SubfileReader"]

_INDEX_NAME = "index.json"
_SUBFILE_PATTERN = "subfile_{:04d}.rpio"


class SubfileWriter:
    """Writer spreading datasets across ``num_subfiles`` containers."""

    def __init__(self, directory, num_subfiles: int = 4) -> None:
        if num_subfiles < 1:
            raise ValueError("num_subfiles must be >= 1")
        self._directory = os.fspath(directory)
        os.makedirs(self._directory, exist_ok=True)
        self._writers = [
            SharedFileWriter(
                os.path.join(
                    self._directory, _SUBFILE_PATTERN.format(i)
                )
            )
            for i in range(num_subfiles)
        ]
        self._assignment: dict[str, int] = {}
        self._next = 0
        self._closed = False

    @property
    def num_subfiles(self) -> int:
        return len(self._writers)

    def reserve(self, name: str, predicted_nbytes: int) -> int:
        """Assign ``name`` to a subfile and reserve space there."""
        if name in self._assignment:
            raise ValueError(f"dataset {name!r} already reserved")
        subfile = self._next
        self._next = (self._next + 1) % len(self._writers)
        self._assignment[name] = subfile
        return self._writers[subfile].reserve(name, predicted_nbytes)

    def write(
        self, name: str, payload: bytes, checksum: int | None = None
    ) -> bool:
        subfile = self._assignment.get(name)
        if subfile is None:
            raise KeyError(f"dataset {name!r} was never reserved")
        return self._writers[subfile].write(name, payload, checksum=checksum)

    def write_unreserved(
        self, name: str, payload: bytes, checksum: int | None = None
    ) -> None:
        if name in self._assignment:
            raise ValueError(f"dataset {name!r} already exists")
        subfile = self._next
        self._next = (self._next + 1) % len(self._writers)
        self._assignment[name] = subfile
        self._writers[subfile].write_unreserved(
            name, payload, checksum=checksum
        )

    def close(self) -> None:
        if self._closed:
            return
        for writer in self._writers:
            writer.close()
        # The index is the directory's commit point: written atomically
        # last, so a crash mid-dump leaves no readable-but-torn layout.
        index_path = os.path.join(self._directory, _INDEX_NAME)
        with DurableFile(index_path, "w") as fh:
            json.dump(
                {
                    "num_subfiles": len(self._writers),
                    "datasets": self._assignment,
                },
                fh,
            )
        self._closed = True

    def __enter__(self) -> "SubfileWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SubfileReader:
    """Reader resolving datasets through the subfiling index."""

    def __init__(self, directory) -> None:
        self._directory = os.fspath(directory)
        index_path = os.path.join(self._directory, _INDEX_NAME)
        with open(index_path, encoding="utf-8") as fh:
            index = json.load(fh)
        self._assignment: dict[str, int] = index["datasets"]
        self._readers = [
            SharedFileReader(
                os.path.join(self._directory, _SUBFILE_PATTERN.format(i))
            )
            for i in range(index["num_subfiles"])
        ]

    @property
    def entries(self) -> dict:
        merged = {}
        for reader in self._readers:
            merged.update(reader.entries)
        return merged

    def names(self) -> list[str]:
        return sorted(self._assignment)

    def read(self, name: str, verify: bool = True) -> bytes:
        subfile = self._assignment.get(name)
        if subfile is None:
            raise KeyError(f"dataset {name!r} not in index")
        return self._readers[subfile].read(name, verify=verify)

    def close(self) -> None:
        for reader in self._readers:
            reader.close()

    def __enter__(self) -> "SubfileReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
