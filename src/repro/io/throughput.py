"""Parallel-filesystem write-time model.

Captures the four effects the evaluation depends on:

1. **Aggregate node bandwidth is shared.**  The parallel filesystem
   delivers a roughly fixed per-node write bandwidth; with ``p``
   processes writing in the same windows each sees ``~1/p`` of it.
2. **Per-operation latency.**  Every write pays a fixed cost (client
   round-trips, lock acquisition on the shared file), which is why
   sub-megabyte writes crater throughput (Section 4.2) and why the
   compressed data buffer pays off (Figure 5).
3. **Linearity above the latency knee.**  Large writes stream at the
   shared bandwidth.
4. **Shared-file contention at scale.**  More nodes writing one shared
   file costs lock/metadata contention, degrading each process's share —
   this is why the baseline and async-only solutions slow down in the
   Figure 11 weak-scaling sweep while the compressed solution, moving
   16-274x less data, stays flat.

``write_time(nbytes) = latency + nbytes / per_process_bandwidth`` with
``per_process_bandwidth = node_bw / p / (1 + c * log2(num_nodes))``.

The default constants approximate one Summit node's share of GPFS while a
large job is writing: ~0.7 GB/s per node (the paper's runs see far less
than the 2.5 GB/s peak because the file system is shared), 4 ms per
operation, 10 % contention growth per node doubling.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

__all__ = ["IoThroughputModel", "SUMMIT_LIKE_IO"]


@dataclass(frozen=True)
class IoThroughputModel:
    """Calibrated write-duration model for one process."""

    node_bandwidth_bytes_per_s: float = 0.7e9
    processes_per_node: int = 4
    write_latency_s: float = 0.004
    num_nodes: int = 1
    scale_contention: float = 0.10
    num_subfiles: int = 1

    def __post_init__(self) -> None:
        if self.node_bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.processes_per_node < 1:
            raise ValueError("processes_per_node must be >= 1")
        if self.write_latency_s < 0:
            raise ValueError("latency must be non-negative")
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.scale_contention < 0:
            raise ValueError("scale_contention must be non-negative")
        if self.num_subfiles < 1:
            raise ValueError("num_subfiles must be >= 1")

    @property
    def contention(self) -> float:
        """Shared-file contention multiplier (1.0 on a single node).

        Subfiling partitions the writers: ``k`` subfiles see contention
        as if ``num_nodes / k`` nodes shared each file (the Section 6
        multi-file future work, modelled end to end).
        """
        effective_nodes = max(1.0, self.num_nodes / self.num_subfiles)
        return 1.0 + self.scale_contention * math.log2(effective_nodes)

    @property
    def per_process_bandwidth(self) -> float:
        return (
            self.node_bandwidth_bytes_per_s
            / self.processes_per_node
            / self.contention
        )

    def write_time(self, nbytes: int) -> float:
        """Predicted duration of one write of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.write_latency_s + nbytes / self.per_process_bandwidth

    def effective_throughput(self, nbytes: int) -> float:
        """Achieved bytes/s for one write of this size."""
        if nbytes <= 0:
            return 0.0
        return nbytes / self.write_time(nbytes)

    def with_processes(self, processes_per_node: int) -> "IoThroughputModel":
        """Same filesystem, different node occupancy."""
        return dataclasses.replace(
            self, processes_per_node=processes_per_node
        )

    def with_nodes(self, num_nodes: int) -> "IoThroughputModel":
        """Same filesystem, different job footprint."""
        return dataclasses.replace(self, num_nodes=num_nodes)

    def with_subfiles(self, num_subfiles: int) -> "IoThroughputModel":
        """Same filesystem, logical file split across subfiles."""
        return dataclasses.replace(self, num_subfiles=num_subfiles)

    def with_bandwidth_factor(self, factor: float) -> "IoThroughputModel":
        """A degraded view of the same filesystem during a contention
        burst: this process's bandwidth share is scaled by ``factor``
        (0 < factor <= 1; latency is unaffected)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")
        return dataclasses.replace(
            self,
            node_bandwidth_bytes_per_s=(
                self.node_bandwidth_bytes_per_s * factor
            ),
        )


#: Defaults approximating one Summit node's share of GPFS under load.
SUMMIT_LIKE_IO = IoThroughputModel()
