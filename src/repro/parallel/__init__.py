"""Real multi-process parallel execution (the MPI-rank stand-in)."""

from .shared_dump import ParallelDumpStats, parallel_dump, parallel_verify

__all__ = ["ParallelDumpStats", "parallel_dump", "parallel_verify"]
