"""Real multi-process parallel dump into one shared file.

The campaign simulator models parallelism; this module *performs* it, at
intra-node scale, with ``multiprocessing`` standing in for MPI ranks (the
closest laptop-scale equivalent of the paper's per-GPU processes):

* **Phase 1 (parallel compression)** — each worker process generates its
  own rank's partition from the application model, compresses every
  fine-grained block, spools the payloads to a per-rank temporary file,
  and reports exact sizes.
* **Phase 2 (offset assignment)** — the parent reserves a contiguous
  region per block in the shared container, exactly as the framework
  reserves offsets from predicted sizes (here sizes are exact, so the
  overflow path is never needed).
* **Phase 3 (parallel write)** — workers reopen the shared file and
  ``pwrite`` their payloads concurrently at their assigned offsets — the
  independent-offset writes that make shared-file parallel I/O scale.

The file that results is an ordinary shared container; any reader
(``SharedFileReader``, ``load``-style helpers, the verification pass
below) can open it.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass

import numpy as np

from ..apps.base import ApplicationModel
from ..compression import (
    CompressedBlock,
    SZCompressor,
    max_abs_error,
    plan_blocks,
    reassemble_field,
    slice_field,
)
from ..durability.checksum import crc32c
from ..io import SharedFileReader, SharedFileWriter

__all__ = ["ParallelDumpStats", "parallel_dump", "parallel_verify"]


@dataclass(frozen=True)
class ParallelDumpStats:
    """Outcome of one parallel dump."""

    raw_bytes: int
    compressed_bytes: int
    num_blocks: int
    num_workers: int
    compression_wall_s: float
    write_wall_s: float

    @property
    def compression_ratio(self) -> float:
        return self.raw_bytes / max(1, self.compressed_bytes)


def _dataset_name(rank: int, field: str, block_index: int) -> str:
    return f"rank{rank}/{field}/{block_index}"


def _compress_rank(args):
    """Phase 1 worker: compress one rank's partition to a spool file."""
    app, rank, iteration, fields, block_bytes, spool_dir = args
    compressor = SZCompressor()
    spool_path = os.path.join(spool_dir, f"rank{rank}.spool")
    manifest = []  # (dataset, spool_offset, nbytes, crc32c)
    raw_bytes = 0
    offset = 0
    with open(spool_path, "wb") as spool:
        for field_name in fields:
            data = app.generate_field(field_name, rank, iteration)
            bound = app.field(field_name).error_bound
            for spec in plan_blocks(
                field_name, data.shape, data.itemsize, block_bytes
            ):
                block = np.ascontiguousarray(slice_field(data, spec))
                payload = compressor.compress(block, bound).to_bytes()
                spool.write(payload)
                manifest.append(
                    (
                        _dataset_name(rank, field_name, spec.block_index),
                        offset,
                        len(payload),
                        crc32c(payload),
                    )
                )
                offset += len(payload)
                raw_bytes += block.nbytes
    return rank, spool_path, manifest, raw_bytes


def _write_rank(args):
    """Phase 3 worker: pwrite spooled payloads at assigned offsets."""
    spool_path, shared_path, placements = args
    fd = os.open(shared_path, os.O_WRONLY)
    try:
        with open(spool_path, "rb") as spool:
            for spool_offset, nbytes, file_offset in placements:
                spool.seek(spool_offset)
                os.pwrite(fd, spool.read(nbytes), file_offset)
    finally:
        os.close(fd)
    return len(placements)


def parallel_dump(
    path,
    app: ApplicationModel,
    ranks: int,
    iteration: int,
    fields: tuple[str, ...] | None = None,
    block_bytes: int = 64 * 1024,
    num_workers: int | None = None,
) -> ParallelDumpStats:
    """Dump ``ranks`` partitions of ``app`` into one shared file.

    Workers are real OS processes; compression and the final writes both
    run concurrently.  Returns aggregate statistics.
    """
    if ranks < 1:
        raise ValueError("ranks must be >= 1")
    field_names = fields or tuple(f.name for f in app.fields)
    num_workers = num_workers or min(ranks, os.cpu_count() or 1)

    spool_dir = tempfile.mkdtemp(prefix="repro-spool-")
    ctx = multiprocessing.get_context("fork")
    jobs = [
        (app, rank, iteration, field_names, block_bytes, spool_dir)
        for rank in range(ranks)
    ]
    t0 = time.perf_counter()
    with ctx.Pool(num_workers) as pool:
        compressed = pool.map(_compress_rank, jobs)
    compression_wall = time.perf_counter() - t0

    writer = SharedFileWriter(path)
    placements_per_rank: dict[int, list[tuple[int, int, int]]] = {}
    spool_paths: dict[int, str] = {}
    compressed_bytes = 0
    raw_bytes = 0
    num_blocks = 0
    for rank, spool_path, manifest, rank_raw in compressed:
        spool_paths[rank] = spool_path
        raw_bytes += rank_raw
        placements = []
        for dataset, spool_offset, nbytes, _ in manifest:
            file_offset = writer.reserve(dataset, nbytes)
            placements.append((spool_offset, nbytes, file_offset))
            compressed_bytes += nbytes
            num_blocks += 1
        placements_per_rank[rank] = placements

    # Workers pwrite the writer's in-progress temp file; the container
    # only appears at the final path once close() publishes it whole.
    t0 = time.perf_counter()
    write_jobs = [
        (spool_paths[rank], writer.data_path, placements_per_rank[rank])
        for rank in range(ranks)
    ]
    with ctx.Pool(num_workers) as pool:
        pool.map(_write_rank, write_jobs)
    write_wall = time.perf_counter() - t0

    for rank, _, manifest, _ in compressed:
        for dataset, _, nbytes, payload_crc in manifest:
            writer.commit_external(dataset, nbytes, checksum=payload_crc)
    writer.close()
    for spool_path in spool_paths.values():
        os.unlink(spool_path)
    os.rmdir(spool_dir)

    return ParallelDumpStats(
        raw_bytes=raw_bytes,
        compressed_bytes=compressed_bytes,
        num_blocks=num_blocks,
        num_workers=num_workers,
        compression_wall_s=compression_wall,
        write_wall_s=write_wall,
    )


def parallel_verify(
    path,
    app: ApplicationModel,
    ranks: int,
    iteration: int,
    fields: tuple[str, ...] | None = None,
    block_bytes: int = 64 * 1024,
) -> dict[str, float]:
    """Re-read a parallel dump and verify every rank's error bounds.

    Returns the worst absolute error per field (all of which are asserted
    to respect the configured bounds).
    """
    field_names = fields or tuple(f.name for f in app.fields)
    compressor = SZCompressor()
    worst: dict[str, float] = {name: 0.0 for name in field_names}
    with SharedFileReader(path) as reader:
        for rank in range(ranks):
            for field_name in field_names:
                original = app.generate_field(field_name, rank, iteration)
                bound = app.field(field_name).error_bound
                blocks = []
                for spec in plan_blocks(
                    field_name,
                    original.shape,
                    original.itemsize,
                    block_bytes,
                ):
                    payload = reader.read(
                        _dataset_name(rank, field_name, spec.block_index)
                    )
                    block = CompressedBlock.from_bytes(payload)
                    blocks.append((spec, compressor.decompress(block)))
                restored = reassemble_field(blocks)
                error = max_abs_error(original, restored)
                if error > bound * (1 + 1e-9):
                    raise AssertionError(
                        f"rank {rank} field {field_name}: error {error} "
                        f"exceeds bound {bound}"
                    )
                worst[field_name] = max(worst[field_name], error)
    return worst
