"""Fault injection and graceful degradation for the campaign runtime.

The paper's premise — concealing compression + I/O inside compute gaps —
is evaluated under Gaussian noise only (Section 5.4.1).  This package
asks the harder question: does concealment survive a *misbehaving*
filesystem?  It provides

* :class:`FaultPlan` / :class:`FaultInjector` — seeded, deterministic
  injection of I/O stalls, transient write errors, heavy-tailed
  bandwidth collapse, compression-block failures, and straggler ranks;
* :class:`RetryPolicy` — exponential backoff + jitter with a per-write
  deadline, applied to simulated and real writes;
* :class:`CircuitBreaker` — closed/open/half-open failure isolation for
  the service layer's engine and disk-cache call paths;
* :class:`ResilienceLog` / :class:`ResilienceReport` — the per-campaign
  tally of injected faults, retries, fallbacks, overrun iterations, and
  deferred bytes, exactly reproducible from ``--faults spec.yaml --seed N``;
* :func:`load_fault_spec` — declarative YAML fault campaigns validated
  at load time with errors naming the bad field.
"""

from .breaker import BreakerOpenError, CircuitBreaker
from .faults import (
    WORKER_FAULT_KINDS,
    BandwidthFault,
    CompressionFault,
    FaultInjector,
    FaultPlan,
    ProcessKillFault,
    StallFault,
    StragglerFault,
    WorkerFault,
    WriteErrorFault,
)
from .report import ResilienceLog, ResilienceReport
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy, WriteFailedError
from .spec import (
    FaultSpec,
    load_fault_spec,
    load_spec_data,
    parse_fault_spec,
)

__all__ = [
    "BreakerOpenError",
    "CircuitBreaker",
    "FaultPlan",
    "FaultInjector",
    "StallFault",
    "WriteErrorFault",
    "BandwidthFault",
    "CompressionFault",
    "StragglerFault",
    "ProcessKillFault",
    "WorkerFault",
    "WORKER_FAULT_KINDS",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "WriteFailedError",
    "ResilienceLog",
    "ResilienceReport",
    "FaultSpec",
    "parse_fault_spec",
    "load_fault_spec",
    "load_spec_data",
]
