"""Circuit breaker: fail fast while a dependency is broken, probe later.

The service layer wraps two failure-prone dependencies — the solver
engine call path and the memo cache's disk tier — in a classic
closed/open/half-open breaker.  While the dependency is healthy
(*closed*) calls flow through and outcomes are recorded into a sliding
window; once the window's failure rate crosses ``failure_threshold``
the breaker *opens* and callers are refused instantly (no queue slot,
no worker thread, no blocking on a dead disk).  After ``cooldown_s``
the breaker goes *half-open* and admits exactly one probe call: a
success closes the circuit and clears the window, a failure re-opens
it for another cooldown.

The breaker never sleeps, never spawns threads, and takes an injectable
monotonic clock, so every transition is unit-testable without wall
time.  All methods are thread-safe.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

__all__ = ["BreakerOpenError", "CircuitBreaker"]

#: Breaker state names (also the wire form in ``/health`` and ``/status``).
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class BreakerOpenError(RuntimeError):
    """A call was refused because the circuit breaker is open.

    Carries the breaker's name and the remaining cooldown so callers
    can produce a structured rejection with an honest retry hint.
    """

    def __init__(self, name: str, retry_after_s: float | None) -> None:
        super().__init__(
            f"circuit breaker {name!r} is open"
            + (
                f" (retry in {retry_after_s:.3f}s)"
                if retry_after_s is not None
                else ""
            )
        )
        self.name = name
        self.retry_after_s = retry_after_s


class CircuitBreaker:
    """Closed/open/half-open breaker over a sliding outcome window.

    Attributes:
        name: label used in errors, telemetry, and status payloads.
        failure_threshold: open once the window's failure rate reaches
            this fraction (with at least ``min_calls`` samples).
        window: how many recent outcomes the failure rate is computed
            over.
        min_calls: never open on fewer than this many samples — one
            early failure must not condemn the dependency.
        cooldown_s: how long an open breaker waits before admitting a
            half-open probe.
    """

    def __init__(
        self,
        name: str = "breaker",
        *,
        failure_threshold: float = 0.5,
        window: int = 8,
        min_calls: int = 4,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                "CircuitBreaker.failure_threshold must be in (0, 1], "
                f"got {failure_threshold!r}"
            )
        if window < 1:
            raise ValueError(
                f"CircuitBreaker.window must be >= 1, got {window!r}"
            )
        if min_calls < 1:
            raise ValueError(
                f"CircuitBreaker.min_calls must be >= 1, got {min_calls!r}"
            )
        if cooldown_s <= 0:
            raise ValueError(
                f"CircuitBreaker.cooldown_s must be > 0, got {cooldown_s!r}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.window = window
        self.min_calls = min_calls
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._state = STATE_CLOSED
        self._opened_at = 0.0
        self._probe_inflight = False
        self._successes = 0
        self._failures = 0
        self._rejected = 0
        self._opens = 0

    # ------------------------------------------------------------------
    def _transition(self, new_state: str) -> None:
        """Move to ``new_state`` (caller holds the lock)."""
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        if new_state == STATE_OPEN:
            self._opened_at = self._clock()
            self._opens += 1
        if new_state == STATE_CLOSED:
            self._outcomes.clear()
        self._probe_inflight = False
        if self._on_transition is not None:
            self._on_transition(old, new_state)

    def _effective_state(self) -> str:
        """The time-aware state (caller holds the lock); does not admit
        a probe — only :meth:`allow` does that."""
        if (
            self._state == STATE_OPEN
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            return STATE_HALF_OPEN
        return self._state

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half-open`` (read-only, time-aware)."""
        with self._lock:
            return self._effective_state()

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        Closed: always.  Open: no, until the cooldown elapses.  After
        the cooldown exactly one caller is admitted as the half-open
        probe; concurrent callers keep getting refused until that probe
        reports an outcome.
        """
        with self._lock:
            state = self._effective_state()
            if state == STATE_CLOSED:
                return True
            if state == STATE_HALF_OPEN:
                if self._state == STATE_OPEN:
                    self._transition(STATE_HALF_OPEN)
                if not self._probe_inflight:
                    self._probe_inflight = True
                    return True
            self._rejected += 1
            return False

    def record_success(self) -> None:
        """An allowed call succeeded."""
        with self._lock:
            self._successes += 1
            if self._state == STATE_HALF_OPEN:
                self._transition(STATE_CLOSED)
                return
            self._outcomes.append(False)

    def record_failure(self) -> None:
        """An allowed call failed; may open (or re-open) the circuit."""
        with self._lock:
            self._failures += 1
            if self._state == STATE_HALF_OPEN:
                # The probe failed: the dependency is still broken.
                self._transition(STATE_OPEN)
                return
            self._outcomes.append(True)
            if self._state == STATE_CLOSED and self._should_open():
                self._transition(STATE_OPEN)

    def _should_open(self) -> bool:
        if len(self._outcomes) < self.min_calls:
            return False
        rate = sum(self._outcomes) / len(self._outcomes)
        return rate >= self.failure_threshold

    def retry_after_s(self) -> float | None:
        """Seconds until the next probe is admitted (None when closed)."""
        with self._lock:
            if self._state != STATE_OPEN:
                return None
            remaining = self.cooldown_s - (self._clock() - self._opened_at)
            return max(0.0, remaining)

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` through the breaker; :class:`BreakerOpenError`
        when refused, outcome recorded otherwise."""
        if not self.allow():
            raise BreakerOpenError(self.name, self.retry_after_s())
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """A JSON-safe snapshot for status payloads and telemetry."""
        with self._lock:
            window = list(self._outcomes)
            return {
                "state": self._effective_state(),
                "failure_threshold": self.failure_threshold,
                "window": self.window,
                "min_calls": self.min_calls,
                "cooldown_s": self.cooldown_s,
                "successes": self._successes,
                "failures": self._failures,
                "rejected": self._rejected,
                "opens": self._opens,
                "window_failure_rate": (
                    round(sum(window) / len(window), 6) if window else 0.0
                ),
            }
