"""Deterministic fault injection for the campaign runtime.

The paper's evaluation perturbs predictions only with Gaussian noise
(Section 5.4.1), but real parallel filesystems misbehave in structured
ways: bursty OST contention stalls individual writes, transient errors
force retries, aggregate bandwidth collapses under interference, and a
straggler rank drags the whole iteration (independent writes make the
slowest rank decisive, Section 4.4).  This module models those failure
classes so a campaign can answer "does concealment survive a misbehaving
filesystem" end to end.

Every decision is drawn from a :func:`numpy.random.default_rng` seeded
with ``(seed, fault-kind, key...)``, so injections are a pure function of
the seed and the operation identity — independent of call order, query
count, and which layer asks.  Repeated queries for the same key return
the cached first draw and are counted once in the
:class:`~repro.resilience.report.ResilienceLog`, which keeps the
per-campaign resilience report exactly reproducible from the command
line (``campaign --faults spec.yaml --seed N``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..durability.crashpoints import CRASH_POINTS
from .report import ResilienceLog

__all__ = [
    "StallFault",
    "WriteErrorFault",
    "BandwidthFault",
    "CompressionFault",
    "StragglerFault",
    "ProcessKillFault",
    "WorkerFault",
    "WORKER_FAULT_KINDS",
    "FaultPlan",
    "FaultInjector",
]


def _check_probability(owner: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(
            f"fault spec: {owner}.probability must be in [0, 1], "
            f"got {value!r}"
        )


@dataclass(frozen=True)
class StallFault:
    """Bursty I/O stalls: a write occasionally hangs for a while.

    When a stall hits (per-task ``probability``), its length is a
    heavy-tailed draw ``mean_duration_s * (0.1 + Pareto(tail_alpha))`` —
    most stalls are short, a few are catastrophic, matching observed OST
    contention bursts.
    """

    probability: float = 0.0
    mean_duration_s: float = 0.5
    tail_alpha: float = 2.0

    def __post_init__(self) -> None:
        _check_probability("stall", self.probability)
        if self.mean_duration_s <= 0:
            raise ValueError(
                "fault spec: stall.mean_duration_s must be positive, "
                f"got {self.mean_duration_s!r}"
            )
        if self.tail_alpha <= 0:
            raise ValueError(
                "fault spec: stall.tail_alpha must be positive, "
                f"got {self.tail_alpha!r}"
            )


@dataclass(frozen=True)
class WriteErrorFault:
    """Transient write errors: an attempt fails and must be retried.

    Each attempt fails independently with ``probability``, so a retry
    policy with ``n`` attempts succeeds unless ``probability**n`` comes
    up — the long tail that exercises the graceful-degradation path.
    """

    probability: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("write_error", self.probability)


@dataclass(frozen=True)
class BandwidthFault:
    """Heavy-tailed bandwidth collapse during contention bursts.

    With ``probability`` per (rank, window), the effective bandwidth
    share drops to ``factor = max(min_factor, 1 / (1 + Pareto(tail_alpha)))``
    of nominal — writes in that window take ``1 / factor`` times longer.
    """

    probability: float = 0.0
    min_factor: float = 0.2
    tail_alpha: float = 1.5

    def __post_init__(self) -> None:
        _check_probability("bandwidth", self.probability)
        if not 0.0 < self.min_factor <= 1.0:
            raise ValueError(
                "fault spec: bandwidth.min_factor must be in (0, 1], "
                f"got {self.min_factor!r}"
            )
        if self.tail_alpha <= 0:
            raise ValueError(
                "fault spec: bandwidth.tail_alpha must be positive, "
                f"got {self.tail_alpha!r}"
            )


@dataclass(frozen=True)
class CompressionFault:
    """A compression block fails (bad convergence, codec error).

    The runtime degrades gracefully: the block is written raw instead —
    ratio 1, no compression task — and the fallback is recorded.
    """

    probability: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("compression", self.probability)


@dataclass(frozen=True)
class StragglerFault:
    """Persistently slow ranks (bad node, degraded NIC, thermal limits).

    Every I/O (``io_factor``) and compression (``compression_factor``)
    duration on the listed ranks is multiplied by the given factor.
    """

    ranks: tuple[int, ...] = ()
    io_factor: float = 1.0
    compression_factor: float = 1.0

    def __post_init__(self) -> None:
        if any(r < 0 for r in self.ranks):
            raise ValueError(
                "fault spec: straggler.ranks must be non-negative, "
                f"got {list(self.ranks)!r}"
            )
        if self.io_factor < 1.0:
            raise ValueError(
                "fault spec: straggler.io_factor must be >= 1, "
                f"got {self.io_factor!r}"
            )
        if self.compression_factor < 1.0:
            raise ValueError(
                "fault spec: straggler.compression_factor must be >= 1, "
                f"got {self.compression_factor!r}"
            )


@dataclass(frozen=True)
class ProcessKillFault:
    """Kill the whole process at a durability crash point.

    The chaos-testing fault: when the campaign journal passes crash
    point ``point`` during ``iteration`` (``-1`` = any iteration), the
    process dies via ``os._exit`` — no cleanup, no atexit, exactly like
    a node loss.  A resumed run must recover every committed iteration.
    """

    iteration: int = -1
    point: str = "post-commit"
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.point not in CRASH_POINTS:
            raise ValueError(
                f"fault spec: process_kill.point must be one of "
                f"{list(CRASH_POINTS)}, got {self.point!r}"
            )
        if self.iteration < -1:
            raise ValueError(
                "fault spec: process_kill.iteration must be >= -1 "
                f"(-1 = any iteration), got {self.iteration!r}"
            )
        _check_probability("process_kill", self.probability)


#: Real-plane worker fault kinds (see :class:`WorkerFault`).
WORKER_FAULT_KINDS = ("kill", "stall", "error")


@dataclass(frozen=True)
class WorkerFault:
    """Real-plane worker faults: break the pool, not the model.

    Unlike every other fault class, this one is executed by the
    *physical* data plane (``--engine process``): the parent attaches
    the decision to the rank task it dispatches, and the worker carries
    it out before touching the shared-memory fields.

    Kinds:

    * ``kill`` — the worker SIGKILLs itself (``worker-kill``): the pool
      silently respawns the child and the task's result never resolves,
      which is exactly the permanent-hang scenario the supervisor's
      deadline loop must catch.
    * ``stall`` — the worker sleeps ``stall_s`` seconds before
      compressing (``worker-stall``): a straggler that trips the task
      deadline or speculative re-execution.
    * ``error`` — the worker raises (``callback-error``): the failure
      path that used to vanish inside the pool's error callback.

    ``attempts`` bounds how many launch attempts per task are affected:
    the default 1 faults only the first attempt (exercising retry);
    a large value faults every retry too (exercising the serial
    fallback).  ``rank``/``iteration`` of ``-1`` match any.
    """

    kind: str = "kill"
    rank: int = -1
    iteration: int = -1
    attempts: int = 1
    stall_s: float = 2.0
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ValueError(
                f"fault spec: worker.kind must be one of "
                f"{', '.join(WORKER_FAULT_KINDS)}, got {self.kind!r}"
            )
        if self.rank < -1:
            raise ValueError(
                "fault spec: worker.rank must be >= -1 (-1 = any rank), "
                f"got {self.rank!r}"
            )
        if self.iteration < -1:
            raise ValueError(
                "fault spec: worker.iteration must be >= -1 "
                f"(-1 = any iteration), got {self.iteration!r}"
            )
        if self.attempts < 1:
            raise ValueError(
                "fault spec: worker.attempts must be >= 1, "
                f"got {self.attempts!r}"
            )
        if self.stall_s <= 0:
            raise ValueError(
                "fault spec: worker.stall_s must be positive, "
                f"got {self.stall_s!r}"
            )
        _check_probability("worker", self.probability)


@dataclass(frozen=True)
class FaultPlan:
    """Which fault classes a campaign injects, with their parameters."""

    stall: StallFault | None = None
    write_error: WriteErrorFault | None = None
    bandwidth: BandwidthFault | None = None
    compression: CompressionFault | None = None
    straggler: StragglerFault | None = None
    process_kill: ProcessKillFault | None = None
    worker: WorkerFault | None = None

    @property
    def any_faults(self) -> bool:
        return any(
            (
                self.stall is not None and self.stall.probability > 0,
                self.write_error is not None
                and self.write_error.probability > 0,
                self.bandwidth is not None
                and self.bandwidth.probability > 0,
                self.compression is not None
                and self.compression.probability > 0,
                self.straggler is not None and bool(self.straggler.ranks),
                self.process_kill is not None
                and self.process_kill.probability > 0,
                self.worker is not None and self.worker.probability > 0,
            )
        )


# Per-kind salts keep draws for different fault classes independent even
# when their keys coincide.
_SALTS = {
    "stall": 11,
    "write_error": 13,
    "bandwidth": 17,
    "compression": 19,
    "straggler": 23,
    "retry": 29,
    "process_kill": 31,
    "worker-kill": 37,
    "worker-stall": 41,
    "worker-error": 43,
}


class FaultInjector:
    """Seeded oracle answering "does this operation fail, and how badly?".

    One injector serves a whole campaign.  Each query is keyed by the
    operation's identity (rank, iteration, job/op index); the first draw
    per key is cached, recorded in :attr:`log` when it fires, and
    returned verbatim on every later query — so planning, replay, and
    accounting layers can all consult the same oracle without
    double-counting or perturbing each other's randomness.
    """

    def __init__(
        self,
        plan: FaultPlan,
        seed: int = 0,
        log: ResilienceLog | None = None,
    ) -> None:
        self.plan = plan
        self.seed = seed
        # Resumed runs disarm process-kill injection so a crash point
        # that fired in the original run cannot re-fire during replay.
        self.crash_enabled = True
        self.log = log if log is not None else ResilienceLog()
        if plan.straggler is not None:
            self.log.straggler_ranks = tuple(plan.straggler.ranks)
        self._cache: dict[tuple, float | bool] = {}

    # ------------------------------------------------------------------
    def rng(self, kind: str, *key: int) -> np.random.Generator:
        """Deterministic generator for one (kind, key) decision."""
        return np.random.default_rng(
            (0x5EED, self.seed, _SALTS.get(kind, 97), *key)
        )

    def _cached(
        self,
        kind: str,
        key: tuple[int, ...],
        draw: Callable[[np.random.Generator], float | bool],
        fired: Callable[[float | bool], bool],
    ) -> float | bool:
        cache_key = (kind, *key)
        if cache_key in self._cache:
            return self._cache[cache_key]
        value = draw(self.rng(kind, *key))
        self._cache[cache_key] = value
        if fired(value):
            self.log.record_injection(kind)
        return value

    # ------------------------------------------------------------------
    def io_stall_s(self, rank: int, iteration: int, task: int) -> float:
        """Extra seconds this I/O task hangs (0.0 = no stall)."""
        fault = self.plan.stall
        if fault is None or fault.probability <= 0:
            return 0.0

        def draw(rng: np.random.Generator) -> float:
            if rng.random() >= fault.probability:
                return 0.0
            severity = 0.1 + float(rng.pareto(fault.tail_alpha))
            return fault.mean_duration_s * severity

        return float(
            self._cached(
                "stall", (rank, iteration, task), draw, lambda v: v > 0
            )
        )

    def write_error(self, rank: int, op: int, attempt: int) -> bool:
        """Whether write attempt ``attempt`` of operation ``op`` fails."""
        fault = self.plan.write_error
        if fault is None or fault.probability <= 0:
            return False

        def draw(rng: np.random.Generator) -> bool:
            return bool(rng.random() < fault.probability)

        return bool(
            self._cached(
                "write_error", (rank, op, attempt), draw, lambda v: bool(v)
            )
        )

    def bandwidth_factor(
        self, rank: int, window: int, scope: int = 0
    ) -> float:
        """Effective-bandwidth multiplier in ``window`` (1.0 = nominal).

        ``scope`` namespaces independent window sequences (e.g. the
        per-iteration bursts seen by the noise model vs. the per-write
        bursts seen by the simulated filesystem) so their keys never
        collide.
        """
        fault = self.plan.bandwidth
        if fault is None or fault.probability <= 0:
            return 1.0

        def draw(rng: np.random.Generator) -> float:
            if rng.random() >= fault.probability:
                return 1.0
            severity = float(rng.pareto(fault.tail_alpha))
            return max(fault.min_factor, 1.0 / (1.0 + severity))

        return float(
            self._cached(
                "bandwidth", (scope, rank, window), draw, lambda v: v != 1.0
            )
        )

    def compression_fails(
        self, rank: int, iteration: int, job: int
    ) -> bool:
        """Whether this block's compression task fails (write raw)."""
        fault = self.plan.compression
        if fault is None or fault.probability <= 0:
            return False

        def draw(rng: np.random.Generator) -> bool:
            return bool(rng.random() < fault.probability)

        return bool(
            self._cached(
                "compression",
                (rank, iteration, job),
                draw,
                lambda v: bool(v),
            )
        )

    def process_kill_fires(self, point: str, iteration: int) -> bool:
        """Whether the process dies at this crash point, this iteration.

        ``iteration`` matching is exact unless the fault declares ``-1``
        (any); the ``"report"`` point fires regardless of iteration since
        report writing happens after the loop.  Deterministic: the draw
        is keyed by the point alone, so asking twice cannot flip the
        answer.
        """
        fault = self.plan.process_kill
        if (
            fault is None
            or fault.probability <= 0
            or not self.crash_enabled
        ):
            return False
        if point != fault.point:
            return False
        if point != "report" and fault.iteration not in (-1, iteration):
            return False

        def draw(rng: np.random.Generator) -> bool:
            return bool(rng.random() < fault.probability)

        # Seed tuples must be non-negative; the "report" point's -1
        # sentinel maps to 0 (no real iteration shares the report key
        # because the point index disambiguates).
        point_key = CRASH_POINTS.index(point)
        return bool(
            self._cached(
                "process_kill",
                (point_key, max(0, iteration)),
                draw,
                lambda v: bool(v),
            )
        )

    def worker_fault(
        self, rank: int, iteration: int, attempt: int
    ) -> tuple[str, float] | None:
        """The real-plane fault launch ``attempt`` of this rank task
        carries, or None.

        Returns ``(kind, stall_s)`` — the parent attaches it to the
        dispatched task, so the decision is drawn (and recorded) exactly
        once per ``(rank, iteration, attempt)`` in the parent and the
        worker only executes it.  Attempts at or past the fault's
        ``attempts`` budget are clean, which is what lets a retried task
        eventually succeed.
        """
        fault = self.plan.worker
        if fault is None or fault.probability <= 0:
            return None
        if fault.rank not in (-1, rank):
            return None
        if fault.iteration not in (-1, iteration):
            return None
        if attempt >= fault.attempts:
            return None

        def draw(rng: np.random.Generator) -> bool:
            return bool(rng.random() < fault.probability)

        fired = self._cached(
            f"worker-{fault.kind}",
            (rank, iteration, attempt),
            draw,
            lambda v: bool(v),
        )
        if not fired:
            return None
        return fault.kind, fault.stall_s

    def straggler_io_factor(self, rank: int) -> float:
        """I/O slow-down multiplier for ``rank`` (1.0 = healthy)."""
        fault = self.plan.straggler
        if fault is None or rank not in fault.ranks:
            return 1.0
        return self._straggler(rank, fault.io_factor)

    def straggler_compression_factor(self, rank: int) -> float:
        """Compression slow-down multiplier for ``rank``."""
        fault = self.plan.straggler
        if fault is None or rank not in fault.ranks:
            return 1.0
        return self._straggler(rank, fault.compression_factor)

    def _straggler(self, rank: int, factor: float) -> float:
        # Not random — but mark the rank once so the injection is
        # counted exactly once however many durations it scales.  The
        # decision looks at the plan's factors, not the queried one:
        # a first query for an unaffected dimension (e.g. compression
        # at factor 1.0) must not swallow the rank's record.
        cache_key = ("straggler", rank)
        if cache_key not in self._cache:
            self._cache[cache_key] = True
            fault = self.plan.straggler
            assert fault is not None
            if fault.io_factor != 1.0 or fault.compression_factor != 1.0:
                self.log.record_injection("straggler")
        return factor
