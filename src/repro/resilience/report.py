"""Resilience accounting: what faults fired and how the run coped.

A single mutable :class:`ResilienceLog` rides along with a
:class:`~repro.resilience.faults.FaultInjector` for the whole campaign.
The injector records every fault it fires; the filesystem records
retries and write failures; the runtime and orchestrator record
fallbacks, overrun iterations, and deferred bytes.  At the end
:meth:`ResilienceLog.report` freezes it into a :class:`ResilienceReport`
whose counts are exactly reproducible from ``--faults spec.yaml --seed N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ResilienceLog", "ResilienceReport"]


@dataclass
class ResilienceLog:
    """Mutable fault/recovery tally for one campaign run."""

    injected: dict[str, int] = field(default_factory=dict)
    fallbacks: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    retry_successes: int = 0
    write_failures: int = 0
    degraded_dumps: int = 0
    overrun_iterations: int = 0
    deferred_bytes: int = 0
    deferred_writes: int = 0
    pending_deferred_bytes: int = 0
    straggler_ranks: tuple[int, ...] = ()
    # -- real-plane supervisor tallies (wall-clock facts) --------------
    task_retries: int = 0
    task_deadline_misses: int = 0
    worker_errors: int = 0
    worker_deaths: int = 0
    speculative_launches: int = 0
    speculative_wins: int = 0
    retried_ranks: list[str] = field(default_factory=list)
    fallback_ranks: list[str] = field(default_factory=list)

    def record_injection(self, kind: str, n: int = 1) -> None:
        """Count ``n`` injected faults of ``kind``."""
        self.injected[kind] = self.injected.get(kind, 0) + n

    def record_retry(self) -> None:
        """Count one retried write attempt."""
        self.retries += 1

    def record_retry_success(self) -> None:
        """Count one write that recovered after at least one retry."""
        self.retry_successes += 1

    def record_write_failure(self) -> None:
        """Count one write whose retry budget was exhausted."""
        self.write_failures += 1

    def record_fallback(self, kind: str, nbytes: int = 0) -> None:
        """Count one graceful-degradation decision of ``kind``."""
        self.fallbacks[kind] = self.fallbacks.get(kind, 0) + 1
        if kind.startswith("defer"):
            self.deferred_writes += 1
            self.deferred_bytes += nbytes

    # -- real-plane supervisor events ----------------------------------
    def record_task_retry(self, key: str) -> None:
        """Count one re-executed rank task (``key``: ``it<N>/rank<R>``)."""
        self.task_retries += 1
        if key not in self.retried_ranks:
            self.retried_ranks.append(key)

    def record_task_deadline_miss(self) -> None:
        """Count one rank task that blew its per-task deadline."""
        self.task_deadline_misses += 1

    def record_worker_error(self) -> None:
        """Count one rank task that failed with a worker exception."""
        self.worker_errors += 1

    def record_worker_death(self, n: int = 1) -> None:
        """Count ``n`` pool workers that died (killed or crashed)."""
        self.worker_deaths += n

    def record_speculative_launch(self) -> None:
        """Count one speculative duplicate of a straggling rank task."""
        self.speculative_launches += 1

    def record_speculative_win(self) -> None:
        """Count one straggler whose speculative duplicate finished first."""
        self.speculative_wins += 1

    def record_rank_fallback(self, key: str) -> None:
        """Count one rank compressed serially in the parent after its
        retry budget was exhausted (the ``rank-serial`` fallback)."""
        self.record_fallback("rank-serial")
        if key not in self.fallback_ranks:
            self.fallback_ranks.append(key)

    def report(self) -> "ResilienceReport":
        """Freeze the current tallies into an immutable report."""
        return ResilienceReport(
            injected=tuple(sorted(self.injected.items())),
            fallbacks=tuple(sorted(self.fallbacks.items())),
            retries=self.retries,
            retry_successes=self.retry_successes,
            write_failures=self.write_failures,
            degraded_dumps=self.degraded_dumps,
            overrun_iterations=self.overrun_iterations,
            deferred_bytes=self.deferred_bytes,
            deferred_writes=self.deferred_writes,
            pending_deferred_bytes=self.pending_deferred_bytes,
            straggler_ranks=self.straggler_ranks,
            task_retries=self.task_retries,
            task_deadline_misses=self.task_deadline_misses,
            worker_errors=self.worker_errors,
            worker_deaths=self.worker_deaths,
            speculative_launches=self.speculative_launches,
            speculative_wins=self.speculative_wins,
            retried_ranks=tuple(sorted(self.retried_ranks)),
            fallback_ranks=tuple(sorted(self.fallback_ranks)),
        )


@dataclass(frozen=True)
class ResilienceReport:
    """Per-campaign summary of injected faults and recovery actions."""

    injected: tuple[tuple[str, int], ...] = ()
    fallbacks: tuple[tuple[str, int], ...] = ()
    retries: int = 0
    retry_successes: int = 0
    write_failures: int = 0
    degraded_dumps: int = 0
    overrun_iterations: int = 0
    deferred_bytes: int = 0
    deferred_writes: int = 0
    pending_deferred_bytes: int = 0
    straggler_ranks: tuple[int, ...] = ()
    #: Real-plane supervisor tallies.  These are *wall-clock* facts —
    #: how many real retries, deadline misses, and worker deaths the
    #: physical data plane absorbed — so they are reported and formatted
    #: but deliberately kept out of :meth:`as_metrics`: the metric dict
    #: feeds the modelled campaign report, whose byte-identical
    #: resumed-vs-uninterrupted guarantee only holds for deterministic
    #: values.
    task_retries: int = 0
    task_deadline_misses: int = 0
    worker_errors: int = 0
    worker_deaths: int = 0
    speculative_launches: int = 0
    speculative_wins: int = 0
    retried_ranks: tuple[str, ...] = ()
    fallback_ranks: tuple[str, ...] = ()

    @property
    def total_injected(self) -> int:
        return sum(count for _, count in self.injected)

    @property
    def total_fallbacks(self) -> int:
        return sum(count for _, count in self.fallbacks)

    def as_metrics(self) -> dict[str, float]:
        """Flat metric dict, suitable for gauges / campaign metrics."""
        metrics: dict[str, float] = {
            "resilience.injected": float(self.total_injected),
            "resilience.retries": float(self.retries),
            "resilience.retry_successes": float(self.retry_successes),
            "resilience.write_failures": float(self.write_failures),
            "resilience.fallbacks": float(self.total_fallbacks),
            "resilience.degraded_dumps": float(self.degraded_dumps),
            "resilience.overrun_iterations": float(
                self.overrun_iterations
            ),
            "resilience.deferred_bytes": float(self.deferred_bytes),
            "resilience.pending_deferred_bytes": float(
                self.pending_deferred_bytes
            ),
        }
        for kind, count in self.injected:
            metrics[f"resilience.injected.{kind}"] = float(count)
        for kind, count in self.fallbacks:
            metrics[f"resilience.fallback.{kind}"] = float(count)
        return metrics

    def format(self) -> str:
        """Human-readable block for CLI output (stable ordering)."""
        lines = [
            f"faults injected:     {self.total_injected}",
        ]
        for kind, count in self.injected:
            lines.append(f"  {kind + ':':18s} {count}")
        lines.append(
            f"write retries:       {self.retries} "
            f"({self.retry_successes} recovered, "
            f"{self.write_failures} exhausted)"
        )
        lines.append(f"fallbacks:           {self.total_fallbacks}")
        for kind, count in self.fallbacks:
            lines.append(f"  {kind + ':':18s} {count}")
        lines.append(f"degraded dumps:      {self.degraded_dumps}")
        lines.append(f"overrun iterations:  {self.overrun_iterations}")
        lines.append(
            f"deferred writes:     {self.deferred_writes} "
            f"({self.deferred_bytes} bytes, "
            f"{self.pending_deferred_bytes} still pending)"
        )
        if self.straggler_ranks:
            ranks = ", ".join(str(r) for r in self.straggler_ranks)
            lines.append(f"straggler ranks:     {ranks}")
        # Real-plane supervisor lines appear only when the supervised
        # data plane actually had to recover something, so modelled-only
        # campaigns keep their historical output byte-for-byte.
        if self.task_retries or self.task_deadline_misses:
            lines.append(
                f"task retries:        {self.task_retries} "
                f"({self.task_deadline_misses} deadline misses)"
            )
        if self.worker_errors or self.worker_deaths:
            lines.append(
                f"worker failures:     {self.worker_errors} errors, "
                f"{self.worker_deaths} deaths"
            )
        if self.speculative_launches:
            lines.append(
                f"speculative tasks:   {self.speculative_launches} "
                f"launched, {self.speculative_wins} won"
            )
        if self.retried_ranks:
            lines.append(
                "retried ranks:       " + ", ".join(self.retried_ranks)
            )
        if self.fallback_ranks:
            lines.append(
                "fallback ranks:      " + ", ".join(self.fallback_ranks)
            )
        return "\n".join(lines)
