"""Retry policy for writes: bounded attempts, backoff, per-write deadline.

Transient filesystem errors (dropped RPCs, lock timeouts) are the
common case on shared parallel filesystems; the standard remedy is a
bounded number of retries with exponential backoff plus jitter so
concurrent writers do not re-collide in lockstep.  The same policy
object drives both the *simulated* retry loop in
:class:`~repro.io.filesystem.SimulatedFileSystem` (backoff adds
simulated seconds) and the *real* one in
:class:`~repro.io.async_io.AsyncWriter` (backoff sleeps the worker
thread).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy", "WriteFailedError", "DEFAULT_RETRY_POLICY"]


class WriteFailedError(RuntimeError):
    """A write exhausted its retry budget or blew its deadline.

    Carries enough context for the caller to degrade gracefully —
    typically by deferring the payload to the next compute gap.
    """

    def __init__(
        self,
        message: str,
        *,
        rank: int = -1,
        nbytes: int = 0,
        attempts: int = 0,
        elapsed_s: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.nbytes = nbytes
        self.attempts = attempts
        self.elapsed_s = elapsed_s


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter and an optional per-write deadline.

    Attributes:
        max_attempts: total tries per write (first attempt included).
        base_backoff_s: wait before the first retry.
        backoff_multiplier: growth factor per retry (2 = exponential).
        jitter_frac: each backoff is scaled by a uniform draw in
            ``[1 - jitter_frac, 1 + jitter_frac]``.
        deadline_s: give up once a single write's cumulative simulated
            (or wall-clock) time would exceed this; ``None`` disables.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    jitter_frac: float = 0.1
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                "RetryPolicy.max_attempts must be >= 1, "
                f"got {self.max_attempts!r}"
            )
        if self.base_backoff_s < 0:
            raise ValueError(
                "RetryPolicy.base_backoff_s must be non-negative, "
                f"got {self.base_backoff_s!r}"
            )
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                "RetryPolicy.backoff_multiplier must be >= 1, "
                f"got {self.backoff_multiplier!r}"
            )
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ValueError(
                "RetryPolicy.jitter_frac must be in [0, 1), "
                f"got {self.jitter_frac!r}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                "RetryPolicy.deadline_s must be positive or None, "
                f"got {self.deadline_s!r}"
            )

    def backoff_s(
        self, attempt: int, rng: np.random.Generator | None = None
    ) -> float:
        """Wait before retry number ``attempt`` (1-based failed attempt)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = self.base_backoff_s * self.backoff_multiplier ** (
            attempt - 1
        )
        if rng is None or self.jitter_frac <= 0.0:
            return base
        scale = 1.0 + self.jitter_frac * float(rng.uniform(-1.0, 1.0))
        return base * scale

    def past_deadline(self, elapsed_s: float) -> bool:
        """Whether a write at ``elapsed_s`` cumulative time must give up."""
        return self.deadline_s is not None and elapsed_s > self.deadline_s


#: Paper-ish default: 4 attempts, 50 ms first backoff, doubling.
DEFAULT_RETRY_POLICY = RetryPolicy()
