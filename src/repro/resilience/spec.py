"""Fault-spec files: declarative fault campaigns loaded from YAML/JSON.

A spec is a small mapping with one section per fault class plus an
optional ``retry`` policy and ``seed``::

    seed: 7
    stall:        {probability: 0.15, mean_duration_s: 0.4}
    write_error:  {probability: 0.25}
    bandwidth:    {probability: 0.2, min_factor: 0.25}
    compression:  {probability: 0.1}
    straggler:    {ranks: [0], io_factor: 3.0}
    worker:       {kind: kill, rank: 1, iteration: 1}
    retry:        {max_attempts: 4, base_backoff_s: 0.02}

The ``worker`` section is the *real-plane* fault class: under
``--engine process`` it SIGKILLs (``kind: kill``), stalls
(``kind: stall``), or crashes (``kind: error``) the pool worker that
executes the matching rank task; the modelled plane ignores it.

Validation happens at load time with errors naming the exact bad field
(``fault spec: stall.probability must be in [0, 1]``) instead of failing
deep inside the runtime.  JSON is a subset of YAML, so specs load even
when PyYAML is unavailable as long as they are written as JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from pathlib import Path

from .faults import (
    BandwidthFault,
    CompressionFault,
    FaultPlan,
    ProcessKillFault,
    StallFault,
    StragglerFault,
    WorkerFault,
    WriteErrorFault,
)
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "FaultSpec",
    "parse_fault_spec",
    "load_fault_spec",
    "load_spec_data",
]

_SECTIONS = {
    "stall": StallFault,
    "write_error": WriteErrorFault,
    "bandwidth": BandwidthFault,
    "compression": CompressionFault,
    "straggler": StragglerFault,
    "process_kill": ProcessKillFault,
    "worker": WorkerFault,
}
_TOP_LEVEL = set(_SECTIONS) | {"retry", "seed"}


@dataclass(frozen=True)
class FaultSpec:
    """A parsed fault-spec file: the plan, retry policy, and seed."""

    plan: FaultPlan
    retry: RetryPolicy = DEFAULT_RETRY_POLICY
    seed: int | None = None


def _build_section(name: str, cls: type, data: object):
    if not isinstance(data, dict):
        raise ValueError(
            f"fault spec: {name} must be a mapping, "
            f"got {type(data).__name__}"
        )
    allowed = {f.name for f in fields(cls)}
    for key in data:
        if key not in allowed:
            raise ValueError(
                f"fault spec: unknown field {name}.{key!r} "
                f"(allowed: {', '.join(sorted(allowed))})"
            )
    kwargs = dict(data)
    # Scalar type checks up front, naming the offending key — a string
    # probability must not surface as a TypeError from a comparison deep
    # inside the dataclass.
    for key, value in kwargs.items():
        if key == "ranks":
            if not isinstance(value, (list, tuple)) or not all(
                isinstance(r, int) and not isinstance(r, bool)
                for r in value
            ):
                raise ValueError(
                    f"fault spec: {name}.ranks must be a list of ints, "
                    f"got {value!r}"
                )
            kwargs["ranks"] = tuple(value)
        elif key in ("point", "kind"):
            if not isinstance(value, str):
                raise ValueError(
                    f"fault spec: {name}.{key} must be a string, "
                    f"got {value!r}"
                )
        elif key in ("iteration", "rank", "attempts"):
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(
                    f"fault spec: {name}.{key} must be an integer, "
                    f"got {value!r}"
                )
        elif not isinstance(value, (int, float)) or isinstance(
            value, bool
        ):
            raise ValueError(
                f"fault spec: {name}.{key} must be a number, "
                f"got {value!r}"
            )
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ValueError(f"fault spec: bad {name} section: {exc}") from exc


def parse_fault_spec(data: dict) -> FaultSpec:
    """Validate a spec mapping and build the typed :class:`FaultSpec`."""
    if not isinstance(data, dict):
        raise ValueError(
            f"fault spec: top level must be a mapping, "
            f"got {type(data).__name__}"
        )
    for key in data:
        if key not in _TOP_LEVEL:
            raise ValueError(
                f"fault spec: unknown fault kind {key!r} "
                f"(valid kinds: {', '.join(sorted(_TOP_LEVEL))})"
            )

    sections = {
        name: _build_section(name, cls, data[name])
        for name, cls in _SECTIONS.items()
        if name in data
    }
    plan = FaultPlan(**sections)

    retry = DEFAULT_RETRY_POLICY
    if "retry" in data:
        retry_data = data["retry"]
        if not isinstance(retry_data, dict):
            raise ValueError(
                "fault spec: retry must be a mapping, "
                f"got {type(retry_data).__name__}"
            )
        allowed = {f.name for f in fields(RetryPolicy)}
        for key in retry_data:
            if key not in allowed:
                raise ValueError(
                    f"fault spec: unknown field retry.{key!r} "
                    f"(allowed: {', '.join(sorted(allowed))})"
                )
        retry = RetryPolicy(**retry_data)

    seed = data.get("seed")
    if seed is not None and (
        not isinstance(seed, int) or isinstance(seed, bool)
    ):
        raise ValueError(
            f"fault spec: seed must be an integer, got {seed!r}"
        )
    return FaultSpec(plan=plan, retry=retry, seed=seed)


def load_spec_data(path: str | Path):
    """Read a fault-spec file into its raw mapping (no validation).

    The raw form is what a campaign journal embeds in its header, so a
    resumed run reproduces the exact fault plan even if the original
    spec file moved or changed.
    """
    text = Path(path).read_text()
    try:
        import yaml
    except ImportError:  # pragma: no cover - PyYAML is normally present
        import json

        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"fault spec {path}: PyYAML unavailable and file is "
                f"not valid JSON: {exc}"
            ) from exc
    else:
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ValueError(f"fault spec {path}: invalid YAML: {exc}") from exc
    if data is None:
        raise ValueError(f"fault spec {path}: file is empty")
    return data


def load_fault_spec(path: str | Path) -> FaultSpec:
    """Load and validate a fault-spec file (YAML, or JSON as fallback)."""
    data = load_spec_data(path)
    try:
        return parse_fault_spec(data)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc
