"""Scheduling-as-a-service: the solver stack behind a long-running server.

Where the rest of the package answers "solve this instance" as a library
call, this subpackage keeps a solver warm and shares it: a long-running
service with exact memoization, request batching, and per-tenant
admission control in front of :func:`repro.core.solve` and
:func:`repro.engines.run_campaign`.

Layered, innermost first:

* :mod:`~repro.service.protocol` — wire shapes: request validation,
  the canonical solve-request fingerprint (memo key), deterministic
  solution payloads, structured rejections;
* :mod:`~repro.service.cache` — the fingerprint-keyed LRU memo cache
  with an optional crash-consistent disk tier;
* :mod:`~repro.service.admission` — per-tenant token-bucket quotas;
* :mod:`~repro.service.dispatch` — the bounded priority queue and
  batching worker dispatch with per-request deadlines;
* :mod:`~repro.service.service` — :class:`SchedulingService`, the
  HTTP-free core wiring the above plus per-request telemetry spans;
* :mod:`~repro.service.server` — the stdlib-asyncio JSON-over-HTTP
  front (``repro serve``);
* :mod:`~repro.service.client` — the blocking client
  (``repro submit``).
"""

from .admission import AdmissionController, TokenBucket
from .cache import MemoCache
from .client import ServiceClient, ServiceUnavailableError
from .dispatch import DispatchOutcome, SolveDispatcher
from .protocol import (
    REJECT_DEADLINE,
    REJECT_QUEUE_FULL,
    REJECT_QUOTA,
    REJECT_SHUTTING_DOWN,
    BadRequestError,
    Rejection,
    SolveWork,
    parse_solve_payload,
    solution_json_dict,
    solve_request_key,
)
from .server import ServiceServer, serve_forever
from .service import SchedulingService, ServiceConfig

__all__ = [
    "AdmissionController",
    "BadRequestError",
    "DispatchOutcome",
    "MemoCache",
    "REJECT_DEADLINE",
    "REJECT_QUEUE_FULL",
    "REJECT_QUOTA",
    "REJECT_SHUTTING_DOWN",
    "Rejection",
    "SchedulingService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceServer",
    "ServiceUnavailableError",
    "SolveDispatcher",
    "SolveWork",
    "TokenBucket",
    "parse_solve_payload",
    "serve_forever",
    "solution_json_dict",
    "solve_request_key",
]
