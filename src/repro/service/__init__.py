"""Scheduling-as-a-service: the solver stack behind a long-running server.

Where the rest of the package answers "solve this instance" as a library
call, this subpackage keeps a solver warm and shares it: a long-running
service with exact memoization, request batching, and per-tenant
admission control in front of :func:`repro.core.solve` and
:func:`repro.engines.run_campaign`.

Layered, innermost first:

* :mod:`~repro.service.protocol` — wire shapes: request validation,
  the canonical solve-request fingerprint (memo key), deterministic
  solution payloads, structured rejections;
* :mod:`~repro.service.cache` — the fingerprint-keyed LRU memo cache
  with an optional crash-consistent disk tier;
* :mod:`~repro.service.admission` — per-tenant token-bucket quotas;
* :mod:`~repro.service.dispatch` — the bounded priority queue and
  batching worker dispatch with per-request deadlines;
* :mod:`~repro.service.recovery` — the durable request ledger and the
  chaos crash points of the serving tier;
* :mod:`~repro.service.service` — :class:`SchedulingService`, the
  HTTP-free core wiring the above plus circuit breakers, crash
  recovery, and per-request telemetry spans;
* :mod:`~repro.service.server` — the stdlib-asyncio JSON-over-HTTP
  front (``repro serve``), with the watchdog heartbeat;
* :mod:`~repro.service.watchdog` — parent-process supervision with
  bounded-backoff restart (``repro serve --supervised``);
* :mod:`~repro.service.client` — the blocking client
  (``repro submit``), optionally retrying with idempotency keys.
"""

from .admission import AdmissionController, TokenBucket
from .cache import MemoCache
from .client import ServiceClient, ServiceUnavailableError
from .dispatch import DispatchOutcome, SolveDispatcher
from .protocol import (
    REJECT_DEADLINE,
    REJECT_DRAINING,
    REJECT_ENGINE_UNAVAILABLE,
    REJECT_QUEUE_FULL,
    REJECT_QUOTA,
    REJECT_SHUTTING_DOWN,
    BadRequestError,
    EngineUnavailableError,
    Rejection,
    SolveWork,
    campaign_request_key,
    parse_solve_payload,
    solution_json_dict,
    solve_request_key,
)
from .recovery import LedgerEntry, RequestLedger, ServiceChaos
from .server import ServiceServer, serve_forever
from .service import SchedulingService, ServiceConfig
from .watchdog import Watchdog

__all__ = [
    "AdmissionController",
    "BadRequestError",
    "DispatchOutcome",
    "EngineUnavailableError",
    "LedgerEntry",
    "MemoCache",
    "REJECT_DEADLINE",
    "REJECT_DRAINING",
    "REJECT_ENGINE_UNAVAILABLE",
    "REJECT_QUEUE_FULL",
    "REJECT_QUOTA",
    "REJECT_SHUTTING_DOWN",
    "Rejection",
    "RequestLedger",
    "SchedulingService",
    "ServiceChaos",
    "ServiceClient",
    "ServiceConfig",
    "ServiceServer",
    "ServiceUnavailableError",
    "SolveDispatcher",
    "SolveWork",
    "TokenBucket",
    "Watchdog",
    "campaign_request_key",
    "parse_solve_payload",
    "serve_forever",
    "solution_json_dict",
    "solve_request_key",
]
