"""Admission control: per-tenant token buckets with structured refusals.

A service shared by many tenants needs back-pressure that is *fair*
(one tenant's burst must not starve the others), *bounded* (the queue
may not grow without limit), and *explicit* (an overloaded server says
"try again in 0.2s", it does not stack-trace).  The classic mechanism
is the token bucket: each tenant owns a bucket of ``burst`` tokens that
refills at ``rate`` tokens/second; a request costs one token (campaigns
cost more), and an empty bucket yields a 429-style
:class:`~repro.service.protocol.Rejection` carrying the refill estimate
as ``retry_after_s``.  Queue-depth bounding lives in the dispatcher —
this module only answers "may this tenant submit right now?".
"""

from __future__ import annotations

import threading
import time

from .protocol import REJECT_QUOTA, Rejection

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """A continuously refilling token bucket (monotonic-clock based).

    ``rate`` is tokens per second (0 disables refill: the burst is all
    the tenant ever gets — useful for tests and hard caps); ``burst``
    is the bucket capacity and initial fill.
    """

    def __init__(
        self, rate: float, burst: float, clock=time.monotonic
    ) -> None:
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate!r}")
        if burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self, now: float) -> None:
        if now > self._updated:
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated) * self.rate
            )
        self._updated = now

    def try_take(self, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; never blocks."""
        now = self._clock()
        self._refill(now)
        if self._tokens + 1e-12 >= cost:
            self._tokens -= cost
            return True
        return False

    def retry_after_s(self, cost: float = 1.0) -> float | None:
        """Seconds until ``cost`` tokens will be available (None: never)."""
        self._refill(self._clock())
        missing = cost - self._tokens
        if missing <= 0:
            return 0.0
        if self.rate <= 0 or cost > self.burst:
            # Refill never runs, or the bucket can never hold that
            # many tokens: an honest hint is "never", not a number.
            return None
        return missing / self.rate

    @property
    def tokens(self) -> float:
        """Current fill (after refill), for status reporting."""
        self._refill(self._clock())
        return self._tokens


class AdmissionController:
    """Per-tenant token buckets behind one lock, with counters.

    Tenants are created on first sight with the default ``rate`` /
    ``burst``; ``tenant_quotas`` overrides both for named tenants.  All
    methods are thread-safe.
    """

    def __init__(
        self,
        rate: float = 50.0,
        burst: float = 20.0,
        tenant_quotas: dict[str, tuple[float, float]] | None = None,
        clock=time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self._overrides = dict(tenant_quotas or {})
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._admitted: dict[str, int] = {}
        self._rejected: dict[str, int] = {}

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            rate, burst = self._overrides.get(
                tenant, (self.rate, self.burst)
            )
            bucket = TokenBucket(rate, burst, clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, cost: float = 1.0) -> Rejection | None:
        """None when admitted; a quota :class:`Rejection` otherwise."""
        with self._lock:
            bucket = self._bucket(tenant)
            if bucket.try_take(cost):
                self._admitted[tenant] = self._admitted.get(tenant, 0) + 1
                return None
            self._rejected[tenant] = self._rejected.get(tenant, 0) + 1
            retry = bucket.retry_after_s(cost)
            return Rejection(
                code=REJECT_QUOTA,
                message=(
                    f"tenant {tenant!r} is over its quota "
                    f"({bucket.rate:g} req/s, burst {bucket.burst:g})"
                ),
                http_status=429,
                retry_after_s=retry,
            )

    def stats(self) -> dict:
        """Per-tenant admission counters for the ``/status`` endpoint."""
        with self._lock:
            tenants = {}
            for tenant, bucket in sorted(self._buckets.items()):
                tenants[tenant] = {
                    "admitted": self._admitted.get(tenant, 0),
                    "rejected": self._rejected.get(tenant, 0),
                    "tokens": round(bucket.tokens, 6),
                    "rate": bucket.rate,
                    "burst": bucket.burst,
                }
            return {
                "default_rate": self.rate,
                "default_burst": self.burst,
                "tenants": tenants,
            }
