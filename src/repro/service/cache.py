"""Solution memo cache: fingerprint-keyed, LRU, optionally durable.

The whole campaign stack is deterministic by construction (that is what
makes journal resume possible), so a solve request's canonical
fingerprint fully determines its solution — memoization is *exact*, not
heuristic.  The cache holds JSON-safe solution payloads keyed by
:func:`~repro.service.protocol.solve_request_key`:

* in memory: a bounded LRU (``capacity`` entries, least-recently-*used*
  eviction) guarded by one lock, with hit/miss/eviction counters;
* optionally on disk: every store is also published atomically through
  :class:`~repro.durability.DurableFile` as
  ``<cache_dir>/<key>.json`` carrying a self-fingerprint, so a cache
  directory survives restarts, is crash-consistent (a killed writer
  leaves only a stale temp file, never a torn entry), and a corrupt or
  tampered entry is detected and ignored rather than served.

Opening a persistent cache sweeps the directory for stale temp files a
crashed writer left behind (counted in ``stats()``), and an optional
:class:`~repro.resilience.CircuitBreaker` guards the disk tier: while
it is open the cache degrades to memory-only — disk errors stop
surfacing on the request path — and probes re-enable the tier once the
filesystem recovers.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict

from ..durability.atomic import DurableFile, find_stale_temps
from ..durability.fingerprint import fingerprint_json

__all__ = ["MemoCache"]


class MemoCache:
    """LRU memo cache for solution payloads, with an optional disk tier.

    ``capacity=0`` disables caching entirely (every ``get`` misses and
    ``put`` is a no-op) while keeping the counters live, so a service
    configured cache-less still reports meaningful statistics.
    """

    def __init__(
        self,
        capacity: int = 256,
        cache_dir: str | None = None,
        *,
        breaker=None,
    ) -> None:
        if capacity < 0:
            raise ValueError(
                f"MemoCache.capacity must be >= 0, got {capacity!r}"
            )
        self.capacity = capacity
        self.cache_dir = cache_dir
        self._breaker = breaker
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._evictions = 0
        self._stores = 0
        self._disk_rejects = 0
        self._disk_errors = 0
        self._disk_skipped = 0
        self._stale_temps_removed = 0
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)
            self._sweep_stale_temps()

    def _sweep_stale_temps(self) -> None:
        """Remove temp files a crashed writer left mid-publish.

        Safe by construction: :class:`DurableFile` temps become real
        entries only through the rename, so at open time any remaining
        temp belongs to a writer that no longer exists.
        """
        try:
            stale = find_stale_temps(self.cache_dir)
        except OSError:
            return
        for temp in stale:
            try:
                os.unlink(temp)
            except OSError:
                continue
            self._stale_temps_removed += 1

    # ------------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """The cached solution for ``key``, or None on a miss.

        A memory hit refreshes the entry's LRU position.  On a memory
        miss with a disk tier configured, a valid disk entry is promoted
        into memory and counted as both a miss (of the memory tier) and
        a ``disk_hit``.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry
            self._misses += 1
        value = self._load_disk(key)
        if value is not None:
            with self._lock:
                self._disk_hits += 1
                self._insert(key, value)
        return value

    def put(self, key: str, value: dict) -> None:
        """Store ``value`` under ``key`` (and durably, with a disk tier)."""
        if self.capacity == 0:
            return
        with self._lock:
            self._stores += 1
            self._insert(key, value)
        self._store_disk(key, value)

    def _insert(self, key: str, value: dict) -> None:
        """Insert under the lock, evicting the least recently used."""
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def _disk_allowed(self) -> bool:
        """Whether the disk tier may be touched right now."""
        if self._breaker is None or self._breaker.allow():
            return True
        with self._lock:
            self._disk_skipped += 1
        return False

    def _store_disk(self, key: str, value: dict) -> None:
        if self.cache_dir is None or not self._disk_allowed():
            return
        document = {
            "key": key,
            "solution": value,
            "crc32c": fingerprint_json(value),
        }
        try:
            with DurableFile(self._disk_path(key), "w") as fh:
                json.dump(document, fh, sort_keys=True)
        except OSError:
            # Degraded mode: the entry stays memory-only, the request
            # still succeeds, and the breaker tracks the disk's health.
            with self._lock:
                self._disk_errors += 1
            if self._breaker is not None:
                self._breaker.record_failure()
            return
        if self._breaker is not None:
            self._breaker.record_success()

    def _load_disk(self, key: str) -> dict | None:
        if self.cache_dir is None or not self._disk_allowed():
            return None
        try:
            with open(self._disk_path(key), encoding="utf-8") as fh:
                document = json.load(fh)
        except FileNotFoundError:
            # An ordinary miss — evidence the disk works, not that it
            # is broken.
            if self._breaker is not None:
                self._breaker.record_success()
            return None
        except OSError:
            with self._lock:
                self._disk_errors += 1
            if self._breaker is not None:
                self._breaker.record_failure()
            return None
        except json.JSONDecodeError:
            # Readable but corrupt: a data problem, not a disk outage.
            if self._breaker is not None:
                self._breaker.record_success()
            return None
        if self._breaker is not None:
            self._breaker.record_success()
        solution = document.get("solution") if isinstance(document, dict) else None
        if (
            not isinstance(solution, dict)
            or document.get("key") != key
            or document.get("crc32c") != fingerprint_json(solution)
        ):
            # Corrupt or tampered entry: never serve it, count it.
            with self._lock:
                self._disk_rejects += 1
            return None
        return solution

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Counters for the ``/status`` endpoint (a JSON-safe snapshot)."""
        with self._lock:
            snapshot = {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "disk_hits": self._disk_hits,
                "disk_rejects": self._disk_rejects,
                "disk_errors": self._disk_errors,
                "disk_skipped": self._disk_skipped,
                "stale_temps_removed": self._stale_temps_removed,
                "stores": self._stores,
                "evictions": self._evictions,
                "persistent": self.cache_dir is not None,
            }
        if self._breaker is not None:
            snapshot["disk_breaker"] = self._breaker.state
        return snapshot
