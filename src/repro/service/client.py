"""Blocking client for the scheduling service (stdlib only).

:class:`ServiceClient` speaks the service's JSON-over-HTTP protocol via
``http.client`` — one short-lived connection per call, which keeps the
client trivially thread-safe and robust against a draining server.  It
is what ``repro submit`` uses, and the natural handle for tests:

    with ServiceClient("127.0.0.1", 8742) as client:
        client.wait_healthy()
        reply = client.solve({"instance": {...}})

Every call returns the decoded ``(http_status, body)`` pair — including
rejections, which arrive as structured bodies, not exceptions.  Only
transport-level failures (connection refused, timeouts, non-JSON
responses) raise :class:`ServiceUnavailableError`.
"""

from __future__ import annotations

import http.client
import json
import time

__all__ = ["ServiceClient", "ServiceUnavailableError"]


class ServiceUnavailableError(ConnectionError):
    """The service could not be reached or spoke something unexpected."""


class ServiceClient:
    """A blocking JSON-over-HTTP client bound to one service address."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8742,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        body = None if payload is None else json.dumps(payload)
        try:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                conn.request(
                    method,
                    path,
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                raw = response.read()
                status = response.status
            finally:
                conn.close()
        except OSError as exc:
            raise ServiceUnavailableError(
                f"scheduling service at {self.host}:{self.port} "
                f"unreachable: {exc}"
            ) from exc
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceUnavailableError(
                f"scheduling service at {self.host}:{self.port} sent a "
                f"non-JSON response (HTTP {status})"
            ) from exc
        return status, decoded

    # ------------------------------------------------------------------
    def health(self) -> tuple[int, dict]:
        """``GET /health`` — liveness and drain state."""
        return self._request("GET", "/health")

    def status(self) -> tuple[int, dict]:
        """``GET /status`` — the full counter snapshot."""
        return self._request("GET", "/status")

    def solve(self, payload: dict) -> tuple[int, dict]:
        """``POST /solve`` — one scheduling request."""
        return self._request("POST", "/solve", payload)

    def campaign(self, payload: dict) -> tuple[int, dict]:
        """``POST /campaign`` — one campaign request."""
        return self._request("POST", "/campaign", payload)

    def shutdown(self) -> tuple[int, dict]:
        """``POST /shutdown`` — ask the server to drain and exit."""
        return self._request("POST", "/shutdown")

    def wait_healthy(self, timeout: float = 10.0) -> dict:
        """Poll ``/health`` until the service answers; raises on timeout.

        The bridge between "the serve process was spawned" and "the
        socket accepts requests" — used by tests and scripted drivers.
        """
        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                status, body = self.health()
            except ServiceUnavailableError as exc:
                last = exc
            else:
                if status == 200 and body.get("ok"):
                    return body
            time.sleep(0.05)
        raise ServiceUnavailableError(
            f"scheduling service at {self.host}:{self.port} did not "
            f"become healthy within {timeout:g}s"
        ) from last

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        return None
