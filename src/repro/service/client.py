"""Blocking client for the scheduling service (stdlib only).

:class:`ServiceClient` speaks the service's JSON-over-HTTP protocol via
``http.client`` — one short-lived connection per call, which keeps the
client trivially thread-safe and robust against a draining server.  It
is what ``repro submit`` uses, and the natural handle for tests:

    with ServiceClient("127.0.0.1", 8742) as client:
        client.wait_healthy()
        reply = client.solve({"instance": {...}})

Every call returns the decoded ``(http_status, body)`` pair — including
rejections, which arrive as structured bodies, not exceptions.  Only
transport-level failures (connection refused, timeouts, non-JSON
responses) raise :class:`ServiceUnavailableError`.

Retries are opt-in: construct with a
:class:`~repro.resilience.RetryPolicy` and ``solve`` / ``campaign``
calls survive connection-refused windows (a supervised server
restarting) and 500/503 replies with exponential backoff + jitter,
bounded by the policy's attempt budget and per-request deadline.  Every
attempt of one logical request carries the same ``X-Idempotency-Key``
header — the canonical fingerprint of the call — so a server that
already answered (or is mid-flight on) the first attempt serves the
recorded result instead of executing twice.
"""

from __future__ import annotations

import http.client
import json
import time

import numpy as np

from ..durability.fingerprint import fingerprint_json
from ..resilience.retry import RetryPolicy

__all__ = ["ServiceClient", "ServiceUnavailableError"]

def _retryable_status(status: int) -> bool:
    """Server-side (5xx) failures are retryable: a restarting supervised
    server, a draining predecessor, an open breaker mid-cooldown.  4xx
    replies (quota pressure, bad requests) are the caller's to handle —
    resubmitting them verbatim cannot succeed."""
    return 500 <= status < 600


class ServiceUnavailableError(ConnectionError):
    """The service could not be reached or spoke something unexpected."""


class ServiceClient:
    """A blocking JSON-over-HTTP client bound to one service address."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8742,
        timeout: float = 60.0,
        *,
        retry: RetryPolicy | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self._rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------
    def _request_once(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict | None = None,
    ) -> tuple[int, dict]:
        body = None if payload is None else json.dumps(payload)
        all_headers = {"Content-Type": "application/json"}
        if headers:
            all_headers.update(headers)
        try:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                conn.request(method, path, body=body, headers=all_headers)
                response = conn.getresponse()
                raw = response.read()
                status = response.status
            finally:
                conn.close()
        except OSError as exc:
            raise ServiceUnavailableError(
                f"scheduling service at {self.host}:{self.port} "
                f"unreachable: {exc}"
            ) from exc
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceUnavailableError(
                f"scheduling service at {self.host}:{self.port} sent a "
                f"non-JSON response (HTTP {status})"
            ) from exc
        return status, decoded

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        retryable: bool = False,
    ) -> tuple[int, dict]:
        policy = self.retry if retryable else None
        if policy is None:
            return self._request_once(method, path, payload)

        # One idempotency key for the whole retry loop: resubmissions
        # of this logical request coalesce server-side onto one
        # execution (or are answered from the request ledger).
        headers = {
            "X-Idempotency-Key": fingerprint_json(
                {"path": path, "payload": payload}
            )
        }
        started = time.monotonic()
        last_error: ServiceUnavailableError | None = None
        last_reply: tuple[int, dict] | None = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                status, body = self._request_once(
                    method, path, payload, headers
                )
            except ServiceUnavailableError as exc:
                last_error, last_reply = exc, None
            else:
                if not _retryable_status(status):
                    return status, body
                last_error, last_reply = None, (status, body)
            if attempt >= policy.max_attempts:
                break
            backoff = policy.backoff_s(attempt, self._rng)
            elapsed = time.monotonic() - started
            if policy.past_deadline(elapsed + backoff):
                break
            time.sleep(backoff)
        if last_reply is not None:
            return last_reply
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------
    def health(self) -> tuple[int, dict]:
        """``GET /health`` — liveness, drain state, breaker states."""
        return self._request("GET", "/health")

    def status(self) -> tuple[int, dict]:
        """``GET /status`` — the full counter snapshot."""
        return self._request("GET", "/status")

    def solve(self, payload: dict) -> tuple[int, dict]:
        """``POST /solve`` — one scheduling request (retried if armed)."""
        return self._request("POST", "/solve", payload, retryable=True)

    def campaign(self, payload: dict) -> tuple[int, dict]:
        """``POST /campaign`` — one campaign request (retried if armed)."""
        return self._request("POST", "/campaign", payload, retryable=True)

    def shutdown(self) -> tuple[int, dict]:
        """``POST /shutdown`` — ask the server to drain and exit.

        Never retried: resubmitting a shutdown to a freshly restarted
        server would re-kill it.
        """
        return self._request("POST", "/shutdown")

    def wait_healthy(self, timeout: float = 10.0) -> dict:
        """Poll ``/health`` until the service answers; raises on timeout.

        The bridge between "the serve process was spawned" and "the
        socket accepts requests" — used by tests and scripted drivers.
        """
        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                status, body = self.health()
            except ServiceUnavailableError as exc:
                last = exc
            else:
                if status == 200 and body.get("ok"):
                    return body
            time.sleep(0.05)
        raise ServiceUnavailableError(
            f"scheduling service at {self.host}:{self.port} did not "
            f"become healthy within {timeout:g}s"
        ) from last

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        return None
