"""The batching dispatcher: priority queue -> coalesced worker dispatch.

Concurrent solve requests usually share a framework configuration (same
algorithm, same engine, same time limit) and differ only in the
instance, so dispatching them one executor task at a time wastes both
scheduling overhead and the chance to keep a worker's caches warm.  The
dispatcher instead runs a single *batcher* thread over a bounded
priority queue: it picks the highest-priority (then oldest) request,
waits up to ``batch_window_s`` for compatible requests to arrive,
coalesces up to ``max_batch`` of them, and submits the whole batch as
one unit to a thread pool of ``workers``.

Per-request deadlines reuse :class:`~repro.resilience.RetryPolicy`
semantics (``past_deadline`` over monotonic elapsed time): a request
whose deadline expires while queued — or while waiting for a worker —
completes with a structured deadline
:class:`~repro.service.protocol.Rejection`, never a timeout exception.

Every completed request resolves to a :class:`DispatchOutcome` carrying
the solution (or rejection) plus the queue-wait and solve timings the
service's per-request telemetry spans report.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from ..resilience.retry import RetryPolicy
from ..telemetry import NULL_TRACER, NullTracer
from .protocol import (
    REJECT_DEADLINE,
    REJECT_DRAINING,
    REJECT_SHUTTING_DOWN,
    Rejection,
    SolveWork,
)

__all__ = ["DispatchOutcome", "SolveDispatcher"]


@dataclass
class DispatchOutcome:
    """What one dispatched request resolved to.

    Exactly one of ``solution`` / ``rejection`` is set.  ``queue_wait_s``
    covers enqueue to execution start; ``solve_s`` the solver call
    itself; ``batch_size`` how many requests shared the dispatch.
    """

    solution: dict | None = None
    rejection: Rejection | None = None
    queue_wait_s: float = 0.0
    solve_s: float = 0.0
    batch_size: int = 1


@dataclass
class _Entry:
    seq: int
    work: SolveWork
    future: Future
    enqueued_at: float
    #: Deadline semantics shared with the write-retry machinery.
    deadline: RetryPolicy | None = field(default=None, repr=False)

    def expired(self, now: float) -> bool:
        return self.deadline is not None and self.deadline.past_deadline(
            now - self.enqueued_at
        )


class SolveDispatcher:
    """Bounded priority queue + batching thread + solver worker pool.

    ``solve_fn(work) -> dict`` produces the solution payload for one
    request (injectable for tests); it runs on the worker pool, so it
    must be thread-safe — which the algorithm registry and ``solve()``
    facade are.
    """

    def __init__(
        self,
        solve_fn,
        *,
        workers: int = 2,
        max_queue: int = 64,
        max_batch: int = 8,
        batch_window_s: float = 0.002,
        tracer: NullTracer = NULL_TRACER,
        clock=time.monotonic,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue!r}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch!r}")
        if batch_window_s < 0:
            raise ValueError(
                f"batch_window_s must be >= 0, got {batch_window_s!r}"
            )
        self._solve_fn = solve_fn
        self.workers = workers
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s
        self._tracer = tracer
        self._clock = clock
        self._cv = threading.Condition()
        # Dispatch is gated on a free worker so the queue bound is real:
        # without this the batcher would drain the bounded queue into
        # the pool's unbounded internal one and ``max_queue`` would
        # never push back.
        self._slots = threading.Semaphore(workers)
        self._queue: list[_Entry] = []
        self._seq = 0
        self._closed = False
        self._drain = True
        self._drain_deadline: float | None = None
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-solve"
        )
        self._stats_lock = threading.Lock()
        self._batches = 0
        self._dispatched = 0
        self._coalesced = 0
        self._largest_batch = 0
        self._expired = 0
        self._drain_rejected = 0
        self._batcher = threading.Thread(
            target=self._batcher_loop, name="repro-batcher", daemon=True
        )
        self._batcher.start()

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests currently waiting in the queue."""
        with self._cv:
            return len(self._queue)

    def try_submit(self, work: SolveWork) -> Future | None:
        """Queue one request; None when the bounded queue is full.

        Raises ``RuntimeError`` after :meth:`shutdown` — callers decide
        how to surface that (the service answers 503).
        """
        entry_deadline = (
            None
            if work.deadline_s is None
            else RetryPolicy(deadline_s=work.deadline_s)
        )
        with self._cv:
            if self._closed:
                raise RuntimeError("dispatcher is shut down")
            if len(self._queue) >= self.max_queue:
                return None
            future: Future = Future()
            self._queue.append(
                _Entry(
                    seq=self._seq,
                    work=work,
                    future=future,
                    enqueued_at=self._clock(),
                    deadline=entry_deadline,
                )
            )
            self._seq += 1
            self._cv.notify_all()
            return future

    # ------------------------------------------------------------------
    def _pop_head(self) -> _Entry | None:
        """Highest priority, then FIFO — caller holds the lock."""
        if not self._queue:
            return None
        head = min(self._queue, key=lambda e: (-e.work.priority, e.seq))
        self._queue.remove(head)
        return head

    def _pop_compatible(self, head: _Entry, room: int) -> list[_Entry]:
        """Up to ``room`` queued requests batchable with ``head`` (FIFO);
        caller holds the lock."""
        taken = []
        for entry in list(self._queue):
            if len(taken) >= room:
                break
            if entry.work.batch_key == head.work.batch_key:
                self._queue.remove(entry)
                taken.append(entry)
        return taken

    def _drain_expired(self) -> bool:
        """Whether the hard drain deadline has passed (lock-free read:
        the deadline is written once, under the condition lock)."""
        deadline = self._drain_deadline
        return deadline is not None and self._clock() >= deadline

    def _acquire_slot(self) -> bool:
        """Block until a worker is free; False when the shutdown mode
        (no drain, or a drain whose deadline expired) says stop waiting."""
        while not self._slots.acquire(timeout=0.05):
            with self._cv:
                if self._closed and (not self._drain or self._drain_expired()):
                    return False
        return True

    def _flush_queue_on_shutdown(self) -> None:
        """Reject everything still queued (called with no locks held)."""
        with self._cv:
            stranded = list(self._queue)
            self._queue.clear()
            expired = self._drain and self._drain_expired()
        for entry in stranded:
            with self._stats_lock:
                self._drain_rejected += 1
            self._reject(
                entry,
                Rejection(
                    code=REJECT_DRAINING if expired else REJECT_SHUTTING_DOWN,
                    message=(
                        "drain deadline expired before dispatch"
                        if expired
                        else "service shut down before dispatch"
                    ),
                    http_status=503,
                ),
                queue_wait_s=self._clock() - entry.enqueued_at,
            )

    def _batcher_loop(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if not self._queue:
                    return  # closed and drained (or drain disabled)
                flush = self._closed and (
                    not self._drain or self._drain_expired()
                )
            if flush or not self._acquire_slot():
                self._flush_queue_on_shutdown()
                return
            with self._cv:
                head = self._pop_head()
            if head is None:
                self._slots.release()
                continue
            if head.expired(self._clock()):
                self._expire(head)
                self._slots.release()
                continue
            batch = [head]
            window_ends = self._clock() + self.batch_window_s
            while len(batch) < self.max_batch:
                with self._cv:
                    batch.extend(
                        self._pop_compatible(
                            head, self.max_batch - len(batch)
                        )
                    )
                    if len(batch) >= self.max_batch:
                        break
                    remaining = window_ends - self._clock()
                    if remaining <= 0 or self._closed:
                        break
                    self._cv.wait(timeout=remaining)
            self._dispatch(batch)

    def _dispatch(self, batch: list[_Entry]) -> None:
        with self._stats_lock:
            self._batches += 1
            self._dispatched += len(batch)
            if len(batch) > 1:
                self._coalesced += len(batch)
            self._largest_batch = max(self._largest_batch, len(batch))
        self._pool.submit(self._run_batch, batch)

    def _run_batch(self, batch: list[_Entry]) -> None:
        try:
            self._run_batch_inner(batch)
        finally:
            self._slots.release()

    def _run_batch_inner(self, batch: list[_Entry]) -> None:
        t_start = self._clock()
        size = len(batch)
        for entry in batch:
            if not entry.future.set_running_or_notify_cancel():
                continue
            now = self._clock()
            if entry.expired(now):
                self._expire(entry, running=True)
                continue
            queue_wait = now - entry.enqueued_at
            t0 = now
            try:
                solution = self._solve_fn(entry.work)
            except BaseException as exc:
                entry.future.set_exception(exc)
                continue
            entry.future.set_result(
                DispatchOutcome(
                    solution=solution,
                    queue_wait_s=queue_wait,
                    solve_s=self._clock() - t0,
                    batch_size=size,
                )
            )
        if self._tracer.enabled:
            self._tracer.span(
                "service.batch",
                t0=t_start,
                t1=self._clock(),
                size=size,
                batch_key=str(batch[0].work.batch_key),
            )

    # ------------------------------------------------------------------
    def _expire(self, entry: _Entry, running: bool = False) -> None:
        with self._stats_lock:
            self._expired += 1
        waited = self._clock() - entry.enqueued_at
        rejection = Rejection(
            code=REJECT_DEADLINE,
            message=(
                f"deadline of {entry.work.deadline_s:g}s expired after "
                f"{waited:.3f}s in the queue"
            ),
            http_status=504,
        )
        if running:
            entry.future.set_result(
                DispatchOutcome(rejection=rejection, queue_wait_s=waited)
            )
        else:
            self._reject(entry, rejection, queue_wait_s=waited)

    def _reject(
        self, entry: _Entry, rejection: Rejection, queue_wait_s: float = 0.0
    ) -> None:
        if entry.future.set_running_or_notify_cancel():
            entry.future.set_result(
                DispatchOutcome(
                    rejection=rejection, queue_wait_s=queue_wait_s
                )
            )

    # ------------------------------------------------------------------
    def shutdown(self, drain: bool = True, timeout: float | None = 30.0):
        """Stop the dispatcher.

        ``drain=True`` (graceful): already-queued requests still run to
        completion — but only until ``timeout`` (the hard drain
        deadline); whatever is still queued then resolves with a 503
        ``draining`` rejection rather than waiting on a stalled batch
        forever.  ``drain=False``: queued requests resolve with a
        shutting-down rejection and the pool stops after in-flight
        batches.  Returns once the batcher has exited (or the deadline
        passed); a batch already on a worker may still be finishing in
        the background.  Idempotent.
        """
        with self._cv:
            self._closed = True
            self._drain = drain
            if drain and timeout is not None:
                self._drain_deadline = self._clock() + timeout
            self._cv.notify_all()
        self._batcher.join(timeout=timeout)
        if self._batcher.is_alive() or self._drain_expired():
            # Past the deadline with work still in flight: do not block
            # on it.  cancel_futures clears any not-yet-started batch.
            self._pool.shutdown(wait=False, cancel_futures=True)
        else:
            self._pool.shutdown(wait=True)

    def stats(self) -> dict:
        """Queue/batching counters for the ``/status`` endpoint."""
        with self._stats_lock, self._cv:
            return {
                "depth": len(self._queue),
                "workers": self.workers,
                "max_queue": self.max_queue,
                "max_batch": self.max_batch,
                "batch_window_s": self.batch_window_s,
                "batches": self._batches,
                "dispatched": self._dispatched,
                "coalesced": self._coalesced,
                "largest_batch": self._largest_batch,
                "expired": self._expired,
                "drain_rejected": self._drain_rejected,
            }
