"""Wire shapes of the scheduling service: requests, solutions, rejections.

Everything the service speaks is plain JSON.  This module owns the
translation between wire payloads and typed objects:

* :func:`parse_solve_payload` — a ``POST /solve`` body into a validated
  :class:`SolveWork`, with errors that name the offending field;
* :func:`solve_request_key` — the memo-cache key: the canonical-JSON +
  CRC32C fingerprint of *everything that determines the solution*
  (instance, algorithm, engine, time limit), built on
  :func:`repro.core.instance_fingerprint`'s canonical instance form;
* :func:`solution_json_dict` — a :class:`~repro.core.SolveResult` into
  the JSON-safe solution payload the cache stores and responses embed
  (deterministic: no wall-clock fields, so a cache hit is byte-identical
  to the miss that filled it);
* :class:`Rejection` — the structured refusal every overload path
  returns instead of an exception trace (429-style for quota/queue
  pressure, 504-style for expired deadlines, 503 while draining).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..core.model import ProblemInstance
from ..core.registry import DEFAULT_ALGORITHM, get_algorithm_info
from ..core.serialization import (
    instance_from_json,
    instance_json_dict,
    schedule_to_json,
)
from ..core.solve import SolveResult
from ..durability.fingerprint import fingerprint_json

__all__ = [
    "BadRequestError",
    "EngineUnavailableError",
    "Rejection",
    "SolveWork",
    "REJECT_QUOTA",
    "REJECT_QUEUE_FULL",
    "REJECT_DEADLINE",
    "REJECT_SHUTTING_DOWN",
    "REJECT_DRAINING",
    "REJECT_ENGINE_UNAVAILABLE",
    "parse_solve_payload",
    "solve_request_key",
    "campaign_request_key",
    "solution_json_dict",
]

#: Per-tenant token bucket is empty — retry after ``retry_after_s``.
REJECT_QUOTA = "quota_exhausted"
#: The bounded admission queue is at capacity.
REJECT_QUEUE_FULL = "queue_full"
#: The request's deadline expired while it waited in the queue.
REJECT_DEADLINE = "deadline_exceeded"
#: The service is draining for shutdown and admits nothing new.
REJECT_SHUTTING_DOWN = "shutting_down"
#: The drain deadline expired before this queued request could run.
REJECT_DRAINING = "draining"
#: The engine circuit breaker is open and no memoized result exists.
REJECT_ENGINE_UNAVAILABLE = "engine_unavailable"


class BadRequestError(ValueError):
    """A malformed request body; the message names the bad field."""


class EngineUnavailableError(RuntimeError):
    """The engine circuit breaker refused the call (degraded mode).

    Raised on the worker path, mapped by the service to a structured
    503 ``engine_unavailable`` rejection with a retry hint.
    """

    def __init__(self, retry_after_s: float | None = None) -> None:
        super().__init__("engine circuit breaker is open")
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class Rejection:
    """A structured refusal: machine-readable code, human message.

    ``http_status`` is what the HTTP layer sends (429 for pressure, 504
    for expired deadlines, 503 while draining); ``retry_after_s`` is the
    token-bucket refill estimate when one exists.
    """

    code: str
    message: str
    http_status: int = 429
    retry_after_s: float | None = None

    def to_json_dict(self) -> dict:
        """The ``error`` object embedded in a rejection response."""
        error: dict = {"code": self.code, "message": self.message}
        if self.retry_after_s is not None:
            error["retry_after_s"] = round(self.retry_after_s, 6)
        return error


@dataclass(frozen=True)
class SolveWork:
    """One validated solve request, ready for admission and dispatch.

    ``key`` is the memo-cache identity (see :func:`solve_request_key`);
    ``batch_key`` groups requests the batching layer may coalesce into
    one dispatch — same solver configuration, different instances.
    """

    instance: ProblemInstance
    algorithm: str
    engine: str
    time_limit: float | None
    tenant: str
    priority: int
    deadline_s: float | None
    use_cache: bool
    key: str

    @property
    def batch_key(self) -> tuple:
        """Requests sharing this key may run in one coalesced batch."""
        return (self.algorithm, self.engine, self.time_limit)


def solve_request_key(
    instance: ProblemInstance,
    algorithm: str,
    engine: str = "sim",
    time_limit: float | None = None,
) -> str:
    """The memo-cache key of a solve request.

    Fingerprints the canonical instance form together with every knob
    that can change the produced schedule, via the same canonical-JSON +
    CRC32C definition the durability journal uses — so "identical
    request" means exactly "byte-identical canonical serialization".
    """
    return fingerprint_json(
        {
            "instance": instance_json_dict(instance),
            "algorithm": algorithm,
            "engine": engine,
            "time_limit": time_limit,
        }
    )


#: Campaign request fields that determine the executed campaign — the
#: idempotency fingerprint is defined over exactly these (plus the
#: server-side journal path, which changes what a replay resumes).
CAMPAIGN_KEY_FIELDS = (
    "app",
    "nodes",
    "ppn",
    "iterations",
    "solution",
    "seed",
    "engine",
    "faults",
    "data_dir",
    "data_edge",
    "workers",
    "journal",
)


def campaign_request_key(payload: dict) -> str:
    """The idempotency key of a campaign request.

    Same canonical-JSON + CRC32C definition as
    :func:`solve_request_key`, over every field that can change the
    campaign's outcome.  ``tenant`` is deliberately excluded: two
    tenants submitting the same campaign are still the same work.
    """
    return fingerprint_json(
        {
            "campaign": {
                name: payload.get(name)
                for name in CAMPAIGN_KEY_FIELDS
                if payload.get(name) is not None
            }
        }
    )


def _field(payload: dict, name: str, types, default, *, required=False):
    if name not in payload or payload[name] is None:
        if required:
            raise BadRequestError(f"request field {name!r} is required")
        return default
    value = payload[name]
    # bool is an int subclass; only accept it where bool is asked for.
    if types is bool:
        ok = isinstance(value, bool)
    else:
        ok = isinstance(value, types) and not isinstance(value, bool)
    if not ok:
        raise BadRequestError(
            f"request field {name!r} has the wrong type: {value!r}"
        )
    return value


def parse_solve_payload(payload: dict) -> SolveWork:
    """Validate a ``POST /solve`` body into a :class:`SolveWork`.

    Raises :class:`BadRequestError` naming the offending field for any
    malformed input — the HTTP layer turns that into a 400 with a
    structured error body, never a traceback.
    """
    if not isinstance(payload, dict):
        raise BadRequestError(
            f"request body must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    raw_instance = _field(payload, "instance", dict, None, required=True)
    try:
        instance = instance_from_json(json.dumps(raw_instance))
    except (KeyError, TypeError, ValueError) as exc:
        raise BadRequestError(f"request field 'instance': {exc}") from exc

    algorithm = _field(payload, "algorithm", str, DEFAULT_ALGORITHM)
    try:
        get_algorithm_info(algorithm)
    except KeyError as exc:
        raise BadRequestError(
            f"request field 'algorithm': {exc.args[0]}"
        ) from exc

    engine = _field(payload, "engine", str, "sim")
    if engine != "sim":
        from ..engines import EngineError, get_engine

        try:
            get_engine(engine)
        except EngineError as exc:
            raise BadRequestError(
                f"request field 'engine': {exc}"
            ) from exc

    time_limit = _field(payload, "time_limit", (int, float), None)
    if time_limit is not None and not time_limit > 0:
        raise BadRequestError(
            f"request field 'time_limit' must be positive, got {time_limit!r}"
        )
    deadline_s = _field(payload, "deadline_s", (int, float), None)
    if deadline_s is not None and not deadline_s > 0:
        raise BadRequestError(
            f"request field 'deadline_s' must be positive, got {deadline_s!r}"
        )
    priority = _field(payload, "priority", int, 0)
    tenant = _field(payload, "tenant", str, "default")
    if not tenant:
        raise BadRequestError("request field 'tenant' must be non-empty")
    use_cache = _field(payload, "cache", bool, True)

    time_limit = None if time_limit is None else float(time_limit)
    return SolveWork(
        instance=instance,
        algorithm=algorithm,
        engine=engine,
        time_limit=time_limit,
        tenant=tenant,
        priority=int(priority),
        deadline_s=None if deadline_s is None else float(deadline_s),
        use_cache=bool(use_cache),
        key=solve_request_key(instance, algorithm, engine, time_limit),
    )


def solution_json_dict(result: SolveResult) -> dict:
    """The JSON-safe solution payload of one solve.

    Deliberately deterministic — no wall-clock or per-run fields — so
    the byte-identity guarantee holds: a cached copy of this dict is
    indistinguishable from re-solving.  The schedule embeds its instance
    (the :func:`~repro.core.schedule_from_json` shape), so a client can
    re-validate the solution locally.
    """
    schedule = result.schedule
    return {
        "algorithm": result.algorithm,
        "engine": result.engine,
        "status": result.status,
        "makespan": result.makespan,
        "schedule": (
            None
            if schedule is None
            else json.loads(schedule_to_json(schedule))
        ),
        "detail": result.detail,
    }
