"""Durable request ledger + chaos hooks: crash-recoverable serving.

A SIGKILL between "request admitted" and "response recorded" must not
lose the request — that is the same guarantee the campaign journal
gives iterations, applied to the serving tier.  This module provides

* :class:`RequestLedger` — a write-ahead log of admitted ``/solve`` and
  ``/campaign`` requests in the journal's line format (canonical JSON,
  per-line CRC32C, torn-tail truncation on open).  Every admitted
  request appends an *open* record keyed by its idempotency key (the
  canonical request fingerprint); its terminal response appends a
  *close* record carrying the status and body.  On restart
  :meth:`RequestLedger.incomplete` yields exactly the requests that
  were admitted but never answered, in admission order, for the
  service to replay.
* :class:`ServiceChaos` — environment-armed crash points for the
  serving tier (``REPRO_SERVICE_CRASH=point[:N]``), reusing the
  durability layer's crash-handler machinery so tests can kill the
  server at the three instants whose recovery behaviour differs:
  ``post-admission`` (open record durable, nothing ran),
  ``mid-dispatch`` (work executing), and ``pre-completion`` (result
  durable in the memo cache, close record missing).  An optional
  one-shot token file (``REPRO_SERVICE_CRASH_TOKEN``) makes a crash
  fire exactly once across watchdog restarts instead of looping.

``repro verify`` scrubs ledger files through
:func:`repro.durability.verify_ledger` (kind ``ledger``, sniffed from
the ``begin`` record's ``ledger_version`` stamp).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from ..durability.crashpoints import SERVICE_CRASH_POINTS, trigger_crash
from ..durability.journal import (
    JournalError,
    decode_record,
    encode_record,
    read_journal,
)

__all__ = ["LedgerEntry", "RequestLedger", "ServiceChaos"]

LEDGER_VERSION = 1


@dataclass(frozen=True)
class LedgerEntry:
    """One admitted-but-unanswered request awaiting replay."""

    key: str
    kind: str  # "solve" | "campaign"
    payload: dict


class RequestLedger:
    """Append-only write-ahead log of admitted service requests.

    Record protocol (seq-numbered lines in the campaign-journal wire
    format):

    ``begin``
        seq 0, ``{"ledger_version": 1}`` — identifies the file;
    ``open``
        ``{"key", "kind", "payload"}`` — appended after admission,
        before execution; fsynced before the request proceeds;
    ``close``
        ``{"key", "status", "body"}`` — the request's terminal
        response.  Only a 200 body is served verbatim to duplicate
        submissions; non-200 closes just mark the entry settled so a
        restart does not replay a request that was already answered.

    Opening an existing ledger truncates a torn tail line (expected
    crash damage) and raises :class:`~repro.durability.JournalError`
    on damage anywhere earlier.  All methods are thread-safe.
    """

    def __init__(self, path: str | os.PathLike, *, fsync: bool = True) -> None:
        self.path = os.fspath(path)
        self._fsync = fsync
        self._lock = threading.Lock()
        self._open: dict[str, LedgerEntry] = {}
        self._closed: dict[str, tuple[int, dict]] = {}
        self._order: list[str] = []  # open order, for deterministic replay
        self._seq = 0
        self._recovered_torn = False
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if os.path.exists(self.path):
            self._load()
        else:
            self._fh = open(self.path, "ab")
            self._append("begin", {"ledger_version": LEDGER_VERSION})

    def _load(self) -> None:
        records, good_bytes, torn = read_journal(self.path)
        if not records:
            raise JournalError(
                f"ledger {self.path}: no intact records "
                f"(delete the file to start fresh)"
            )
        first = records[0]
        if (
            first["type"] != "begin"
            or first["data"].get("ledger_version") != LEDGER_VERSION
        ):
            raise JournalError(
                f"ledger {self.path}: not a version-{LEDGER_VERSION} "
                f"request ledger (first record: {first['type']!r})"
            )
        for record in records[1:]:
            kind, data = record["type"], record["data"]
            key = data.get("key")
            if kind == "open" and isinstance(key, str):
                self._open[key] = LedgerEntry(
                    key=key,
                    kind=data.get("kind", "solve"),
                    payload=data.get("payload") or {},
                )
                self._order.append(key)
            elif kind == "close" and isinstance(key, str):
                self._closed[key] = (data.get("status", 200), data.get("body"))
                self._open.pop(key, None)
            else:
                raise JournalError(
                    f"ledger {self.path} seq {record['seq']}: unexpected "
                    f"record type {kind!r}"
                )
        self._seq = len(records)
        self._recovered_torn = torn
        if torn:
            # Same recovery move as journal resume: a torn tail is
            # expected crash damage — cut it so appends stay aligned.
            with open(self.path, "r+b") as fh:
                fh.truncate(good_bytes)
        self._fh = open(self.path, "ab")

    # ------------------------------------------------------------------
    def _append(self, type: str, data: dict) -> None:
        """Append one record durably (caller need not hold the lock
        for the encode — the write itself is serialized)."""
        line = encode_record(self._seq, type, data)
        self._seq += 1
        self._fh.write(line)
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())

    def record_open(self, key: str, kind: str, payload: dict) -> bool:
        """Admit ``key`` into the ledger; False if it is already known
        (open or settled) — the caller coalesces instead of re-logging."""
        with self._lock:
            if self._fh is None or key in self._open or key in self._closed:
                return False
            entry = LedgerEntry(key=key, kind=kind, payload=payload)
            self._append(
                "open", {"key": key, "kind": kind, "payload": payload}
            )
            self._open[key] = entry
            self._order.append(key)
            return True

    def record_close(self, key: str, status: int, body: dict) -> bool:
        """Settle ``key`` with its terminal response; False when the
        key has no open entry (nothing to settle)."""
        with self._lock:
            if self._fh is None or key not in self._open or key in self._closed:
                return False
            self._append(
                "close", {"key": key, "status": status, "body": body}
            )
            self._closed[key] = (status, body)
            del self._open[key]
            return True

    def is_open(self, key: str) -> bool:
        with self._lock:
            return key in self._open

    def closed_body(self, key: str) -> tuple[int, dict] | None:
        """The recorded ``(status, body)`` of a settled key, or None."""
        with self._lock:
            return self._closed.get(key)

    def incomplete(self) -> list[LedgerEntry]:
        """Admitted-but-unanswered entries, in admission order."""
        with self._lock:
            return [
                self._open[key] for key in self._order if key in self._open
            ]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """A JSON-safe snapshot for the ``/status`` endpoint."""
        with self._lock:
            return {
                "path": self.path,
                "open": len(self._open),
                "closed": len(self._closed),
                "records": self._seq,
                "recovered_torn_tail": self._recovered_torn,
            }

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "RequestLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _read_ledger(path: str | os.PathLike):
    """(records, torn) of a ledger file — test/tooling convenience."""
    records, _, torn = read_journal(path)
    return records, torn


class ServiceChaos:
    """Environment-armed crash points on the service request path.

    ``REPRO_SERVICE_CRASH=mid-dispatch`` crashes the process (hard, via
    the durability crash handler: ``os._exit(137)``) the first time the
    named point is hit; ``mid-dispatch:3`` the third time.  With
    ``REPRO_SERVICE_CRASH_TOKEN=/path/to/token`` the crash additionally
    requires the token file to exist and consumes (unlinks) it first —
    so a supervised restart of the same environment does not crash
    again, which is exactly what the watchdog end-to-end test needs.

    Unarmed (the default), :meth:`hit` only counts, adding zero
    branches beyond a dict lookup to the hot path.
    """

    def __init__(
        self,
        point: str | None = None,
        at_hit: int = 1,
        token_path: str | None = None,
    ) -> None:
        if point is not None and point not in SERVICE_CRASH_POINTS:
            raise ValueError(
                f"unknown service crash point {point!r} "
                f"(valid: {', '.join(SERVICE_CRASH_POINTS)})"
            )
        if at_hit < 1:
            raise ValueError(f"crash hit count must be >= 1, got {at_hit!r}")
        self.point = point
        self.at_hit = at_hit
        self.token_path = token_path
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {p: 0 for p in SERVICE_CRASH_POINTS}

    @classmethod
    def from_env(cls, environ=None) -> "ServiceChaos":
        environ = os.environ if environ is None else environ
        spec = environ.get("REPRO_SERVICE_CRASH")
        token = environ.get("REPRO_SERVICE_CRASH_TOKEN")
        if not spec:
            return cls(None)
        point, _, count = spec.partition(":")
        return cls(
            point.strip(),
            at_hit=int(count) if count else 1,
            token_path=token or None,
        )

    @property
    def armed(self) -> bool:
        return self.point is not None

    def hit(self, point: str) -> None:
        """Mark one pass through ``point``; crashes when armed for it."""
        with self._lock:
            self._hits[point] = self._hits.get(point, 0) + 1
            count = self._hits[point]
        if self.point != point or count != self.at_hit:
            return
        if self.token_path is not None:
            try:
                os.unlink(self.token_path)
            except FileNotFoundError:
                return  # token already consumed: crash exactly once
        trigger_crash(point, count)

    def hits(self, point: str) -> int:
        with self._lock:
            return self._hits.get(point, 0)
