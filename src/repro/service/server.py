"""The JSON-over-HTTP face of the scheduling service (stdlib asyncio).

A deliberately small HTTP/1.1 server built on ``asyncio`` streams — no
web framework, no new dependencies — that adapts wire requests onto the
thread-based :class:`~repro.service.service.SchedulingService` core.
The split matters: all scheduling logic (cache, admission, batching,
telemetry) lives in the core and is fully testable in-process; this
module only parses requests, awaits the core's
``concurrent.futures.Future`` results via :func:`asyncio.wrap_future`,
and serializes responses.

Routes:

========  ============  ====================================================
method    path          handled by
========  ============  ====================================================
POST      ``/solve``    :meth:`SchedulingService.begin_solve`
POST      ``/campaign``  :meth:`SchedulingService.begin_campaign`
GET       ``/status``   :meth:`SchedulingService.status_payload`
GET       ``/health``   :meth:`SchedulingService.health_payload`
POST      ``/shutdown``  graceful drain, then the server exits
========  ============  ====================================================

Every response body is a JSON object; errors use the same structured
``{"ok": false, "error": {"code", "message"}}`` shape the service core
produces, so clients never parse a traceback.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from concurrent.futures import Future

from ..durability.atomic import atomic_write_text
from .protocol import BadRequestError
from .service import SchedulingService

__all__ = ["ServiceServer", "serve_forever"]

#: Largest accepted request body — a schedule instance is small; this
#: mostly guards against accidental garbage on the port.
MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_HEADER_BYTES = 64 * 1024


class _HttpError(Exception):
    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


class ServiceServer:
    """One listening scheduling service: asyncio front, threaded core.

    Usage::

        server = ServiceServer(service, host="127.0.0.1", port=8742)
        asyncio.run(server.run())          # serves until shutdown

    or, from synchronous code (tests, the CLI), via
    :func:`serve_forever`.
    """

    def __init__(
        self,
        service: SchedulingService,
        host: str = "127.0.0.1",
        port: int = 8742,
        *,
        heartbeat_path: str | None = None,
        heartbeat_interval_s: float = 1.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        #: While serving, refreshed every ``heartbeat_interval_s`` from
        #: the event loop — so a wedged loop (livelock) stops the file
        #: from advancing and the watchdog notices, even though the
        #: process is alive and the socket still accepts connections.
        self.heartbeat_path = heartbeat_path
        self.heartbeat_interval_s = heartbeat_interval_s
        #: Set once the listening socket is bound; carries the actual
        #: (host, port) — useful with ``port=0``.
        self.bound: tuple[str, int] | None = None
        self._shutdown_requested = asyncio.Event()
        self._on_bound: list = []

    def add_bound_callback(self, callback) -> None:
        """``callback(host, port)`` runs once the socket is listening."""
        self._on_bound.append(callback)

    def request_shutdown(self) -> None:
        """Ask the serve loop to drain and exit (signal-handler safe)."""
        self._shutdown_requested.set()

    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Bind, serve until shutdown is requested, then drain and exit."""
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = server.sockets[0].getsockname()
        self.bound = (sock[0], sock[1])
        for callback in self._on_bound:
            callback(*self.bound)
        heartbeat = (
            asyncio.ensure_future(self._heartbeat_loop())
            if self.heartbeat_path is not None
            else None
        )
        try:
            async with server:
                await self._shutdown_requested.wait()
        finally:
            if heartbeat is not None:
                heartbeat.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await heartbeat
        # Socket closed: drain the core off the event loop so queued
        # solves and in-flight campaigns finish (journals flush).
        await asyncio.get_running_loop().run_in_executor(
            None, self.service.shutdown
        )

    async def _heartbeat_loop(self) -> None:
        while True:
            with contextlib.suppress(OSError):
                # No fsync: the heartbeat only needs a fresh mtime, and
                # an fsync per beat would thrash the disk for nothing.
                atomic_write_text(
                    self.heartbeat_path, f"{self.bound}\n", fsync=False
                )
            await asyncio.sleep(self.heartbeat_interval_s)

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    await self._respond(
                        writer,
                        exc.status,
                        {
                            "ok": False,
                            "error": {
                                "code": exc.code,
                                "message": str(exc),
                            },
                        },
                    )
                    return
                if request is None:
                    return  # client closed the connection
                method, path, body, headers = request
                status, payload = await self._route(
                    method, path, body, headers
                )
                await self._respond(writer, status, payload)
                if self._shutdown_requested.is_set():
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise _HttpError(
                400, "bad_request", "truncated HTTP request"
            ) from exc
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(
                431, "bad_request", "request headers too large"
            ) from exc
        if len(header_blob) > _MAX_HEADER_BYTES:
            raise _HttpError(431, "bad_request", "request headers too large")
        head, *header_lines = header_blob.decode(
            "latin-1"
        ).rstrip("\r\n").split("\r\n")
        parts = head.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(
                400, "bad_request", f"malformed request line: {head!r}"
            )
        method, path = parts[0].upper(), parts[1]
        headers = {}
        for line in header_lines:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(
                400, "bad_request", f"bad Content-Length: {length_text!r}"
            ) from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpError(
                413,
                "body_too_large",
                f"request body of {length} bytes exceeds "
                f"{MAX_BODY_BYTES} limit",
            )
        body = await reader.readexactly(length) if length else b""
        return method, path, body, headers

    async def _route(
        self, method: str, path: str, body: bytes, headers: dict | None = None
    ):
        headers = headers or {}
        path = path.split("?", 1)[0]
        if method == "GET" and path == "/health":
            return 200, self.service.health_payload()
        if method == "GET" and path == "/status":
            return 200, self.service.status_payload()
        if method == "POST" and path == "/shutdown":
            self._shutdown_requested.set()
            return 200, {"ok": True, "draining": True}
        if method == "POST" and path in ("/solve", "/campaign"):
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {
                    "ok": False,
                    "error": {
                        "code": "bad_request",
                        "message": f"request body is not valid JSON: {exc}",
                    },
                }
            idem_key = headers.get("x-idempotency-key")
            if idem_key and isinstance(payload, dict):
                # The retry header wins over any body-level key: the
                # client keeps it stable across resubmissions, which is
                # what makes retried requests exactly-once.
                payload["idempotency_key"] = idem_key
            begin = (
                self.service.begin_solve
                if path == "/solve"
                else self.service.begin_campaign
            )
            try:
                pending = begin(payload)
            except BadRequestError as exc:
                return 400, {
                    "ok": False,
                    "error": {"code": "bad_request", "message": str(exc)},
                }
            if isinstance(pending, Future):
                return await asyncio.wrap_future(pending)
            return pending
        return 404, {
            "ok": False,
            "error": {
                "code": "not_found",
                "message": f"no route for {method} {path}",
            },
        }

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            413: "Payload Too Large",
            429: "Too Many Requests",
            431: "Request Header Fields Too Large",
            500: "Internal Server Error",
            503: "Service Unavailable",
            504: "Gateway Timeout",
        }.get(status, "OK")
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()


def serve_forever(
    service: SchedulingService,
    host: str = "127.0.0.1",
    port: int = 8742,
    *,
    on_bound=None,
    install_signal_handlers: bool = False,
    heartbeat_path: str | None = None,
    heartbeat_interval_s: float = 1.0,
) -> None:
    """Blocking entry point: serve until a shutdown request, then drain.

    ``on_bound(host, port)`` fires once the socket listens (the CLI
    prints the listening line from it; tests grab the ephemeral port).
    With ``install_signal_handlers`` SIGINT/SIGTERM trigger the same
    graceful drain as ``POST /shutdown``.  ``heartbeat_path`` arms the
    liveness file the watchdog (``repro serve --supervised``) watches.
    """
    server = ServiceServer(
        service,
        host=host,
        port=port,
        heartbeat_path=heartbeat_path,
        heartbeat_interval_s=heartbeat_interval_s,
    )
    if on_bound is not None:
        server.add_bound_callback(on_bound)

    async def _main() -> None:
        if install_signal_handlers:
            import signal

            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError):
                    loop.add_signal_handler(
                        signum, server.request_shutdown
                    )
        await server.run()

    asyncio.run(_main())
