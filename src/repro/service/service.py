"""The scheduling service core: solve/campaign handling, HTTP-free.

:class:`SchedulingService` is the whole request path minus the wire
protocol: parse -> memo cache -> admission -> batching dispatch ->
solution, plus campaign execution, status aggregation, and graceful
drain.  The asyncio HTTP server (:mod:`repro.service.server`) is a thin
adapter over it, and benchmarks/tests drive it in-process so cache-hit
latency can be measured without a socket in the loop.

Request lifecycle for ``solve``:

1. parse + validate (:func:`~repro.service.protocol.parse_solve_payload`);
2. memo-cache lookup by canonical fingerprint — a hit returns the stored
   payload immediately: no admission token is spent, no queue wait, and
   *no solver span is emitted*, only the ``service.request`` span with
   ``cache="hit"``;
3. admission: the tenant's token bucket (429 + ``retry_after_s`` when
   empty), then the bounded dispatch queue (429 ``queue_full``);
4. batching dispatch; the completed solution is stored in the cache and
   returned.

Every request — hit, miss, or rejection — emits one ``service.request``
span carrying tenant, cache outcome, queue wait, and solve time, so a
``--trace-out`` recording of a serving session is a complete request
log.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from ..core.solve import solve
from ..resilience.breaker import CircuitBreaker
from ..telemetry import NULL_TRACER, NullTracer
from .admission import AdmissionController
from .cache import MemoCache
from .dispatch import DispatchOutcome, SolveDispatcher
from .protocol import (
    REJECT_ENGINE_UNAVAILABLE,
    REJECT_QUEUE_FULL,
    REJECT_SHUTTING_DOWN,
    BadRequestError,
    EngineUnavailableError,
    Rejection,
    SolveWork,
    campaign_request_key,
    parse_solve_payload,
    solution_json_dict,
)
from .recovery import RequestLedger, ServiceChaos

__all__ = ["ServiceConfig", "SchedulingService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance (all validated on construction).

    Attributes:
        workers: solver worker threads behind the batching dispatcher.
        max_queue: bounded dispatch-queue depth; requests beyond it get
            a structured ``queue_full`` rejection.
        max_batch: most requests one coalesced dispatch may carry.
        batch_window_s: how long the batcher waits for compatible
            requests to arrive before dispatching a partial batch.
        cache_size: memo-cache capacity in entries (0 disables).
        cache_dir: optional directory for the durable cache tier
            (atomically published ``<fingerprint>.json`` entries).
        quota_rate: default per-tenant token refill, requests/second.
        quota_burst: default per-tenant bucket capacity.
        tenant_quotas: per-tenant ``(rate, burst)`` overrides.
        campaign_workers: threads for campaign requests (they bypass
            the solve batcher — campaigns do not batch).
        campaign_cost: admission tokens one campaign request costs.
        ledger_path: optional write-ahead request ledger; admitted
            requests are journaled and replayed after a crash (see
            :mod:`repro.service.recovery`).
        drain_deadline_s: hard cap on graceful-drain time; queued
            requests past it get a 503 ``draining`` rejection.
        breaker_threshold: circuit-breaker failure-rate threshold for
            the engine and disk-cache breakers.
        breaker_window: sliding outcome window of those breakers.
        breaker_min_calls: samples required before a breaker may open.
        breaker_cooldown_s: open-state cooldown before a probe call.
    """

    workers: int = 2
    max_queue: int = 64
    max_batch: int = 8
    batch_window_s: float = 0.002
    cache_size: int = 256
    cache_dir: str | None = None
    quota_rate: float = 50.0
    quota_burst: float = 20.0
    tenant_quotas: dict = field(default_factory=dict)
    campaign_workers: int = 1
    campaign_cost: float = 4.0
    ledger_path: str | None = None
    drain_deadline_s: float = 30.0
    breaker_threshold: float = 0.5
    breaker_window: int = 8
    breaker_min_calls: int = 4
    breaker_cooldown_s: float = 5.0

    def __post_init__(self) -> None:
        def bad(name: str, requirement: str) -> ValueError:
            return ValueError(
                f"ServiceConfig.{name} {requirement}, got "
                f"{getattr(self, name)!r}"
            )

        if self.workers < 1:
            raise bad("workers", "must be >= 1")
        if self.max_queue < 1:
            raise bad("max_queue", "must be >= 1")
        if self.max_batch < 1:
            raise bad("max_batch", "must be >= 1")
        if self.batch_window_s < 0:
            raise bad("batch_window_s", "must be >= 0")
        if self.cache_size < 0:
            raise bad("cache_size", "must be >= 0")
        if self.quota_rate < 0:
            raise bad("quota_rate", "must be >= 0")
        if self.quota_burst <= 0:
            raise bad("quota_burst", "must be > 0")
        if self.campaign_workers < 1:
            raise bad("campaign_workers", "must be >= 1")
        if self.campaign_cost <= 0:
            raise bad("campaign_cost", "must be > 0")
        if self.drain_deadline_s <= 0:
            raise bad("drain_deadline_s", "must be > 0")
        if not 0.0 < self.breaker_threshold <= 1.0:
            raise bad("breaker_threshold", "must be in (0, 1]")
        if self.breaker_window < 1:
            raise bad("breaker_window", "must be >= 1")
        if self.breaker_min_calls < 1:
            raise bad("breaker_min_calls", "must be >= 1")
        if self.breaker_cooldown_s <= 0:
            raise bad("breaker_cooldown_s", "must be > 0")


class SchedulingService:
    """Scheduling-as-a-service: memoized, batched, quota-guarded.

    ``begin_solve`` / ``begin_campaign`` return either an immediate
    ``(http_status, body)`` pair (cache hit, rejection, bad request) or
    a :class:`concurrent.futures.Future` resolving to one — the asyncio
    server awaits the future, synchronous callers use the blocking
    :meth:`solve` / :meth:`campaign` conveniences.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        tracer: NullTracer = NULL_TRACER,
        clock=time.monotonic,
    ) -> None:
        self.config = config or ServiceConfig()
        self.tracer = tracer
        self._clock = clock
        self.engine_breaker = self._make_breaker("engine", clock)
        self.disk_breaker = self._make_breaker("disk_cache", clock)
        self.cache = MemoCache(
            capacity=self.config.cache_size,
            cache_dir=self.config.cache_dir,
            breaker=(
                self.disk_breaker
                if self.config.cache_dir is not None
                else None
            ),
        )
        self.admission = AdmissionController(
            rate=self.config.quota_rate,
            burst=self.config.quota_burst,
            tenant_quotas=self.config.tenant_quotas,
            clock=clock,
        )
        self.dispatcher = SolveDispatcher(
            self._solve_work,
            workers=self.config.workers,
            max_queue=self.config.max_queue,
            max_batch=self.config.max_batch,
            batch_window_s=self.config.batch_window_s,
            tracer=tracer,
            clock=clock,
        )
        self._campaign_pool = ThreadPoolExecutor(
            max_workers=self.config.campaign_workers,
            thread_name_prefix="repro-campaign",
        )
        self._lock = threading.Lock()
        self._requests = 0
        self._counts = {
            "solve": 0,
            "campaign": 0,
            "cache_hits": 0,
            "rejected": 0,
            "errors": 0,
            "coalesced": 0,
            "ledger_hits": 0,
            "replayed": 0,
        }
        self._inflight: dict[str, Future] = {}
        self.ledger = (
            RequestLedger(self.config.ledger_path)
            if self.config.ledger_path is not None
            else None
        )
        self.chaos = ServiceChaos.from_env()
        self._draining = False
        self._started_at = clock()

    def _make_breaker(self, name: str, clock) -> CircuitBreaker:
        def emit(old: str, new: str) -> None:
            if self.tracer.enabled:
                self.tracer.counter(f"service.breaker.{name}.{new}").inc()

        return CircuitBreaker(
            name,
            failure_threshold=self.config.breaker_threshold,
            window=self.config.breaker_window,
            min_calls=self.config.breaker_min_calls,
            cooldown_s=self.config.breaker_cooldown_s,
            clock=clock,
            on_transition=emit,
        )

    # ------------------------------------------------------------------
    # solve path
    # ------------------------------------------------------------------
    def _solve_work(self, work: SolveWork) -> dict:
        """Run one solver call on a dispatcher worker (thread-safe)."""
        self.chaos.hit("mid-dispatch")
        if not self.engine_breaker.allow():
            raise EngineUnavailableError(self.engine_breaker.retry_after_s())
        try:
            result = solve(
                work.instance,
                work.algorithm,
                tracer=self.tracer,
                time_limit=work.time_limit,
                engine=work.engine,
            )
        except Exception:
            self.engine_breaker.record_failure()
            raise
        self.engine_breaker.record_success()
        return solution_json_dict(result)

    def begin_solve(self, payload: dict, *, _replay: bool = False):
        """Handle a solve request; immediate pair or pending future.

        ``_replay`` marks a ledger-recovery re-submission: the request
        already paid admission before the crash, so the token-bucket
        charge is skipped and its existing ``open`` record is reused.
        """
        t0 = time.perf_counter()
        request_id = self._next_request_id("solve")
        try:
            work = parse_solve_payload(payload)
        except BadRequestError as exc:
            return self._bad_request(request_id, t0, str(exc))

        idem_key = self._idempotency_key(payload, work.key)

        if work.use_cache:
            cached = self.cache.get(work.key)
            if cached is not None:
                with self._lock:
                    self._counts["cache_hits"] += 1
                self._request_span(
                    t0,
                    endpoint="solve",
                    request_id=request_id,
                    tenant=work.tenant,
                    cache="hit",
                    status=200,
                    key=work.key,
                )
                body = self._solve_body(request_id, work, cached, cache="hit")
                # A crash may have lost the close record while the
                # result survived in the durable cache tier — settle
                # the ledger entry now (no-op when none is open).
                self._ledger_close(idem_key, 200, body)
                return 200, body

        recorded = self._ledger_replayable(idem_key)
        if recorded is not None:
            with self._lock:
                self._counts["ledger_hits"] += 1
            self._request_span(
                t0,
                endpoint="solve",
                request_id=request_id,
                tenant=work.tenant,
                cache="ledger",
                status=recorded[0],
                key=work.key,
            )
            return recorded

        cache_outcome = "miss" if work.use_cache else "bypass"

        # Duplicate in-flight submissions with the same idempotency key
        # coalesce onto the one pending future — one execution, many
        # waiters.
        with self._lock:
            existing = self._inflight.get(idem_key)
            if existing is not None:
                self._counts["coalesced"] += 1
                return existing

        rejection = None if _replay else self._admit(work.tenant, cost=1.0)
        if rejection is None and self.engine_breaker.state == "open":
            # Degraded mode: the engine is known-broken and nothing is
            # memoized for this request — refuse fast with an honest
            # retry hint instead of queueing doomed work.
            rejection = self._engine_unavailable_rejection()
        if rejection is None:
            # Write-ahead: the open record lands *before* the work is
            # queued, so no admitted request can crash into the gap
            # between enqueue and journal.
            self._ledger_open(idem_key, "solve", payload)
            self.chaos.hit("post-admission")
            try:
                future = self.dispatcher.try_submit(work)
            except RuntimeError:
                rejection = self._draining_rejection()
            else:
                if future is None:
                    rejection = Rejection(
                        code=REJECT_QUEUE_FULL,
                        message=(
                            "dispatch queue is at capacity "
                            f"({self.dispatcher.max_queue} requests)"
                        ),
                        http_status=429,
                        retry_after_s=0.05,
                    )
        if rejection is not None:
            result = self._rejected(
                request_id, t0, work.tenant, cache_outcome, rejection
            )
            # Settle any open record (a no-op when the rejection came
            # before the ledger write): a refused request must not be
            # replayed as if it were admitted.
            self._ledger_close(idem_key, result[0], result[1])
            return result

        # Pending: translate the dispatch outcome into a response once
        # the worker completes it.
        response: Future = Future()
        self._register_inflight(idem_key, response)

        def _complete(done: Future) -> None:
            exc = done.exception()
            if isinstance(exc, EngineUnavailableError):
                result = self._rejected(
                    request_id,
                    t0,
                    work.tenant,
                    cache_outcome,
                    self._engine_unavailable_rejection(exc.retry_after_s),
                )
                self._ledger_close(idem_key, result[0], result[1])
                response.set_result(result)
                return
            if exc is not None:
                with self._lock:
                    self._counts["errors"] += 1
                self._request_span(
                    t0,
                    endpoint="solve",
                    request_id=request_id,
                    tenant=work.tenant,
                    cache=cache_outcome,
                    status=500,
                    key=work.key,
                )
                body = {
                    "ok": False,
                    "request_id": request_id,
                    "tenant": work.tenant,
                    "error": {
                        "code": "internal_error",
                        "message": f"{type(exc).__name__}: {exc}",
                    },
                }
                self._ledger_close(idem_key, 500, body)
                response.set_result((500, body))
                return
            outcome: DispatchOutcome = done.result()
            if outcome.rejection is not None:
                result = self._rejected(
                    request_id,
                    t0,
                    work.tenant,
                    cache_outcome,
                    outcome.rejection,
                    queue_wait_s=outcome.queue_wait_s,
                )
                self._ledger_close(idem_key, result[0], result[1])
                response.set_result(result)
                return
            if work.use_cache:
                self.cache.put(work.key, outcome.solution)
            self.chaos.hit("pre-completion")
            self._request_span(
                t0,
                endpoint="solve",
                request_id=request_id,
                tenant=work.tenant,
                cache=cache_outcome,
                status=200,
                key=work.key,
                queue_wait_s=outcome.queue_wait_s,
                solve_s=outcome.solve_s,
                batch_size=outcome.batch_size,
            )
            body = self._solve_body(
                request_id,
                work,
                outcome.solution,
                cache=cache_outcome,
                timing={
                    "queue_wait_s": round(outcome.queue_wait_s, 6),
                    "solve_s": round(outcome.solve_s, 6),
                    "batch_size": outcome.batch_size,
                },
            )
            # Close record *after* the durable cache store: whatever
            # instant a crash lands, replay either finds the memoized
            # result (no re-execution) or safely re-runs an
            # unfinished solve.
            self._ledger_close(idem_key, 200, body)
            response.set_result((200, body))

        future.add_done_callback(_complete)
        return response

    def solve(self, payload: dict, timeout: float | None = 60.0):
        """Blocking convenience: the ``(status, body)`` of one request."""
        pending = self.begin_solve(payload)
        if isinstance(pending, Future):
            return pending.result(timeout=timeout)
        return pending

    def _solve_body(
        self,
        request_id: str,
        work: SolveWork,
        solution: dict,
        cache: str,
        timing: dict | None = None,
    ) -> dict:
        body = {
            "ok": True,
            "request_id": request_id,
            "tenant": work.tenant,
            "cache": cache,
            "key": work.key,
            "solution": solution,
        }
        if timing is not None:
            body["timing"] = timing
        return body

    # ------------------------------------------------------------------
    # campaign path
    # ------------------------------------------------------------------
    def begin_campaign(self, payload: dict, *, _replay: bool = False):
        """Handle a campaign request; immediate pair or pending future.

        ``_replay`` marks a ledger-recovery re-submission: admission is
        skipped, and a journaled campaign resumes its existing journal
        via the ``--resume`` machinery instead of restarting from
        iteration zero.
        """
        t0 = time.perf_counter()
        request_id = self._next_request_id("campaign")
        if not isinstance(payload, dict):
            return self._bad_request(
                request_id, t0, "request body must be a JSON object"
            )
        tenant = payload.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            return self._bad_request(
                request_id, t0, "request field 'tenant' must be a non-empty string"
            )
        try:
            spec, journal_path = self._campaign_spec(payload)
        except (TypeError, ValueError) as exc:
            return self._bad_request(request_id, t0, str(exc))

        idem_key = self._idempotency_key(
            payload, campaign_request_key(payload)
        )
        recorded = self._ledger_replayable(idem_key)
        if recorded is not None:
            with self._lock:
                self._counts["ledger_hits"] += 1
            self._request_span(
                t0,
                endpoint="campaign",
                request_id=request_id,
                tenant=tenant,
                cache="ledger",
                status=recorded[0],
            )
            return recorded

        with self._lock:
            existing = self._inflight.get(idem_key)
            if existing is not None:
                self._counts["coalesced"] += 1
                return existing

        if self._draining:
            return self._rejected(
                request_id, t0, tenant, "bypass", self._draining_rejection()
            )
        if not _replay:
            rejection = self._admit(tenant, cost=self.config.campaign_cost)
            if rejection is not None:
                return self._rejected(
                    request_id, t0, tenant, "bypass", rejection
                )

        self._ledger_open(idem_key, "campaign", payload)
        self.chaos.hit("post-admission")

        response: Future = Future()
        self._register_inflight(idem_key, response)

        def _run() -> None:
            from ..engines import run_campaign

            self.chaos.hit("mid-dispatch")
            if not self.engine_breaker.allow():
                result = self._rejected(
                    request_id,
                    t0,
                    tenant,
                    "bypass",
                    self._engine_unavailable_rejection(),
                )
                self._ledger_close(idem_key, result[0], result[1])
                response.set_result(result)
                return
            try:
                report = self._run_campaign_or_resume(
                    run_campaign, spec, journal_path, replay=_replay
                )
            except BaseException as exc:
                self.engine_breaker.record_failure()
                with self._lock:
                    self._counts["errors"] += 1
                self._request_span(
                    t0,
                    endpoint="campaign",
                    request_id=request_id,
                    tenant=tenant,
                    cache="bypass",
                    status=500,
                )
                body = {
                    "ok": False,
                    "request_id": request_id,
                    "tenant": tenant,
                    "error": {
                        "code": "campaign_failed",
                        "message": f"{type(exc).__name__}: {exc}",
                    },
                }
                self._ledger_close(idem_key, 500, body)
                response.set_result((500, body))
                return
            self.engine_breaker.record_success()
            summary = self._campaign_summary(report, journal_path)
            # Flushes and closes the write-ahead journal: after this,
            # every record is durable on disk.
            report.close()
            self.chaos.hit("pre-completion")
            self._request_span(
                t0,
                endpoint="campaign",
                request_id=request_id,
                tenant=tenant,
                cache="bypass",
                status=200,
                solve_s=report.wall_time_s,
            )
            body = {
                "ok": True,
                "request_id": request_id,
                "tenant": tenant,
                "campaign": summary,
            }
            # Close record after the campaign journal is durable: a
            # crash landing between the two replays the campaign, and
            # the journal resume skips all committed iterations.
            self._ledger_close(idem_key, 200, body)
            response.set_result((200, body))

        self._campaign_pool.submit(_run)
        return response

    def _run_campaign_or_resume(
        self, run_campaign, spec, journal_path, *, replay: bool
    ):
        """Run a campaign, resuming its journal on ledger replay.

        A replayed journaled campaign picks up the committed prefix via
        the standard ``--resume`` machinery; a journal that is missing
        (crash before creation) or unusable (torn beyond the tail,
        already complete with its report withheld) falls back to a
        fresh run — both paths converge to the same deterministic
        result.
        """
        from ..durability import JournalError

        if replay and journal_path is not None and os.path.exists(journal_path):
            try:
                return run_campaign(
                    resume_path=journal_path, tracer=self.tracer
                )
            except JournalError:
                # Unusable journal: rerun from scratch under a fresh
                # journal file (determinism makes that equivalent).
                os.unlink(journal_path)
        return run_campaign(
            spec, journal_path=journal_path, tracer=self.tracer
        )

    def campaign(self, payload: dict, timeout: float | None = 300.0):
        """Blocking convenience around :meth:`begin_campaign`."""
        pending = self.begin_campaign(payload)
        if isinstance(pending, Future):
            return pending.result(timeout=timeout)
        return pending

    def _campaign_spec(self, payload: dict):
        from ..engines import CampaignSpec

        known = {
            "app",
            "nodes",
            "ppn",
            "iterations",
            "solution",
            "seed",
            "engine",
            "faults",
            "data_dir",
            "data_edge",
            "workers",
        }
        fields = {
            k: v
            for k, v in payload.items()
            if k in known and v is not None
        }
        unknown = (
            set(payload) - known - {"tenant", "journal", "idempotency_key"}
        )
        if unknown:
            raise ValueError(
                "unknown campaign request fields: "
                + ", ".join(sorted(unknown))
            )
        journal = payload.get("journal")
        if journal is not None and (
            not isinstance(journal, str) or not journal
        ):
            raise ValueError(
                f"request field 'journal' must be a path, got {journal!r}"
            )
        return CampaignSpec(**fields), journal

    def _campaign_summary(self, report, journal_path) -> dict:
        result = report.result
        summary = {
            "solution": result.solution,
            "engine": report.engine,
            "spec_crc32c": report.spec.fingerprint(),
            "iterations": len(result.records),
            "mean_relative_overhead": result.mean_relative_overhead,
            "total_time": result.total_time,
            "wall_time_s": round(report.wall_time_s, 6),
            "journal": journal_path,
        }
        if report.data is not None:
            data = report.data
            summary["data"] = {
                "num_blocks": data.num_blocks,
                "raw_bytes": data.raw_bytes,
                "compressed_bytes": data.compressed_bytes,
                "workers": data.workers,
            }
        return summary

    # ------------------------------------------------------------------
    # ledger / recovery plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _idempotency_key(payload: dict, default: str) -> str:
        """The request's ledger key: an explicit ``idempotency_key``
        field (the client's retry header) or the canonical fingerprint."""
        raw = payload.get("idempotency_key") if isinstance(payload, dict) else None
        return raw if isinstance(raw, str) and raw else default

    def _ledger_open(self, key: str, kind: str, payload: dict) -> None:
        if self.ledger is not None:
            payload = {
                k: v for k, v in payload.items() if k != "idempotency_key"
            }
            self.ledger.record_open(key, kind, payload)

    def _ledger_close(self, key: str, status: int, body) -> None:
        if self.ledger is not None:
            self.ledger.record_close(key, status, body)

    def _ledger_replayable(self, key: str) -> tuple[int, dict] | None:
        """A recorded 200 response for ``key``, served verbatim to a
        duplicate submission (exactly-once for retried requests)."""
        if self.ledger is None:
            return None
        recorded = self.ledger.closed_body(key)
        if (
            recorded is not None
            and recorded[0] == 200
            and isinstance(recorded[1], dict)
        ):
            return recorded[0], recorded[1]
        return None

    def _register_inflight(self, key: str, response: Future) -> None:
        with self._lock:
            self._inflight[key] = response

        def _unregister(done: Future) -> None:
            with self._lock:
                if self._inflight.get(key) is done:
                    del self._inflight[key]

        response.add_done_callback(_unregister)

    def _engine_unavailable_rejection(
        self, retry_after_s: float | None = None
    ) -> Rejection:
        if retry_after_s is None:
            retry_after_s = self.engine_breaker.retry_after_s()
        return Rejection(
            code=REJECT_ENGINE_UNAVAILABLE,
            message=(
                "engine circuit breaker is open; only memoized "
                "results are served"
            ),
            http_status=503,
            retry_after_s=retry_after_s,
        )

    def recover(self, timeout: float | None = 300.0) -> dict:
        """Replay every admitted-but-unanswered ledger entry.

        Called once at startup, before the server accepts traffic.
        Each incomplete entry re-enters the normal request path with
        admission skipped (it was already paid before the crash);
        solves converge through the memo cache, journaled campaigns
        resume their journal.  Returns a JSON-safe summary.
        """
        summary = {"replayed": 0, "solve": 0, "campaign": 0, "failed": 0}
        if self.ledger is None:
            return summary
        for entry in self.ledger.incomplete():
            payload = dict(entry.payload)
            payload["idempotency_key"] = entry.key
            begin = (
                self.begin_campaign
                if entry.kind == "campaign"
                else self.begin_solve
            )
            with self._lock:
                self._counts["replayed"] += 1
            summary["replayed"] += 1
            summary[entry.kind] = summary.get(entry.kind, 0) + 1
            pending = begin(payload, _replay=True)
            if isinstance(pending, Future):
                status, _ = pending.result(timeout=timeout)
            else:
                status, _ = pending
            if status != 200:
                summary["failed"] += 1
        return summary

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------
    def _admit(self, tenant: str, cost: float) -> Rejection | None:
        if self._draining:
            return self._draining_rejection()
        return self.admission.admit(tenant, cost=cost)

    def _draining_rejection(self) -> Rejection:
        return Rejection(
            code=REJECT_SHUTTING_DOWN,
            message="service is draining and admits no new requests",
            http_status=503,
        )

    def _next_request_id(self, endpoint: str) -> str:
        with self._lock:
            self._requests += 1
            self._counts[endpoint] += 1
            return f"req-{self._requests:06d}"

    def _bad_request(self, request_id: str, t0: float, message: str):
        with self._lock:
            self._counts["errors"] += 1
        self._request_span(
            t0, endpoint="bad_request", request_id=request_id, status=400
        )
        return 400, {
            "ok": False,
            "request_id": request_id,
            "error": {"code": "bad_request", "message": message},
        }

    def _rejected(
        self,
        request_id: str,
        t0: float,
        tenant: str,
        cache_outcome: str,
        rejection: Rejection,
        queue_wait_s: float = 0.0,
    ):
        with self._lock:
            self._counts["rejected"] += 1
        self._request_span(
            t0,
            endpoint="solve",
            request_id=request_id,
            tenant=tenant,
            cache=cache_outcome,
            status=rejection.http_status,
            rejection=rejection.code,
            queue_wait_s=queue_wait_s,
        )
        return rejection.http_status, {
            "ok": False,
            "request_id": request_id,
            "tenant": tenant,
            "error": rejection.to_json_dict(),
        }

    def _request_span(self, t0: float, **attrs) -> None:
        if self.tracer.enabled:
            self.tracer.span(
                "service.request", t0=t0, t1=time.perf_counter(), **attrs
            )
            self.tracer.counter("service.requests").inc()

    # ------------------------------------------------------------------
    # status / lifecycle
    # ------------------------------------------------------------------
    def health_payload(self) -> dict:
        """The ``/health`` body: liveness, drain state, breaker states."""
        return {
            "ok": True,
            "draining": self._draining,
            "breakers": {
                "engine": self.engine_breaker.state,
                "disk_cache": self.disk_breaker.state,
            },
        }

    def status_payload(self) -> dict:
        """The ``/status`` body: every counter the service keeps."""
        with self._lock:
            counts = dict(self._counts)
            requests = self._requests
            inflight = len(self._inflight)
        return {
            "ok": True,
            "uptime_s": round(self._clock() - self._started_at, 3),
            "draining": self._draining,
            "requests": dict(counts, total=requests),
            "inflight": inflight,
            "cache": self.cache.stats(),
            "admission": self.admission.stats(),
            "queue": self.dispatcher.stats(),
            "breakers": {
                "engine": self.engine_breaker.stats(),
                "disk_cache": self.disk_breaker.stats(),
            },
            "ledger": (
                self.ledger.stats() if self.ledger is not None else None
            ),
        }

    def shutdown(self, drain: bool = True) -> None:
        """Stop the service; with ``drain`` the queue empties first.

        Graceful shutdown admits nothing new (503 ``shutting_down``),
        lets queued solves and in-flight campaigns finish — up to the
        configured hard drain deadline, past which still-queued solves
        resolve with a 503 ``draining`` rejection — and, because
        campaign completion closes each write-ahead journal, leaves
        every journal flushed and durable.  Idempotent.
        """
        self._draining = True
        self.dispatcher.shutdown(
            drain=drain, timeout=self.config.drain_deadline_s
        )
        self._campaign_pool.shutdown(wait=drain)
        if self.ledger is not None:
            self.ledger.close()
