"""Watchdog supervision: restart a crashed or wedged serving process.

``repro serve --supervised`` runs the server in a *child* process and
this watchdog in the parent.  The watchdog holds no request state — all
of that is in the child's request ledger, memo-cache directory, and
campaign journals — so its job reduces to three detections and one
action:

* **crash** — the child exited with a nonzero status (a SIGKILL'd
  child reports 137, the chaos convention);
* **hang** — the heartbeat file the child refreshes from its event
  loop stops advancing for ``hang_timeout_s`` (a livelocked event loop
  keeps the process alive and the socket open while serving nothing);
* **unresponsive** — ``/health`` probes fail ``probe_failures`` times
  in a row after the child was known healthy.

On any of them the child is killed (if needed) and restarted with
exponential backoff from a :class:`~repro.resilience.RetryPolicy`.
After ``max_restarts`` restarts the watchdog gives up with a
structured JSON summary on stderr and exit status 1 — a supervisor
that flaps forever hides failure instead of healing it.  A child that
exits 0 (graceful drain via ``POST /shutdown`` or SIGTERM) ends
supervision with exit status 0.

Recovery composes with the ledger: each restarted child replays its
admitted-but-unanswered requests before accepting traffic, so from a
retrying client's view a supervised crash is a latency blip, not an
error.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np

from ..resilience.retry import RetryPolicy

__all__ = ["Watchdog"]

#: Default backoff between restarts: 0.5 s doubling, modest jitter.
DEFAULT_RESTART_BACKOFF = RetryPolicy(
    max_attempts=6, base_backoff_s=0.5, backoff_multiplier=2.0
)


class Watchdog:
    """Supervise one serving child process; restart it when it dies.

    ``child_argv`` is the full command of the child (typically
    ``[sys.executable, "-m", "repro", "serve", ...]`` without
    ``--supervised``).  The child's stdout is forwarded line by line to
    this process's stdout; the ``listening on http://host:port`` line
    is parsed to learn the probe address, so ``--port 0`` children
    work across restarts.
    """

    def __init__(
        self,
        child_argv: list[str],
        *,
        heartbeat_path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        probe_interval_s: float = 0.5,
        probe_failures: int = 4,
        hang_timeout_s: float = 10.0,
        max_restarts: int = 5,
        backoff: RetryPolicy = DEFAULT_RESTART_BACKOFF,
        rng: np.random.Generator | None = None,
        on_event=None,
    ) -> None:
        if probe_interval_s <= 0:
            raise ValueError(
                f"probe_interval_s must be > 0, got {probe_interval_s!r}"
            )
        if hang_timeout_s <= 0:
            raise ValueError(
                f"hang_timeout_s must be > 0, got {hang_timeout_s!r}"
            )
        if max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {max_restarts!r}"
            )
        self.child_argv = list(child_argv)
        self.heartbeat_path = heartbeat_path
        self.host = host
        self.port = port
        self.probe_interval_s = probe_interval_s
        self.probe_failures = probe_failures
        self.hang_timeout_s = hang_timeout_s
        self.max_restarts = max_restarts
        self.backoff = backoff
        self._rng = rng if rng is not None else np.random.default_rng()
        self._on_event = on_event
        self.restarts = 0
        self.events: list[dict] = []
        self._child: subprocess.Popen | None = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def _event(self, kind: str, **detail) -> None:
        record = {"event": kind, "t": round(time.monotonic(), 3), **detail}
        self.events.append(record)
        if self._on_event is not None:
            self._on_event(record)
        else:
            print(f"watchdog: {kind} {detail}", file=sys.stderr, flush=True)

    def request_stop(self) -> None:
        """Stop supervising: forward SIGTERM to the child and exit once
        it does (signal-handler safe)."""
        self._stop.set()
        child = self._child
        if child is not None and child.poll() is None:
            with _suppress_oserror():
                child.send_signal(signal.SIGTERM)

    # ------------------------------------------------------------------
    def _spawn(self) -> subprocess.Popen:
        child = subprocess.Popen(
            self.child_argv,
            stdout=subprocess.PIPE,
            stderr=None,  # child stderr flows straight through
            text=True,
        )
        reader = threading.Thread(
            target=self._forward_stdout, args=(child,), daemon=True
        )
        reader.start()
        return child

    def _forward_stdout(self, child: subprocess.Popen) -> None:
        for line in child.stdout:
            marker = "listening on http://"
            if marker in line:
                address = line.rsplit(marker, 1)[1].strip().rstrip("/")
                host, _, port = address.rpartition(":")
                try:
                    self.port = int(port)
                    self.host = host or self.host
                except ValueError:
                    pass
            sys.stdout.write(line)
            sys.stdout.flush()
        child.stdout.close()

    def _probe_health(self) -> bool:
        if self.port is None:
            return True  # address unknown yet: nothing to probe
        from .client import ServiceClient, ServiceUnavailableError

        client = ServiceClient(self.host, self.port, timeout=2.0)
        try:
            status, body = client.health()
        except ServiceUnavailableError:
            return False
        return status == 200 and bool(body.get("ok"))

    def _heartbeat_age(self) -> float | None:
        if self.heartbeat_path is None:
            return None
        try:
            return time.time() - os.stat(self.heartbeat_path).st_mtime
        except OSError:
            return None  # not written yet: covered by the spawn grace

    def _kill_child(self, child: subprocess.Popen) -> None:
        with _suppress_oserror():
            child.kill()
        with _suppress_oserror():
            child.wait(timeout=10.0)

    # ------------------------------------------------------------------
    def _watch_one(self, child: subprocess.Popen) -> str:
        """Monitor one child until it exits or must be killed.

        Returns ``"exited"`` (child gone, check its returncode),
        ``"hang"`` or ``"unresponsive"`` (child killed by us), or
        ``"stopped"`` (supervision was asked to stop).
        """
        spawned = time.monotonic()
        consecutive_failures = 0
        healthy_once = False
        while True:
            if self._stop.is_set():
                with _suppress_oserror():
                    child.send_signal(signal.SIGTERM)
                with _suppress_oserror():
                    child.wait(timeout=self.hang_timeout_s)
                if child.poll() is None:
                    self._kill_child(child)
                return "stopped"
            if child.poll() is not None:
                return "exited"

            alive_signals = [spawned]
            age = self._heartbeat_age()
            if age is not None:
                alive_signals.append(time.monotonic() - age)
            if self._probe_health():
                healthy_once = True
                consecutive_failures = 0
                alive_signals.append(time.monotonic())
            elif healthy_once:
                consecutive_failures += 1

            quiet_for = time.monotonic() - max(alive_signals)
            if quiet_for > self.hang_timeout_s:
                self._event(
                    "hang_detected",
                    quiet_for_s=round(quiet_for, 3),
                    heartbeat_age_s=None if age is None else round(age, 3),
                )
                self._kill_child(child)
                return "hang"
            if (
                healthy_once
                and consecutive_failures >= self.probe_failures
            ):
                self._event(
                    "unresponsive",
                    consecutive_probe_failures=consecutive_failures,
                )
                self._kill_child(child)
                return "unresponsive"
            time.sleep(self.probe_interval_s)

    def run(self) -> int:
        """Supervise until a clean exit, a stop, or restarts exhaust.

        Returns the watchdog's process exit status: 0 for a graceful
        child exit, 1 when the restart budget is spent.
        """
        while True:
            self._child = child = self._spawn()
            self._event("spawned", pid=child.pid, restarts=self.restarts)
            why = self._watch_one(child)
            returncode = child.returncode
            if why == "stopped":
                self._event("stopped", returncode=returncode)
                return 0
            if why == "exited" and returncode == 0:
                self._event("clean_exit")
                return 0
            self._event(
                "child_died",
                why=why,
                returncode=returncode,
            )
            if self.restarts >= self.max_restarts:
                summary = {
                    "ok": False,
                    "reason": "restart_budget_exhausted",
                    "restarts": self.restarts,
                    "max_restarts": self.max_restarts,
                    "last_returncode": returncode,
                    "events": self.events[-10:],
                }
                print(json.dumps(summary), file=sys.stderr, flush=True)
                return 1
            self.restarts += 1
            delay = self.backoff.backoff_s(
                min(self.restarts, self.backoff.max_attempts), self._rng
            )
            self._event("restarting", attempt=self.restarts, backoff_s=round(delay, 3))
            if self._stop.wait(timeout=delay):
                return 0


class _suppress_oserror:
    """``contextlib.suppress(OSError, subprocess.TimeoutExpired)`` with
    a name that reads at the call sites above."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return exc_type is not None and issubclass(
            exc_type, (OSError, subprocess.TimeoutExpired)
        )
