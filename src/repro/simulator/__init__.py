"""Discrete-event substrate: virtual clock, noise models (Section 5.4.1),
schedule replay under actual durations, cluster topology, and traces."""

from .engine import Simulation
from .node import ClusterSpec
from .noise import (
    ZERO_NOISE,
    ActualDurations,
    FaultAwareNoiseModel,
    NoiseModel,
)
from .replay import ExecutionResult, execute_schedule
from .trace import (
    TraceEvent,
    execution_to_trace,
    render_gantt,
    schedule_to_trace,
    trace_to_csv,
    trace_to_json,
)

__all__ = [
    "Simulation",
    "ClusterSpec",
    "NoiseModel",
    "FaultAwareNoiseModel",
    "ActualDurations",
    "ZERO_NOISE",
    "ExecutionResult",
    "execute_schedule",
    "TraceEvent",
    "schedule_to_trace",
    "execution_to_trace",
    "render_gantt",
    "trace_to_csv",
    "trace_to_json",
]
