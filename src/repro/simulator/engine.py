"""A minimal discrete-event simulation kernel (virtual clock + heap).

The replay of a single process is a closed-form sequential computation
(:mod:`repro.simulator.replay`), but campaign-level simulation — many
processes per node advancing through iterations, with node-level events
such as dump triggers and balancing exchanges — is naturally event-driven.
This kernel provides just what the orchestrator needs: schedule a callback
at an absolute virtual time, run until the queue drains, read the clock.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable

__all__ = ["Simulation"]


class Simulation:
    """Heap-based event loop over a virtual clock."""

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()  # FIFO tie-break at equal times
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time}; clock already at {self._now}"
            )
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.at(self._now + delay, callback)

    def run(self, until: float | None = None) -> float:
        """Process events in time order; returns the final clock value.

        With ``until`` set, stops (without executing) at the first event
        past that time and advances the clock to ``until``.
        """
        if self._running:
            raise RuntimeError("simulation is already running")
        self._running = True
        try:
            while self._queue:
                time, _, callback = self._queue[0]
                if until is not None and time > until:
                    self._now = until
                    return self._now
                heapq.heappop(self._queue)
                self._now = time
                callback()
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        until: float | None = None,
        start: float | None = None,
    ) -> None:
        """Schedule ``callback`` periodically from ``start`` (default:
        one interval from now) until ``until`` (inclusive).

        The recurrence self-schedules, so it composes with other events
        and stops cleanly at the horizon.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        first = self._now + interval if start is None else start

        def fire() -> None:
            callback()
            next_time = self._now + interval
            if until is None or next_time <= until:
                self.at(next_time, fire)

        if until is None or first <= until:
            self.at(first, fire)

    @property
    def pending(self) -> int:
        return len(self._queue)
