"""Cluster topology: nodes, processes, and their rank mapping.

Mirrors the paper's Summit setup: each node hosts several processes, one
GPU per process plus a share of the CPU cores; intra-node groups matter
because I/O balancing (Section 3.4) and filesystem bandwidth sharing are
node-local.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ClusterSpec"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of nodes.

    Attributes:
        num_nodes: node count.
        processes_per_node: MPI ranks (== GPUs) per node; Summit runs use
            4 or 6 in the paper's experiments.
    """

    num_nodes: int
    processes_per_node: int

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.processes_per_node < 1:
            raise ValueError("cluster dimensions must be positive")

    @property
    def total_processes(self) -> int:
        return self.num_nodes * self.processes_per_node

    def node_of(self, rank: int) -> int:
        """Which node hosts a global rank."""
        self._check_rank(rank)
        return rank // self.processes_per_node

    def local_rank(self, rank: int) -> int:
        """Rank's index within its node."""
        self._check_rank(rank)
        return rank % self.processes_per_node

    def ranks_of_node(self, node: int) -> list[int]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        base = node * self.processes_per_node
        return list(range(base, base + self.processes_per_node))

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.total_processes:
            raise ValueError(f"rank {rank} out of range")
