"""Uncertainty models from Section 5.4.1.

The simulation-based evaluation perturbs every predicted quantity with
normally distributed noise:

* computing/core interval start and end times: ``sigma = 0.01 * T_n``;
* compression ratio:       ``sigma = 0.10 * R``;
* compression throughput:  ``sigma = 0.05 * T_c``;
* I/O time:                ``sigma = 0.05 * T_io``.

:class:`NoiseModel` draws the *actual* values the execution replay uses,
given the *predicted* values the scheduler used.  A zero-sigma model
makes execution exactly match the plan (useful in tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.model import Interval, ProblemInstance
from ..resilience.faults import FaultInjector

__all__ = [
    "NoiseModel",
    "FaultAwareNoiseModel",
    "ActualDurations",
    "ZERO_NOISE",
]


@dataclass(frozen=True)
class ActualDurations:
    """Actual task durations and obstacle intervals for one iteration."""

    length: float
    main_obstacles: tuple[Interval, ...]
    background_obstacles: tuple[Interval, ...]
    compression_times: tuple[float, ...]
    io_times: tuple[float, ...]


@dataclass
class NoiseModel:
    """Gaussian perturbation of predicted values (Section 5.4.1)."""

    interval_sigma_frac: float = 0.01
    ratio_sigma_frac: float = 0.10
    compression_sigma_frac: float = 0.05
    io_sigma_frac: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def _positive_normal(self, mean: float, sigma: float) -> float:
        if sigma <= 0.0:
            return mean
        draw = float(self._rng.normal(mean, sigma))
        return max(draw, mean * 0.1, 1e-12)

    def perturb_ratio(self, ratio: float) -> float:
        """Actual compression ratio given the predicted one."""
        return self._positive_normal(ratio, self.ratio_sigma_frac * ratio)

    def perturb_compression_time(self, duration: float) -> float:
        return self._positive_normal(
            duration, self.compression_sigma_frac * duration
        )

    def perturb_io_time(self, duration: float) -> float:
        return self._positive_normal(duration, self.io_sigma_frac * duration)

    def _perturb_obstacles(
        self,
        obstacles: tuple[Interval, ...],
        begin: float,
        sigma: float,
    ) -> tuple[Interval, ...]:
        """Jitter interval endpoints, preserving order and disjointness."""
        if sigma <= 0.0 or not obstacles:
            return obstacles
        out: list[Interval] = []
        cursor = begin
        for obs in obstacles:
            start = max(cursor, obs.start + float(self._rng.normal(0, sigma)))
            min_duration = obs.duration * 0.1
            end = max(
                start + min_duration,
                obs.end + float(self._rng.normal(0, sigma)),
            )
            out.append(Interval(start, end))
            cursor = end
        return tuple(out)

    def actual_durations(
        self,
        instance: ProblemInstance,
        predicted_compression: tuple[float, ...],
        predicted_io: tuple[float, ...],
    ) -> ActualDurations:
        """Draw one iteration's actual values from the predictions."""
        sigma = self.interval_sigma_frac * instance.length
        length = self._positive_normal(instance.length, sigma)
        return ActualDurations(
            length=length,
            main_obstacles=self._perturb_obstacles(
                instance.main_obstacles, instance.begin, sigma
            ),
            background_obstacles=self._perturb_obstacles(
                instance.background_obstacles, instance.begin, sigma
            ),
            compression_times=tuple(
                self.perturb_compression_time(d)
                for d in predicted_compression
            ),
            io_times=tuple(
                self.perturb_io_time(d) for d in predicted_io
            ),
        )


class FaultAwareNoiseModel(NoiseModel):
    """Gaussian noise compounded with injected degradations.

    On top of the Section 5.4.1 perturbations, one rank's actual
    durations absorb its straggler slow-down and any heavy-tailed
    bandwidth-collapse burst the
    :class:`~repro.resilience.faults.FaultInjector` schedules for the
    current iteration (set via :meth:`set_fault_context` before each
    dump).  Determinism is preserved: the Gaussian stream comes from the
    base seed, the fault decisions from the injector's keyed draws.
    """

    def __init__(
        self,
        injector: FaultInjector,
        rank: int,
        interval_sigma_frac: float = 0.01,
        ratio_sigma_frac: float = 0.10,
        compression_sigma_frac: float = 0.05,
        io_sigma_frac: float = 0.05,
        seed: int = 0,
    ) -> None:
        NoiseModel.__init__(
            self,
            interval_sigma_frac=interval_sigma_frac,
            ratio_sigma_frac=ratio_sigma_frac,
            compression_sigma_frac=compression_sigma_frac,
            io_sigma_frac=io_sigma_frac,
            seed=seed,
        )
        self.injector = injector
        self.rank = rank
        self.iteration = 0

    def set_fault_context(self, iteration: int) -> None:
        """Tell the model which iteration's bursts apply."""
        self.iteration = iteration

    def perturb_compression_time(self, duration: float) -> float:
        duration = NoiseModel.perturb_compression_time(self, duration)
        return duration * self.injector.straggler_compression_factor(
            self.rank
        )

    def perturb_io_time(self, duration: float) -> float:
        duration = NoiseModel.perturb_io_time(self, duration)
        duration *= self.injector.straggler_io_factor(self.rank)
        factor = self.injector.bandwidth_factor(
            self.rank, self.iteration
        )
        return duration / factor if factor != 1.0 else duration


#: Convenience model with every sigma zero (actuals == predictions).
ZERO_NOISE = NoiseModel(
    interval_sigma_frac=0.0,
    ratio_sigma_frac=0.0,
    compression_sigma_frac=0.0,
    io_sigma_frac=0.0,
)
