"""Execution replay: run a planned schedule against actual durations.

The scheduler plans with *predicted* interval positions and task times.
At run time the application's own tasks land where they land, and
compression/I/O tasks take as long as they take.  Section 5.4.1 states the
conflict rule: each thread executes its tasks **sequentially in the
planned order** — a late-running task delays everything queued behind it
on the same thread; an I/O task additionally waits for its compression
task's actual completion.

This deterministic replay is the simulator's core: given a
:class:`~repro.core.model.Schedule` and an
:class:`~repro.simulator.noise.ActualDurations`, it derives every actual
start/end and the resulting iteration overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.model import Interval, Schedule
from ..resilience.faults import FaultInjector
from ..telemetry import NULL_TRACER, NullTracer
from .noise import ActualDurations

__all__ = ["ExecutionResult", "execute_schedule"]


@dataclass
class ExecutionResult:
    """Actual timings of one iteration's replayed execution.

    ``extra_io`` holds unscheduled trailing writes — the Section 4.4
    overflow path, where blocks that compressed worse than predicted are
    appended after the last planned I/O task.
    """

    begin: float
    computation_length: float  # actual T_n (application tasks only)
    compression: dict[int, Interval]
    io: dict[int, Interval]
    main_obstacles: tuple[Interval, ...]
    background_obstacles: tuple[Interval, ...]
    extra_io: tuple[Interval, ...] = ()

    @property
    def io_makespan(self) -> float:
        ends = [iv.end for iv in self.io.values()]
        ends += [iv.end for iv in self.extra_io]
        if not ends:
            return 0.0
        return max(ends) - self.begin

    @property
    def overall_time(self) -> float:
        """Iteration length including compression/I/O spill."""
        tails = [self.computation_length, self.io_makespan]
        if self.compression:
            tails.append(
                max(iv.end for iv in self.compression.values()) - self.begin
            )
        if self.main_obstacles:
            tails.append(self.main_obstacles[-1].end - self.begin)
        if self.background_obstacles:
            tails.append(self.background_obstacles[-1].end - self.begin)
        return max(tails)

    @property
    def overhead(self) -> float:
        """Time the dump added on top of pure computation (>= 0)."""
        return max(0.0, self.overall_time - self.computation_length)

    @property
    def relative_overhead(self) -> float:
        """Overhead as a fraction of computation time (the figures' y-axis)."""
        if self.computation_length <= 0:
            return 0.0
        return self.overhead / self.computation_length


def execute_schedule(
    schedule: Schedule,
    actuals: ActualDurations,
    tracer: NullTracer = NULL_TRACER,
    injector: FaultInjector | None = None,
    rank: int = 0,
    iteration: int = 0,
) -> ExecutionResult:
    """Replay ``schedule`` with ``actuals``; returns actual timings.

    Per-thread semantics: items run in planned-start order.  An
    application task (obstacle) is *released* at its actual (noisy)
    position; a compression task is released immediately; an I/O task is
    released when its compression task actually completes.  Each item
    starts at ``max(thread cursor, release)`` and runs for its actual
    duration without preemption.  A recording ``tracer`` receives the
    realized timeline as ``compute``/``core``/``compress.actual``/
    ``write.actual`` spans.

    With a :class:`~repro.resilience.faults.FaultInjector`, individual
    I/O tasks can additionally *stall* — a bursty-contention hang that
    extends the task and, per the sequential-conflict rule, delays every
    task queued behind it on the background thread.  Injected stalls are
    emitted as ``fault.injected`` events (keyed by ``rank``/``iteration``
    so identical seeds reproduce identical stalls).
    """
    inst = schedule.instance
    begin = inst.begin

    # --- main thread: obstacles + compression tasks, planned order ----
    main_items: list[tuple[float, str, int]] = []
    for i, obs in enumerate(inst.main_obstacles):
        main_items.append((obs.start, "obstacle", i))
    for job_index, iv in schedule.compression.items():
        main_items.append((iv.start, "compression", job_index))
    main_items.sort(key=lambda item: (item[0], item[1] != "obstacle"))

    cursor = begin
    actual_compression: dict[int, Interval] = {}
    actual_main_obs: list[Interval] = []
    for _, kind, idx in main_items:
        if kind == "obstacle":
            planned = actuals.main_obstacles[idx]
            start = max(cursor, planned.start)
            end = start + planned.duration
            actual_main_obs.append(Interval(start, end))
        else:
            duration = actuals.compression_times[idx]
            start = cursor  # released immediately
            end = start + duration
            actual_compression[idx] = Interval(start, end)
        cursor = end

    # --- background thread: obstacles + I/O tasks, planned order ------
    bg_items: list[tuple[float, str, int]] = []
    for i, obs in enumerate(inst.background_obstacles):
        bg_items.append((obs.start, "obstacle", i))
    for job_index, iv in schedule.io.items():
        bg_items.append((iv.start, "io", job_index))
    bg_items.sort(key=lambda item: (item[0], item[1] != "obstacle"))

    cursor = begin
    actual_io: dict[int, Interval] = {}
    actual_bg_obs: list[Interval] = []
    for _, kind, idx in bg_items:
        if kind == "obstacle":
            planned = actuals.background_obstacles[idx]
            start = max(cursor, planned.start)
            end = start + planned.duration
            actual_bg_obs.append(Interval(start, end))
        else:
            ready = max(
                actual_compression[idx].end,
                begin + inst.jobs[idx].io_release,
            )
            duration = actuals.io_times[idx]
            if injector is not None and duration > 0.0:
                stall = injector.io_stall_s(rank, iteration, idx)
                if stall > 0.0:
                    duration += stall
                    if tracer.enabled:
                        tracer.event(
                            "fault.injected",
                            kind="stall",
                            job=idx,
                            stall_s=stall,
                        )
                        tracer.counter("fault.injected").inc()
            start = max(cursor, ready)
            end = start + duration
            actual_io[idx] = Interval(start, end)
        cursor = end

    if tracer.enabled:
        for obs in actual_main_obs:
            tracer.span("compute", "main", None, obs.start, obs.end)
        for obs in actual_bg_obs:
            tracer.span("core", "background", None, obs.start, obs.end)
        for idx, iv in actual_compression.items():
            tracer.span("compress.actual", "main", idx, iv.start, iv.end)
        for idx, iv in actual_io.items():
            tracer.span("write.actual", "background", idx, iv.start, iv.end)

    return ExecutionResult(
        begin=begin,
        computation_length=actuals.length,
        compression=actual_compression,
        io=actual_io,
        main_obstacles=tuple(actual_main_obs),
        background_obstacles=tuple(actual_bg_obs),
    )
