"""Execution traces and text Gantt rendering.

Schedules and replayed executions convert to a flat list of
:class:`TraceEvent` rows, one per task or obstacle, which examples print
as an ASCII Gantt chart (the textual equivalent of the paper's Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.model import Schedule
from .replay import ExecutionResult

__all__ = [
    "TraceEvent",
    "schedule_to_trace",
    "execution_to_trace",
    "render_gantt",
    "trace_to_csv",
    "trace_to_json",
]

_GLYPHS = {
    "compute": "Y",
    "core": "G",
    "compression": "R",
    "io": "B",
    "overflow": "O",
}


@dataclass(frozen=True)
class TraceEvent:
    """One bar of a Gantt chart."""

    resource: str  # e.g. "main", "background"
    kind: str  # "compute", "core", "compression", "io"
    label: str
    start: float
    end: float


def schedule_to_trace(schedule: Schedule) -> list[TraceEvent]:
    """Trace rows for a *planned* schedule, obstacles included."""
    inst = schedule.instance
    events = [
        TraceEvent("main", "compute", f"Y{i+1}", obs.start, obs.end)
        for i, obs in enumerate(inst.main_obstacles)
    ]
    events += [
        TraceEvent("background", "core", f"G{i+1}", obs.start, obs.end)
        for i, obs in enumerate(inst.background_obstacles)
    ]
    events += [
        TraceEvent("main", "compression", f"R{j+1}", iv.start, iv.end)
        for j, iv in schedule.compression.items()
    ]
    events += [
        TraceEvent("background", "io", f"B{j+1}", iv.start, iv.end)
        for j, iv in schedule.io.items()
    ]
    events.sort(key=lambda e: (e.resource, e.start))
    return events


def execution_to_trace(result: ExecutionResult) -> list[TraceEvent]:
    """Trace rows for an *actual* replayed execution."""
    events = [
        TraceEvent("main", "compute", f"Y{i+1}", obs.start, obs.end)
        for i, obs in enumerate(result.main_obstacles)
    ]
    events += [
        TraceEvent("background", "core", f"G{i+1}", obs.start, obs.end)
        for i, obs in enumerate(result.background_obstacles)
    ]
    events += [
        TraceEvent("main", "compression", f"R{j+1}", iv.start, iv.end)
        for j, iv in result.compression.items()
    ]
    events += [
        TraceEvent("background", "io", f"B{j+1}", iv.start, iv.end)
        for j, iv in result.io.items()
    ]
    events += [
        TraceEvent("background", "overflow", f"B+{k+1}", iv.start, iv.end)
        for k, iv in enumerate(result.extra_io)
    ]
    events.sort(key=lambda e: (e.resource, e.start))
    return events


def trace_to_csv(events: list[TraceEvent]) -> str:
    """Trace rows as CSV (resource,kind,label,start,end) for external
    timeline viewers."""
    lines = ["resource,kind,label,start,end"]
    for e in events:
        lines.append(
            f"{e.resource},{e.kind},{e.label},{e.start:.9g},{e.end:.9g}"
        )
    return "\n".join(lines) + "\n"


def trace_to_json(events: list[TraceEvent]) -> str:
    """Trace rows as a JSON array (Chrome-trace-style fields)."""
    import json

    return json.dumps(
        [
            {
                "resource": e.resource,
                "kind": e.kind,
                "label": e.label,
                "start": e.start,
                "end": e.end,
            }
            for e in events
        ]
    )


def render_gantt(events: list[TraceEvent], width: int = 72) -> str:
    """Render trace rows as an ASCII Gantt chart, one line per resource.

    Compute obstacles print as ``Y``, core tasks ``G``, compression ``R``,
    I/O ``B`` — matching the paper's Figure 1 colour legend.
    """
    if not events:
        return "(empty trace)"
    t0 = min(e.start for e in events)
    t1 = max(e.end for e in events)
    span = max(t1 - t0, 1e-12)
    scale = (width - 1) / span

    resources = sorted({e.resource for e in events})
    name_pad = max(len(r) for r in resources) + 1
    lines = []
    for resource in resources:
        row = [" "] * width
        for event in events:
            if event.resource != resource:
                continue
            lo = int((event.start - t0) * scale)
            hi = max(lo + 1, int((event.end - t0) * scale))
            glyph = _GLYPHS.get(event.kind, "#")
            for x in range(lo, min(hi, width)):
                row[x] = glyph
        lines.append(f"{resource.ljust(name_pad)}|{''.join(row)}|")
    lines.append(
        f"{' ' * name_pad}|{f't={t0:.2f}'.ljust(width - 10)}"
        f"{f't={t1:.2f}'.rjust(10)}|"
    )
    return "\n".join(lines)
