"""Lightweight tracing + metrics for the scheduling/replay hot path.

Every layer of the reproduction emits *spans* (named intervals on a
machine's timeline), *events* (instantaneous occurrences), and
*counters/gauges* through a :class:`Tracer`.  The default everywhere is
the shared no-op :data:`NULL_TRACER`, so tracing costs nothing unless a
recording :class:`Tracer` is passed in (e.g. via ``--trace-out`` on the
CLI).  Recorded traces export as JSON lines and render as ASCII Gantt
charts via :func:`render_gantt`.

Span-name vocabulary, mapped to the paper's sections:

======================  ====================================================
span name               meaning (paper section)
======================  ====================================================
``compute``             application task on the main thread — the yellow
                        Y-blocks whose gaps the scheduler fills (S3.1)
``core``                application core task on the background thread —
                        the green G-blocks (S3.1)
``compress.planned``    a compression task where the scheduler placed it
                        (S3.2's R tasks, planned positions)
``compress.actual``     the same task where the replay actually ran it
                        under the sequential-conflict rule (S5.4.1)
``write.planned``       an I/O task's planned placement (S3.2's B tasks)
``write.actual``        the I/O task's replayed execution (S5.4.1)
``write.overflow``      the unscheduled trailing write absorbing blocks
                        that compressed worse than predicted (S4.4)
``solve``               one scheduling-algorithm run (S3.3 / Appendix A)
``dump``                one rank's whole dump pipeline: plan, schedule,
                        replay (S4.4); attrs carry prediction errors
``iteration``           one campaign iteration across all ranks (S5.4)
``codec.quantize``      prequantize + Lorenzo + code mapping (S2.2)
``codec.encode``        Huffman encoding, native or shared tree (S4.3)
``codec.lossless``      the trailing zlib pass (S2.2)
``fs.write``            event: one simulated filesystem write (S4.2)
``bench.case``          one case of the :mod:`repro.bench` suite —
                        wall-clock, with name/group/status/median attrs
======================  ====================================================

Timebases: spans on a ``machine`` ("main"/"background") use the
*simulated* clock of their iteration; machine-less spans (``solve``,
``codec.*``, ``dump.schedule``) are wall-clock ``time.perf_counter``
measurements.
"""

from .gantt import render_gantt
from .metrics import Counter, Gauge
from .recorder import EventRecord, Recorder, SpanRecord, read_jsonl
from .tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Recorder",
    "SpanRecord",
    "EventRecord",
    "read_jsonl",
    "Counter",
    "Gauge",
    "render_gantt",
]
