"""Render recorded spans as an ASCII Gantt chart.

The textual equivalent of the paper's Figure 1, but driven by telemetry
spans instead of a :class:`~repro.core.model.Schedule`: any set of spans
that carry a ``machine`` (timeline row) renders, so the same function
draws planned schedules, replayed executions, and whole traced dumps
loaded back from a JSON-lines file.

Glyphs follow the Figure 1 colour legend: application compute tasks
``Y``, core/background tasks ``G``, compression ``R``, writes ``B``,
Section 4.4 overflow writes ``O``.
"""

from __future__ import annotations

from collections.abc import Iterable

from .recorder import SpanRecord

__all__ = ["render_gantt"]

#: Exact span-name glyphs, consulted before the prefix table.
_NAME_GLYPHS = {
    "compute": "Y",
    "core": "G",
    "write.overflow": "O",
}

#: Glyphs by the span name's first dotted segment.
_PREFIX_GLYPHS = {
    "compute": "Y",
    "core": "G",
    "compress": "R",
    "write": "B",
}

_LEGEND = "Y=compute  G=core  R=compression  B=write  O=overflow"


def _glyph(name: str) -> str:
    exact = _NAME_GLYPHS.get(name)
    if exact is not None:
        return exact
    return _PREFIX_GLYPHS.get(name.split(".", 1)[0], "#")


def render_gantt(
    spans: Iterable[SpanRecord],
    width: int = 72,
    legend: bool = True,
) -> str:
    """Draw every span that names a ``machine``, one row per machine.

    Spans are drawn in record order (later spans overwrite earlier ones
    where they overlap); machines are sorted so ``background`` and
    ``main`` rows land in a stable order.  Spans with an empty
    ``machine`` (pipeline timings like ``dump.schedule``) are skipped —
    they live on the wall clock, not the simulated timeline.
    """
    from ..framework.textplot import gantt_chart

    rows: dict[str, list[tuple[float, float, str]]] = {}
    for span in spans:
        if not span.machine:
            continue
        rows.setdefault(span.machine, []).append(
            (span.t0, span.t1, _glyph(span.name))
        )
    if not rows:
        return "(no machine spans)"
    chart = gantt_chart(
        {name: rows[name] for name in sorted(rows)}, width=width
    )
    if legend:
        pad = chart.splitlines()[-1].index("|") + 1
        chart += "\n" + " " * pad + _LEGEND
    return chart
