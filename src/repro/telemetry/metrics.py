"""Counter and gauge metrics for the tracing subsystem.

Metrics complement spans: a span says *when* something happened on a
timeline, a metric says *how much* of something accumulated (counter) or
*what level* it sits at (gauge).  Both are thread-safe so ranks driven
from worker threads can share one registry.
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Gauge", "NULL_COUNTER", "NULL_GAUGE"]


class Counter:
    """A monotonically increasing metric (e.g. bytes written, dumps run)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self._value!r})"


class Gauge:
    """A set-to-current-level metric (e.g. mean overhead, queue depth)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge's level."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self._value!r})"


class _NullCounter(Counter):
    """Counter that drops updates (handed out by :class:`NullTracer`)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    """Gauge that drops updates (handed out by :class:`NullTracer`)."""

    __slots__ = ()

    def set(self, value: float) -> None:
        pass


#: Shared do-nothing instances so the no-op path allocates nothing.
NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
