"""Thread-safe in-memory record store with JSON-lines round-trip.

The :class:`Recorder` is the single sink behind every bound
:class:`~repro.telemetry.tracer.Tracer`: span and event records are
appended in arrival order under a lock, and counters/gauges are
create-on-first-use so all threads share one instance per name.

The on-disk format is JSON lines — one self-describing object per line
(``{"type": "span", ...}``), streamable and greppable, loadable back with
:func:`read_jsonl` for post-hoc analysis or Gantt rendering.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path

from .metrics import Counter, Gauge

__all__ = ["SpanRecord", "EventRecord", "Recorder", "read_jsonl"]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: a named interval on a machine's timeline."""

    name: str
    machine: str = ""
    job: int | None = None
    t0: float = 0.0
    t1: float = 0.0
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> dict:
        """JSON-serializable form (the one JSON-lines line)."""
        return {
            "type": "span",
            "name": self.name,
            "machine": self.machine,
            "job": self.job,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": self.attrs,
        }


@dataclass(frozen=True)
class EventRecord:
    """One instantaneous occurrence (no duration)."""

    name: str
    t: float = 0.0
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable form (the one JSON-lines line)."""
        return {
            "type": "event",
            "name": self.name,
            "t": self.t,
            "attrs": self.attrs,
        }


def _jsonable(value):
    """Coerce numpy scalars and other oddballs for ``json.dumps``."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


class Recorder:
    """Append-only, thread-safe store of spans, events, and metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[SpanRecord | EventRecord] = []
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    # ------------------------------------------------------------------
    def add(self, record: SpanRecord | EventRecord) -> None:
        """Append one record, preserving global arrival order."""
        with self._lock:
            self._records.append(record)

    def counter(self, name: str) -> Counter:
        """Get-or-create the counter called ``name``."""
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the gauge called ``name``."""
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    # ------------------------------------------------------------------
    @property
    def records(self) -> tuple[SpanRecord | EventRecord, ...]:
        """All records in arrival order."""
        with self._lock:
            return tuple(self._records)

    @property
    def spans(self) -> tuple[SpanRecord, ...]:
        return tuple(
            r for r in self.records if isinstance(r, SpanRecord)
        )

    @property
    def events(self) -> tuple[EventRecord, ...]:
        return tuple(
            r for r in self.records if isinstance(r, EventRecord)
        )

    @property
    def counters(self) -> dict[str, float]:
        """Snapshot of counter values by name."""
        with self._lock:
            return {name: c.value for name, c in self._counters.items()}

    @property
    def gauges(self) -> dict[str, float]:
        """Snapshot of gauge values by name."""
        with self._lock:
            return {name: g.value for name, g in self._gauges.items()}

    def clear(self) -> None:
        """Drop every record and metric."""
        with self._lock:
            self._records.clear()
            self._counters.clear()
            self._gauges.clear()

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Records (arrival order) then metrics, one JSON object per line."""
        lines = [
            json.dumps(r.to_dict(), default=_jsonable)
            for r in self.records
        ]
        for name, value in sorted(self.counters.items()):
            lines.append(
                json.dumps(
                    {"type": "counter", "name": name, "value": value}
                )
            )
        for name, value in sorted(self.gauges.items()):
            lines.append(
                json.dumps({"type": "gauge", "name": name, "value": value})
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str | Path) -> Path:
        """Write :meth:`to_jsonl` to ``path`` (creating parent
        directories); returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl())
        return path


def read_jsonl(source: str | Path) -> Recorder:
    """Load a JSON-lines trace back into a fresh :class:`Recorder`.

    ``source`` is a path, or the raw text itself when it contains a
    newline (convenient in tests).  Unknown record types raise.
    """
    text = (
        source
        if isinstance(source, str) and "\n" in source
        else Path(source).read_text()
    )
    recorder = Recorder()
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        data = json.loads(line)
        kind = data.get("type")
        if kind == "span":
            recorder.add(
                SpanRecord(
                    name=data["name"],
                    machine=data.get("machine", ""),
                    job=data.get("job"),
                    t0=data["t0"],
                    t1=data["t1"],
                    attrs=data.get("attrs", {}),
                )
            )
        elif kind == "event":
            recorder.add(
                EventRecord(
                    name=data["name"],
                    t=data.get("t", 0.0),
                    attrs=data.get("attrs", {}),
                )
            )
        elif kind == "counter":
            recorder.counter(data["name"]).inc(data["value"])
        elif kind == "gauge":
            recorder.gauge(data["name"]).set(data["value"])
        else:
            raise ValueError(
                f"line {line_no}: unknown record type {kind!r}"
            )
    return recorder
