"""Tracers: the emit-side API of the telemetry subsystem.

Two implementations share one interface:

* :class:`NullTracer` — the default everywhere; every method is a no-op
  and ``enabled`` is ``False`` so hot paths can skip even building the
  attribute dicts.  A single shared :data:`NULL_TRACER` instance exists
  so call sites never allocate.
* :class:`Tracer` — records into a :class:`~repro.telemetry.recorder.Recorder`.
  ``bind(**attrs)`` returns a child tracer sharing the same recorder whose
  emitted records all carry the bound attributes (e.g. ``rank``,
  ``iteration``), which is how per-rank context flows through the
  scheduler and replay code without threading keyword arguments.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from .metrics import NULL_COUNTER, NULL_GAUGE, Counter, Gauge
from .recorder import EventRecord, Recorder, SpanRecord

__all__ = ["NullTracer", "Tracer", "NULL_TRACER"]


class NullTracer:
    """Do-nothing tracer; the zero-overhead default for every call site.

    Also serves as the interface definition: :class:`Tracer` subclasses
    it, so ``isinstance(t, NullTracer)`` accepts both.
    """

    #: Hot paths may guard attr construction with ``if tracer.enabled:``.
    enabled = False

    __slots__ = ()

    def span(
        self,
        name: str,
        machine: str = "",
        job: int | None = None,
        t0: float = 0.0,
        t1: float = 0.0,
        **attrs,
    ) -> None:
        """Record one completed span (no-op here)."""

    def event(self, name: str, t: float = 0.0, **attrs) -> None:
        """Record one instantaneous event (no-op here)."""

    def counter(self, name: str) -> Counter:
        """A counter metric by name (a shared null counter here)."""
        return NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        """A gauge metric by name (a shared null gauge here)."""
        return NULL_GAUGE

    def bind(self, **attrs) -> "NullTracer":
        """A tracer stamping ``attrs`` on every record (itself here)."""
        return self

    @contextmanager
    def timed(
        self,
        name: str,
        machine: str = "",
        job: int | None = None,
        **attrs,
    ):
        """Context manager emitting a wall-clock span (no-op here)."""
        yield


class Tracer(NullTracer):
    """Recording tracer: spans/events/metrics land in a shared recorder."""

    enabled = True

    __slots__ = ("recorder", "_attrs")

    def __init__(
        self,
        recorder: Recorder | None = None,
        _attrs: dict | None = None,
    ) -> None:
        self.recorder = recorder if recorder is not None else Recorder()
        self._attrs = dict(_attrs) if _attrs else {}

    def span(
        self,
        name: str,
        machine: str = "",
        job: int | None = None,
        t0: float = 0.0,
        t1: float = 0.0,
        **attrs,
    ) -> None:
        """Record one completed span ``[t0, t1]`` on ``machine``."""
        merged = {**self._attrs, **attrs} if self._attrs else attrs
        self.recorder.add(
            SpanRecord(
                name=name, machine=machine, job=job, t0=t0, t1=t1,
                attrs=merged,
            )
        )

    def event(self, name: str, t: float = 0.0, **attrs) -> None:
        """Record one instantaneous event at time ``t``."""
        merged = {**self._attrs, **attrs} if self._attrs else attrs
        self.recorder.add(EventRecord(name=name, t=t, attrs=merged))

    def counter(self, name: str) -> Counter:
        """The shared counter called ``name`` (create on first use)."""
        return self.recorder.counter(name)

    def gauge(self, name: str) -> Gauge:
        """The shared gauge called ``name`` (create on first use)."""
        return self.recorder.gauge(name)

    def bind(self, **attrs) -> "Tracer":
        """Child tracer sharing this recorder, with ``attrs`` stamped on
        every record it emits (later ``bind``/call attrs win)."""
        return Tracer(self.recorder, {**self._attrs, **attrs})

    @contextmanager
    def timed(
        self,
        name: str,
        machine: str = "",
        job: int | None = None,
        **attrs,
    ):
        """Measure the enclosed block with ``time.perf_counter`` and emit
        it as a span, even if the block raises."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.span(
                name,
                machine=machine,
                job=job,
                t0=t0,
                t1=time.perf_counter(),
                **attrs,
            )


#: Shared no-op instance; use as the default instead of allocating.
NULL_TRACER = NullTracer()
